//! Regenerates **Fig. 3**: the execution space and schedule space
//! mirror each other — `Run` ↔ planning `Schedule`, `EntityInstance` ↔
//! `ScheduleInstance`, instance dependencies ↔ schedule dependencies.

use bench::circuit_manager;

fn main() {
    let mut h = circuit_manager(2, 42);
    let plan = h.plan("performance").expect("plannable");
    h.execute("performance").expect("executable");
    let db = h.db();

    println!("schedule space                      | execution space");
    println!("------------------------------------+------------------------------------");
    let session = db.planning_session(plan.session());
    let left = format!("Schedule {} at {}", session.id(), session.created_at());
    println!("{left:<36}| {} runs recorded", db.runs().len());
    for pa in plan.activities() {
        let sc = db.schedule_instance(pa.schedule);
        let mirror = match sc.linked_entity() {
            Some(e) => {
                let inst = db.entity_instance(e);
                format!("{} {} v{}", e, inst.class(), inst.version())
            }
            None => "(open)".to_owned(),
        };
        println!(
            "{:<36}| {mirror}",
            format!("{} {} v{}", sc.id(), sc.activity(), sc.version())
        );
    }

    println!("\ndependencies mirror:");
    for pa in plan.activities() {
        let sc = db.schedule_instance(pa.schedule);
        if let Some(e) = sc.linked_entity() {
            let deps = db.entity_instance(e).depends_on();
            if !deps.is_empty() {
                let deps: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
                println!(
                    "  {} depends on {{{}}} (execution) — {} follows prior plan versions (schedule)",
                    e,
                    deps.join(", "),
                    sc.id()
                );
            }
        }
    }
}
