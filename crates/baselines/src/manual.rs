use std::fmt;

/// What happened to an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The first run of the activity began.
    Started,
    /// The designer declared the activity complete.
    Finished,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Started => write!(f, "started"),
            EventKind::Finished => write!(f, "finished"),
        }
    }
}

/// One status-relevant fact produced by executing a flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEvent {
    /// When it happened (working days from project start).
    pub time: f64,
    /// Which activity.
    pub activity: String,
    /// What happened.
    pub kind: EventKind,
}

impl FlowEvent {
    /// Creates an event.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or not finite.
    pub fn new(time: f64, activity: impl Into<String>, kind: EventKind) -> Self {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be a valid offset"
        );
        FlowEvent {
            time,
            activity: activity.into(),
            kind,
        }
    }
}

/// How well a tracking system kept up with a stream of events.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingReport {
    /// Name of the tracking system.
    pub system: String,
    /// Number of events that occurred.
    pub events: usize,
    /// Manual data entries a human had to type.
    pub manual_updates: usize,
    /// Mean delay between an event and the tracker knowing it, days.
    pub mean_staleness_days: f64,
    /// Worst-case delay, days.
    pub max_staleness_days: f64,
}

impl fmt::Display for TrackingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {} events, {} manual updates, staleness mean {:.2}d max {:.2}d",
            self.system,
            self.events,
            self.manual_updates,
            self.mean_staleness_days,
            self.max_staleness_days
        )
    }
}

/// A *separate* project-management tool fed by periodic status
/// meetings.
///
/// Designers report everything that happened since the last meeting,
/// and the project manager types each fact in by hand. An event at time
/// `t` becomes known at the first meeting at or after `t` (meetings at
/// `period, 2·period, ...`), so staleness is uniform on
/// `(0, period]` — mean `period / 2` for uniformly arriving events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManualPm {
    period_days: f64,
}

impl ManualPm {
    /// Creates a manual PM process with status meetings every
    /// `period_days`.
    ///
    /// # Panics
    ///
    /// Panics unless `period_days` is positive and finite.
    pub fn new(period_days: f64) -> Self {
        assert!(
            period_days.is_finite() && period_days > 0.0,
            "meeting period must be positive"
        );
        ManualPm { period_days }
    }

    /// The meeting at which an event at `t` becomes known: the first
    /// meeting strictly after... at or after `t`. An event landing
    /// exactly on a meeting is reported in that meeting.
    pub fn known_at(&self, t: f64) -> f64 {
        (t / self.period_days).ceil() * self.period_days
    }

    /// Tracks an event stream, reporting staleness and manual-entry
    /// cost.
    pub fn track(&self, events: &[FlowEvent]) -> TrackingReport {
        let staleness: Vec<f64> = events
            .iter()
            .map(|e| (self.known_at(e.time) - e.time).max(0.0))
            .collect();
        let n = staleness.len();
        TrackingReport {
            system: "manual-pm".to_owned(),
            events: n,
            // Every fact is typed into the PM tool by hand.
            manual_updates: n,
            mean_staleness_days: if n == 0 {
                0.0
            } else {
                staleness.iter().sum::<f64>() / n as f64
            },
            max_staleness_days: staleness.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// The integrated system in the same harness: the flow manager emits
/// the events itself, so the schedule is updated the moment anything
/// happens and nobody types anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegratedTracker;

impl IntegratedTracker {
    /// Tracks an event stream: zero staleness, zero manual entries.
    pub fn track(&self, events: &[FlowEvent]) -> TrackingReport {
        TrackingReport {
            system: "integrated".to_owned(),
            events: events.len(),
            manual_updates: 0,
            mean_staleness_days: 0.0,
            max_staleness_days: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<FlowEvent> {
        vec![
            FlowEvent::new(0.5, "A", EventKind::Started),
            FlowEvent::new(2.0, "A", EventKind::Finished),
            FlowEvent::new(2.0, "B", EventKind::Started),
            FlowEvent::new(6.5, "B", EventKind::Finished),
        ]
    }

    #[test]
    fn known_at_rounds_to_meetings() {
        let pm = ManualPm::new(5.0);
        assert_eq!(pm.known_at(0.5), 5.0);
        assert_eq!(pm.known_at(5.0), 5.0);
        assert_eq!(pm.known_at(5.1), 10.0);
        assert_eq!(pm.known_at(0.0), 0.0);
    }

    #[test]
    fn manual_staleness_and_cost() {
        let report = ManualPm::new(5.0).track(&events());
        assert_eq!(report.events, 4);
        assert_eq!(report.manual_updates, 4);
        // Staleness: 4.5, 3.0, 3.0, 3.5 → mean 3.5, max 4.5.
        assert!((report.mean_staleness_days - 3.5).abs() < 1e-9);
        assert!((report.max_staleness_days - 4.5).abs() < 1e-9);
    }

    #[test]
    fn shorter_meetings_reduce_staleness() {
        let weekly = ManualPm::new(5.0).track(&events());
        let daily = ManualPm::new(1.0).track(&events());
        assert!(daily.mean_staleness_days < weekly.mean_staleness_days);
        // But manual cost is unchanged — every fact is still typed.
        assert_eq!(daily.manual_updates, weekly.manual_updates);
    }

    #[test]
    fn integrated_is_free_and_fresh() {
        let report = IntegratedTracker.track(&events());
        assert_eq!(report.manual_updates, 0);
        assert_eq!(report.mean_staleness_days, 0.0);
        assert_eq!(report.max_staleness_days, 0.0);
        assert_eq!(report.events, 4);
    }

    #[test]
    fn empty_stream() {
        let report = ManualPm::new(5.0).track(&[]);
        assert_eq!(report.events, 0);
        assert_eq!(report.mean_staleness_days, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_panics() {
        ManualPm::new(0.0);
    }

    #[test]
    #[should_panic(expected = "valid offset")]
    fn negative_event_time_panics() {
        FlowEvent::new(-1.0, "A", EventKind::Started);
    }

    #[test]
    fn report_display() {
        let r = IntegratedTracker.track(&events());
        assert!(r.to_string().contains("integrated"));
        assert_eq!(EventKind::Started.to_string(), "started");
    }
}
