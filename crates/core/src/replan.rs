use metadata::ScheduleInstanceId;
use schedule::WorkDays;

use crate::error::HerculesError;
use crate::manager::Hercules;
use crate::plan::SchedulePlan;

/// The result of a replanning step: which schedule instances were
/// created and the new proposed project finish.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanOutcome {
    /// New schedule instance versions, one per replanned activity.
    pub replanned: Vec<(String, ScheduleInstanceId)>,
    /// The updated proposed finish of the affected scope.
    pub project_finish: WorkDays,
    /// The slip (in days) that triggered the replan, if it was a slip
    /// propagation.
    pub slip_days: Option<f64>,
}

impl ReplanOutcome {
    /// Number of schedule instances created.
    pub fn len(&self) -> usize {
        self.replanned.len()
    }

    /// Returns `true` if nothing needed replanning.
    pub fn is_empty(&self) -> bool {
        self.replanned.is_empty()
    }
}

impl Hercules {
    /// Full replan of `target`: a fresh planning pass (new schedule
    /// instance versions for every *open* activity in scope) using the
    /// latest duration estimates — which now include any measured
    /// history, so replanning after execution "uses previous schedule
    /// information for planning future projects".
    ///
    /// Completed activities keep their (linked) plans and recorded
    /// actual dates; only open work is reversioned. The versioned
    /// database never rewrites history.
    ///
    /// Repeated replans of an unchanged scope are served by the
    /// incremental replan engine: the precedence network and CPM state
    /// are cached per target, and only activities whose duration
    /// estimates moved since the last pass are recomputed (observable
    /// via the `hercules.plan.*` metrics and the recorded
    /// `hercules.plan` span fields).
    ///
    /// # Errors
    ///
    /// Same as [`plan`](Hercules::plan).
    pub fn replan(&mut self, target: &str) -> Result<ReplanOutcome, HerculesError> {
        obs::Collector::set_sim_days(self.clock.days());
        let mut replan_span = obs::span!("hercules.replan", target = target);
        let tree = self.extract_task_tree(target)?;
        let completed: Vec<String> = tree
            .activities()
            .iter()
            .filter(|a| {
                self.store
                    .db()
                    .current_plan(a)
                    .is_some_and(|p| p.is_complete())
            })
            .cloned()
            .collect();
        replan_span.record("completed", completed.len());
        if completed.len() == tree.len() {
            replan_span.record("replanned", 0usize);
            return Ok(ReplanOutcome {
                replanned: Vec::new(),
                project_finish: self.clock,
                slip_days: None,
            });
        }
        // Planning starts no earlier than the actual finishes of
        // completed prerequisites, which `plan_scope` handles via the
        // clock: advance it to the latest completion in scope first.
        let latest_done = completed
            .iter()
            .filter_map(|a| self.store.db().actual_finish(a))
            .fold(self.clock, WorkDays::max);
        self.advance_clock(latest_done);
        let plan: SchedulePlan = self.plan_scope(target, &completed)?;
        let replanned: Vec<(String, ScheduleInstanceId)> = plan
            .activities()
            .iter()
            .map(|pa| (pa.activity.clone(), pa.schedule))
            .collect();
        replan_span.record("replanned", replanned.len());
        Ok(ReplanOutcome {
            replanned,
            project_finish: plan.project_finish(),
            slip_days: None,
        })
    }

    /// Incremental slip propagation — the paper's automatic update:
    /// "if any slip in the schedule occurs, the schedule plan updates
    /// automatically to reflect the new schedule" (§IV-C).
    ///
    /// Compares `activity`'s actual finish against its latest plan;
    /// when late, creates shifted versions of every *incomplete*
    /// downstream schedule instance (planned start += slip), leaving
    /// durations and assignments intact. This touches only the
    /// downstream cone, unlike [`replan`](Hercules::replan) which
    /// reprices the whole scope.
    ///
    /// # Errors
    ///
    /// * [`HerculesError::UnknownActivity`] — `activity` not in the
    ///   schema.
    /// * [`HerculesError::NotPlanned`] — no plan to compare against.
    pub fn propagate_slip(&mut self, activity: &str) -> Result<ReplanOutcome, HerculesError> {
        obs::Collector::set_sim_days(self.clock.days());
        let mut slip_span = obs::span!("hercules.propagate_slip", activity = activity);
        if self.schema.rule(activity).is_none() {
            return Err(HerculesError::UnknownActivity(activity.to_owned()));
        }
        let Some(slip) = self.store.db().finish_slip(activity) else {
            // Either not planned or not complete yet.
            if self.store.db().current_plan(activity).is_none() {
                return Err(HerculesError::NotPlanned(activity.to_owned()));
            }
            return Ok(ReplanOutcome {
                replanned: Vec::new(),
                project_finish: self.clock,
                slip_days: None,
            });
        };
        if slip <= 1e-9 {
            return Ok(ReplanOutcome {
                replanned: Vec::new(),
                project_finish: self.clock,
                slip_days: Some(slip),
            });
        }
        // Downstream cone: activities consuming this activity's output,
        // transitively. Walk the schema rules.
        let mut affected: Vec<String> = Vec::new();
        let mut frontier = vec![activity.to_owned()];
        while let Some(current) = frontier.pop() {
            let Some(rule) = self.schema.rule(&current) else {
                return Err(HerculesError::UnknownActivity(current));
            };
            let output = rule.output().to_owned();
            for rule in self.schema.rules() {
                if rule.inputs().contains(&output) && !affected.iter().any(|a| a == rule.activity())
                {
                    affected.push(rule.activity().to_owned());
                    frontier.push(rule.activity().to_owned());
                }
            }
        }
        let session = self.store.begin_planning(self.clock);
        let mut replanned = Vec::new();
        let mut project_finish = self.clock;
        for name in &affected {
            let Some(plan) = self.store.db().current_plan(name) else {
                continue;
            };
            if plan.is_complete() {
                continue;
            }
            let new_start = plan.planned_start() + WorkDays::new(slip);
            let duration = plan.planned_duration();
            let assignees = plan.assignees().to_vec();
            let sc = self
                .store
                .plan_activity(session, name, new_start, duration)?;
            for a in assignees {
                self.store.assign(sc, &a)?;
            }
            let finish = new_start + duration;
            if finish.days() > project_finish.days() {
                project_finish = finish;
            }
            replanned.push((name.clone(), sc));
        }
        slip_span.record("slip_days", slip);
        slip_span.record("replanned", replanned.len());
        Ok(ReplanOutcome {
            replanned,
            project_finish,
            slip_days: Some(slip),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn asic() -> Hercules {
        Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            5,
        )
    }

    #[test]
    fn replan_after_partial_execution() {
        let mut h = asic();
        h.plan("signoff_report").unwrap();
        // Execute only the front of the flow.
        h.execute("netlist").unwrap();
        let outcome = h.replan("signoff_report").unwrap();
        // Open activities replanned; completed ones untouched.
        assert!(!outcome.is_empty());
        assert!(outcome.len() < 9);
        let names: Vec<&str> = outcome.replanned.iter().map(|(n, _)| n.as_str()).collect();
        assert!(!names.contains(&"Synthesize") || h.db().current_plan("Synthesize").is_some());
        assert!(!names.contains(&"WriteRtl"), "completed work reversioned");
        // New versions have provenance.
        for (_, sc) in &outcome.replanned {
            assert!(h.db().schedule_instance(*sc).version() >= 2);
        }
    }

    #[test]
    fn replan_complete_project_is_noop() {
        let mut h = asic();
        h.plan("signoff_report").unwrap();
        h.execute("signoff_report").unwrap();
        let outcome = h.replan("signoff_report").unwrap();
        assert!(outcome.is_empty());
    }

    #[test]
    fn propagate_slip_shifts_downstream_only() {
        let mut h = asic();
        h.plan("signoff_report").unwrap();
        // Execute WriteRtl's scope so it completes (probably late or
        // early; find a seed where it slips).
        let mut seed = 0;
        let slipping = loop {
            let mut candidate = Hercules::new(
                examples::asic_flow(),
                ToolLibrary::standard(),
                Team::of_size(3),
                seed,
            );
            candidate.plan("signoff_report").unwrap();
            candidate.execute("rtl").unwrap();
            if candidate
                .db()
                .finish_slip("WriteRtl")
                .is_some_and(|s| s > 0.0)
            {
                break candidate;
            }
            seed += 1;
            assert!(seed < 200, "no slipping seed found");
        };
        let mut h = slipping;
        let before: Vec<(String, WorkDays)> = h
            .db()
            .activities()
            .map(|a| {
                (
                    a.to_owned(),
                    h.db().current_plan(a).unwrap().planned_start(),
                )
            })
            .collect();
        let outcome = h.propagate_slip("WriteRtl").unwrap();
        let slip = outcome.slip_days.unwrap();
        assert!(slip > 0.0);
        // Downstream of rtl: VerifyRtl, Synthesize, Floorplan, ... all
        // incomplete, so replanned with shifted starts.
        assert!(!outcome.is_empty());
        for (name, sc) in &outcome.replanned {
            let new_start = h.db().schedule_instance(*sc).planned_start();
            let old_start = before
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| *s)
                .unwrap();
            assert!(
                (new_start.days() - old_start.days() - slip).abs() < 1e-9,
                "{name} shifted by {} expected {slip}",
                new_start.days() - old_start.days()
            );
        }
        // CaptureSpec is upstream: never replanned.
        assert!(outcome.replanned.iter().all(|(n, _)| n != "CaptureSpec"));
    }

    /// The last `hercules.plan` span from this thread (lane 0) — the
    /// probe replacing the removed `last_plan_stats` accessor.
    fn plan_span(trace: &obs::Trace) -> obs::SpanView {
        trace
            .spans()
            .into_iter()
            .rfind(|s| s.name == "hercules.plan" && s.lane == 0)
            .expect("a planning pass was traced")
    }

    #[test]
    fn repeated_replan_is_served_incrementally() {
        let mut h = asic();
        h.plan("signoff_report").unwrap();
        h.execute("netlist").unwrap();
        // First replan after completions: the scope shrank, so the
        // cached network is rebuilt for the new scope.
        let session = obs::Collector::session();
        let o1 = h.replan("signoff_report").unwrap();
        let first = plan_span(&session.finish());
        assert_eq!(first.arg("cache_hit"), Some(&obs::ArgValue::Bool(false)));
        // Second replan with nothing new: pure cache hit, zero CPM
        // recomputation, identical proposal.
        let session = obs::Collector::session();
        let o2 = h.replan("signoff_report").unwrap();
        let stats = plan_span(&session.finish());
        assert_eq!(stats.arg("cache_hit"), Some(&obs::ArgValue::Bool(true)));
        assert_eq!(stats.arg("dirty"), Some(&obs::ArgValue::U64(0)));
        assert_eq!(stats.arg("cpm_recomputed"), Some(&obs::ArgValue::U64(0)));
        assert_eq!(o1.project_finish, o2.project_finish);
        assert_eq!(o1.len(), o2.len());
    }

    #[test]
    fn propagate_slip_requires_plan() {
        let mut h = asic();
        assert!(matches!(
            h.propagate_slip("WriteRtl"),
            Err(HerculesError::NotPlanned(_))
        ));
        assert!(matches!(
            h.propagate_slip("Ghost"),
            Err(HerculesError::UnknownActivity(_))
        ));
    }

    #[test]
    fn propagate_no_slip_is_noop() {
        let mut h = asic();
        h.plan("signoff_report").unwrap();
        // Not complete yet → no slip information → no-op.
        let outcome = h.propagate_slip("WriteRtl").unwrap();
        assert!(outcome.is_empty());
    }
}
