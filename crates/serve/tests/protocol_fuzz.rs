//! Protocol robustness: a seeded request fuzzer (with shrinking, via
//! `crates/harness`) against both the bare parser and a live server.
//!
//! The contract under fuzz: the server **never panics** and every
//! connection either receives a well-formed HTTP/1.1 response
//! (2xx–5xx) or is closed cleanly. After every hostile exchange the
//! server must still answer `/healthz` — a live worker pool is the
//! observable proof that nothing unwound.
//!
//! Case shapes cover the ISSUE list: malformed request lines, bad and
//! missing auth, truncated bodies, oversized headers, header floods,
//! and mid-request disconnects.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use harness::strategy::{ascii_noise, printable_noise};
use hercules::Workspace;
use serve::http::{read_request, ReadOutcome};
use serve::{Client, Server, ServerConfig, TokenRegistry};
use simtools::{workload::Team, ToolLibrary};

const FUZZ_TOKEN: &str = "fuzz-token";

/// One server shared by every fuzz case in this binary; leaked on
/// purpose (the process exit reaps it).
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let ws = Arc::new(Workspace::in_memory());
        ws.create_project(
            "alu",
            schema::examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            7,
        )
        .expect("seed project");
        let server = Server::start(
            ws,
            ServerConfig {
                workers: 2,
                tokens: TokenRegistry::parse(&format!("fuzz:{FUZZ_TOKEN}")).unwrap(),
                io_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            },
        )
        .expect("bind fuzz server");
        let addr = server.addr();
        std::mem::forget(server);
        addr
    })
}

/// Sends raw bytes (optionally truncated to `cut` bytes for the
/// mid-request disconnect shape) and returns whatever the server
/// answered before closing.
fn exchange(payload: &[u8], cut: Option<usize>) -> Vec<u8> {
    let stream = TcpStream::connect(server_addr()).expect("connect fuzz server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .expect("write timeout");
    let mut stream = stream;
    let bytes = match cut {
        Some(cut) => &payload[..cut.min(payload.len())],
        None => payload,
    };
    // The server may reject and close mid-write: a failed write IS a
    // clean close, never a test failure.
    let _ = stream.write_all(bytes);
    if cut.is_some() {
        // Mid-request disconnect: slam the connection without reading.
        drop(stream);
        return Vec::new();
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    // A read error after a reject is a close, which the contract
    // allows; bytes-before-error still get validated.
    let _ = stream.read_to_end(&mut response);
    response
}

/// A response is acceptable iff absent (clean close) or a well-formed
/// HTTP/1.1 status line with a sane code.
fn assert_well_formed(response: &[u8], context: &str) {
    if response.is_empty() {
        return;
    }
    let text = String::from_utf8_lossy(response);
    let status: Option<u16> = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok());
    match status {
        Some(code) if (200..600).contains(&code) => {}
        _ => panic!("{context}: malformed response {text:?}"),
    }
}

/// The worker pool survived: `/healthz` still answers.
fn assert_alive() {
    let client = Client::new(server_addr()).with_timeout(Duration::from_secs(5));
    let resp = client.get("/healthz").expect("server must stay reachable");
    assert_eq!(resp.status, 200, "server unhealthy after fuzz case");
}

/// Builds the request bytes for one fuzz shape.
fn build_payload(shape: u64, a: &str, b: &str, n: u64) -> (Vec<u8>, Option<usize>) {
    match shape % 8 {
        // Raw noise streams, ASCII and multibyte.
        0 => (a.as_bytes().to_vec(), None),
        1 => (format!("{a}{b}").into_bytes(), None),
        // Noise in the request-line fields.
        2 => (format!("{a} /{b} HTTP/1.1\r\n\r\n").into_bytes(), None),
        // Bad/missing/garbled auth on a real route.
        3 => (
            format!("GET /projects/alu/status HTTP/1.1\r\nAuthorization: {a}\r\n\r\n").into_bytes(),
            None,
        ),
        // Truncated body: promises more Content-Length than it sends.
        4 => {
            let body = &a.as_bytes()[..a.len().min(16)];
            let lie = body.len() as u64 + 1 + (n % 4096);
            let mut bytes = format!("POST /projects/{b} HTTP/1.1\r\nContent-Length: {lie}\r\n\r\n")
                .into_bytes();
            bytes.extend_from_slice(body);
            (bytes, None)
        }
        // Oversized single header line.
        5 => {
            let pad = "x".repeat(1024 + (n % 16_384) as usize);
            (
                format!("GET /healthz HTTP/1.1\r\nX-Pad: {pad}\r\n\r\n").into_bytes(),
                None,
            )
        }
        // Header flood.
        6 => {
            let mut head = String::from("GET /healthz HTTP/1.1\r\n");
            for i in 0..(8 + n % 120) {
                head.push_str(&format!("X-H{i}: {b}\r\n"));
            }
            head.push_str("\r\n");
            (head.into_bytes(), None)
        }
        // Mid-request disconnect: a valid authorized request cut short
        // at an arbitrary byte.
        _ => {
            let bytes = format!(
                "GET /projects/alu/status HTTP/1.1\r\nAuthorization: Bearer {FUZZ_TOKEN}\r\n\r\n"
            )
            .into_bytes();
            let cut = (n as usize) % bytes.len().max(1);
            (bytes, Some(cut))
        }
    }
}

harness::props! {
    config(cases = 256);

    fn server_answers_or_closes_cleanly(
        shape in 0u64..8,
        a in ascii_noise(0..96),
        b in printable_noise(0..32),
        n in 0u64..20_000,
    ) {
        let (payload, cut) = build_payload(shape, &a, &b, n);
        let response = exchange(&payload, cut);
        assert_well_formed(&response, &format!("shape {shape} a={a:?} b={b:?} n={n}"));
        assert_alive();
    }
}

harness::props! {
    config(cases = 512);

    fn parser_is_total_over_arbitrary_bytes(
        head in ascii_noise(0..160),
        tail in printable_noise(0..48),
    ) {
        // No panic, no hang — any of the three outcomes is fine.
        let bytes = format!("{head}{tail}").into_bytes();
        let outcome = read_request(&mut std::io::Cursor::new(bytes));
        match outcome {
            ReadOutcome::Request(_) | ReadOutcome::Reject(_) | ReadOutcome::Disconnected => {}
        }
    }

    fn parser_rejects_carry_4xx_5xx_statuses(
        method in ascii_noise(1..12),
        target in printable_noise(0..24),
        version in ascii_noise(0..12),
    ) {
        let bytes = format!("{method} {target} {version}\r\n\r\n").into_bytes();
        if let ReadOutcome::Reject(reject) =
            read_request(&mut std::io::Cursor::new(bytes))
        {
            harness::prop_assert!(
                (400..600).contains(&reject.status),
                "reject status {} out of range", reject.status
            );
        }
    }
}

/// Directed (non-property) regression shots the fuzzer found or must
/// keep finding: each one is a full exchange against the live server.
#[test]
fn directed_hostile_payloads() {
    let cases: &[&[u8]] = &[
        b"",
        b"\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET /\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"GET / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        b"GET /%ff%fe%00 HTTP/1.1\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"\x00\x01\x02\x03\x04\x05",
        b"OPTIONS * HTTP/1.1\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nAuthorization: Bearer \xc3\x28\r\n\r\n",
    ];
    for payload in cases {
        let response = exchange(payload, None);
        assert_well_formed(&response, &format!("directed {payload:?}"));
    }
    assert_alive();
}
