//! Seeded generation strategies with integrated shrinking.
//!
//! A [`Strategy`] turns a [`SplitMix64`] stream into a shrink
//! [`Tree`]. Primitive ranges (`2usize..40`, `0.0f64..20.0`),
//! tuples of strategies, [`vec()`], weighted [`Union`]s and string
//! generators compose via [`StrategyExt::prop_map`], mirroring the
//! proptest surface the workspace's property tests were written
//! against — but fully offline and reproducible from a single `u64`.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

use simtools::rng::SplitMix64;

use crate::tree::{f64_tree, forest_to_vec, int_tree, Tree};

/// Something that can generate a shrinkable value from seeded entropy.
pub trait Strategy: 'static {
    /// The generated value type.
    type Value: Clone + fmt::Debug + 'static;

    /// Draws one value (with its shrink tree) from the stream.
    fn tree(&self, rng: &mut SplitMix64) -> Tree<Self::Value>;
}

/// A type-erased strategy, as produced by [`StrategyExt::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Clone + fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn tree(&self, rng: &mut SplitMix64) -> Tree<T> {
        (**self).tree(rng)
    }
}

/// Combinators available on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`; shrinking maps along.
    fn prop_map<U, F>(self, f: F) -> Map<Self, U>
    where
        U: Clone + fmt::Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(move |v: &Self::Value| f(v.clone())),
        }
    }

    /// Erases the concrete strategy type (for [`Union`] branches).
    fn boxed(self) -> BoxedStrategy<Self::Value> {
        Box::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

/// A shared mapping function from a strategy's value to `U`.
type MapFn<V, U> = Rc<dyn Fn(&V) -> U>;

/// See [`StrategyExt::prop_map`].
pub struct Map<S: Strategy, U> {
    inner: S,
    f: MapFn<S::Value, U>,
}

impl<S: Strategy, U: Clone + fmt::Debug + 'static> Strategy for Map<S, U> {
    type Value = U;
    fn tree(&self, rng: &mut SplitMix64) -> Tree<U> {
        self.inner.tree(rng).map(&self.f)
    }
}

/// Always generates the same value (no shrinking).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn tree(&self, _rng: &mut SplitMix64) -> Tree<T> {
        Tree::leaf(self.0.clone())
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn tree(&self, rng: &mut SplitMix64) -> Tree<$ty> {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let hi = self.end as i128;
                let span = (hi - lo) as u128;
                debug_assert!(span <= u64::MAX as u128, "range span too large");
                let v = lo + rng.next_below(span as u64) as i128;
                int_tree(lo, v).map(&(Rc::new(|v: &i128| *v as $ty) as Rc<dyn Fn(&i128) -> $ty>))
            }
        }
    )*};
}

int_range_strategy!(usize, u16, u32, u64, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn tree(&self, rng: &mut SplitMix64) -> Tree<f64> {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        f64_tree(self.start, v)
    }
}

/// The full `u16` domain (proptest's `any::<u16>()`).
pub fn any_u16() -> impl Strategy<Value = u16> {
    (0u32..65_536).prop_map(|v| v as u16)
}

/// The full `u64` domain (proptest's `any::<u64>()`).
pub fn any_u64() -> AnyU64 {
    AnyU64
}

/// See [`any_u64`].
#[derive(Debug, Clone, Copy)]
pub struct AnyU64;

impl Strategy for AnyU64 {
    type Value = u64;
    fn tree(&self, rng: &mut SplitMix64) -> Tree<u64> {
        let v = rng.next_u64();
        int_tree(0, v as i128).map(&(Rc::new(|v: &i128| *v as u64) as Rc<dyn Fn(&i128) -> u64>))
    }
}

/// A `Vec` of `len` elements drawn from `elem`; shrinks toward
/// `len.start` elements and smaller elements.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

/// See [`vec()`].
pub struct VecStrategy<S: Strategy> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn tree(&self, rng: &mut SplitMix64) -> Tree<Vec<S::Value>> {
        assert!(self.len.start < self.len.end, "empty length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.next_below(span.max(1)) as usize;
        let forest: Vec<Tree<S::Value>> = (0..n).map(|_| self.elem.tree(rng)).collect();
        forest_to_vec(forest, self.len.start)
    }
}

/// A weighted choice between strategies of the same value type
/// (proptest's `prop_oneof!`).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: Clone + fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn tree(&self, rng: &mut SplitMix64) -> Tree<T> {
        let total: u64 = self.branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "union needs at least one weighted branch");
        let mut pick = rng.next_below(total);
        for (w, s) in &self.branches {
            let w = u64::from(*w);
            if pick < w {
                return s.tree(rng);
            }
            pick -= w;
        }
        unreachable!("weight arithmetic covers the whole range")
    }
}

/// Uniform choice between boxed strategies.
pub fn one_of<T: Clone + fmt::Debug + 'static>(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
    Union {
        branches: branches.into_iter().map(|b| (1, b)).collect(),
    }
}

/// Weighted choice between boxed strategies.
pub fn weighted<T: Clone + fmt::Debug + 'static>(
    branches: Vec<(u32, BoxedStrategy<T>)>,
) -> Union<T> {
    Union { branches }
}

// ---------------------------------------------------------------------
// String generators (stand-ins for proptest's regex strategies).
// ---------------------------------------------------------------------

/// A string of `len` characters drawn uniformly from `alphabet`;
/// shrinks toward shorter strings over earlier alphabet characters.
pub fn string_from(alphabet: &'static str, len: Range<usize>) -> impl Strategy<Value = String> {
    let chars: std::rc::Rc<Vec<char>> = std::rc::Rc::new(alphabet.chars().collect());
    assert!(!chars.is_empty(), "empty alphabet");
    let picker = {
        let chars = std::rc::Rc::clone(&chars);
        (0usize..chars.len()).prop_map(move |i| chars[i])
    };
    vec(picker, len).prop_map(|cs| cs.into_iter().collect())
}

/// A DSL identifier: `[a-z][a-z0-9_]{0,10}`.
pub fn ident() -> impl Strategy<Value = String> {
    let head = string_from("abcdefghijklmnopqrstuvwxyz", 1..2);
    let tail = string_from("abcdefghijklmnopqrstuvwxyz0123456789_", 0..11);
    (head, tail).prop_map(|(h, t)| format!("{h}{t}"))
}

/// ASCII noise for parser-totality tests: `[ -~\n\t]{len}`.
pub fn ascii_noise(len: Range<usize>) -> impl Strategy<Value = String> {
    const ASCII: &str = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~\n\t";
    string_from(ASCII, len)
}

/// Printable noise including multibyte code points (a stand-in for
/// proptest's `\PC` class): exercises UTF-8 boundary handling.
pub fn printable_noise(len: Range<usize>) -> impl Strategy<Value = String> {
    const MIXED: &str = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~¡é×λЖ中語🚀—\u{00a0}\u{202e}";
    string_from(MIXED, len)
}

// ---------------------------------------------------------------------
// Tuples of strategies are strategies (up to arity 6).
// ---------------------------------------------------------------------

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn tree(&self, rng: &mut SplitMix64) -> Tree<Self::Value> {
        let f: MapFn<A::Value, (A::Value,)> = Rc::new(|a| (a.clone(),));
        self.0.tree(rng).map(&f)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn tree(&self, rng: &mut SplitMix64) -> Tree<Self::Value> {
        let a = self.0.tree(rng);
        let b = self.1.tree(rng);
        a.zip(&b)
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn tree(&self, rng: &mut SplitMix64) -> Tree<Self::Value> {
        let (ta, tb, tc) = (self.0.tree(rng), self.1.tree(rng), self.2.tree(rng));
        let nested = ta.zip(&tb.zip(&tc));
        #[allow(clippy::type_complexity)]
        let f: Rc<dyn Fn(&(A::Value, (B::Value, C::Value))) -> Self::Value> =
            Rc::new(|v| (v.0.clone(), v.1 .0.clone(), v.1 .1.clone()));
        nested.map(&f)
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn tree(&self, rng: &mut SplitMix64) -> Tree<Self::Value> {
        let (ta, tb, tc, td) = (
            self.0.tree(rng),
            self.1.tree(rng),
            self.2.tree(rng),
            self.3.tree(rng),
        );
        let nested = ta.zip(&tb).zip(&tc.zip(&td));
        #[allow(clippy::type_complexity)]
        let f: Rc<dyn Fn(&((A::Value, B::Value), (C::Value, D::Value))) -> Self::Value> =
            Rc::new(|v| {
                (
                    v.0 .0.clone(),
                    v.0 .1.clone(),
                    v.1 .0.clone(),
                    v.1 .1.clone(),
                )
            });
        nested.map(&f)
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn tree(&self, rng: &mut SplitMix64) -> Tree<Self::Value> {
        let (ta, tb, tc, td, te) = (
            self.0.tree(rng),
            self.1.tree(rng),
            self.2.tree(rng),
            self.3.tree(rng),
            self.4.tree(rng),
        );
        let nested = ta.zip(&tb).zip(&tc.zip(&td.zip(&te)));
        #[allow(clippy::type_complexity)]
        let f: Rc<
            dyn Fn(&((A::Value, B::Value), (C::Value, (D::Value, E::Value)))) -> Self::Value,
        > = Rc::new(|v| {
            (
                v.0 .0.clone(),
                v.0 .1.clone(),
                v.1 .0.clone(),
                v.1 .1 .0.clone(),
                v.1 .1 .1.clone(),
            )
        });
        nested.map(&f)
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
    for (A, B, C, D, E, F)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
    fn tree(&self, rng: &mut SplitMix64) -> Tree<Self::Value> {
        let (ta, tb, tc, td, te, tf) = (
            self.0.tree(rng),
            self.1.tree(rng),
            self.2.tree(rng),
            self.3.tree(rng),
            self.4.tree(rng),
            self.5.tree(rng),
        );
        let nested = ta.zip(&tb.zip(&tc)).zip(&td.zip(&te.zip(&tf)));
        #[allow(clippy::type_complexity)]
        let g: Rc<
            dyn Fn(
                &(
                    (A::Value, (B::Value, C::Value)),
                    (D::Value, (E::Value, F::Value)),
                ),
            ) -> Self::Value,
        > = Rc::new(|v| {
            (
                v.0 .0.clone(),
                v.0 .1 .0.clone(),
                v.0 .1 .1.clone(),
                v.1 .0.clone(),
                v.1 .1 .0.clone(),
                v.1 .1 .1.clone(),
            )
        });
        nested.map(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(0xDEAD_BEEF)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (3usize..17).tree(&mut r);
            assert!((3..17).contains(v.value()));
            let f = (0.25f64..8.0).tree(&mut r);
            assert!((0.25..8.0).contains(f.value()));
            let i = (-50i64..-10).tree(&mut r);
            assert!((-50..-10).contains(i.value()));
        }
    }

    #[test]
    fn shrinks_stay_in_bounds() {
        let mut r = rng();
        let t = (3usize..17).tree(&mut r);
        for c in t.children() {
            assert!((3..17).contains(c.value()), "{}", c.value());
        }
    }

    #[test]
    fn prop_map_carries_shrinks() {
        let mut r = rng();
        let t = (0usize..100).prop_map(|v| v * 3).tree(&mut r);
        if *t.value() > 0 {
            let kids = t.children();
            assert_eq!(*kids[0].value(), 0);
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut r = rng();
        for _ in 0..200 {
            let t = vec(0u32..10, 2..6).tree(&mut r);
            assert!((2..6).contains(&t.value().len()));
        }
    }

    #[test]
    fn union_picks_all_branches() {
        let s = one_of(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*s.tree(&mut r).value() as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut r = SplitMix64::new(seed);
            let s = (2usize..40, vec(any_u16(), 0..120));
            format!("{:?}", s.tree(&mut r).value())
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
