//! The chaos suite: random flows driven through random fault plans,
//! injected metadata crashes, and a per-seed random scheduling policy,
//! asserting the failure-semantics contract end to end (see
//! `hercules::chaos` for the property list).
//!
//! Two layers:
//!
//! * a **fixed sweep** over seeds 0..64 — the same deterministic set
//!   the `chaos` CI stage runs, so a CI failure replays locally (and
//!   via `herc chaos --seed N`) bit-for-bit;
//! * a **randomized layer** through the harness runner, which explores
//!   fresh seeds every `HARNESS_SEED` and shrinks to the smallest
//!   failing scenario seed.

use harness::prelude::*;
use hercules::chaos::{run_suite, ChaosScenario};

/// The fixed seed set CI runs (64 scenarios, bounded runtime).
#[test]
fn fixed_seed_sweep_is_clean() {
    let reports = run_suite(0, 64);
    let failures: Vec<String> = reports
        .iter()
        .filter(|r| !r.is_clean())
        .map(|r| r.to_string())
        .collect();
    assert!(
        failures.is_empty(),
        "chaos violations:\n{}",
        failures.join("\n")
    );
    // The sweep must actually exercise the degraded paths, or the
    // clean verdict is vacuous.
    assert!(
        reports.iter().any(|r| r.blocked > 0),
        "no scenario ever blocked an activity"
    );
    assert!(
        reports.iter().any(|r| r.skipped > 0),
        "no scenario ever skipped a downstream activity"
    );
    assert!(
        reports.iter().any(|r| r.crash_fired),
        "no scenario ever fired its injected crash"
    );
    assert!(
        reports.iter().any(|r| r.executed > 0 && r.blocked == 0),
        "no scenario ever completed cleanly"
    );
    // Each seed also draws a scheduling policy; 64 seeds must cover
    // all four or the sweep only ever chaoses the default engine path.
    let policies: std::collections::BTreeSet<&str> =
        reports.iter().map(|r| r.policy.as_str()).collect();
    assert_eq!(
        policies.len(),
        4,
        "sweep covered only policies {policies:?}"
    );
}

harness::props! {
    config(cases = 32);

    fn random_scenarios_uphold_all_properties(seed in 0u64..1_000_000) {
        let report = ChaosScenario::from_seed(seed).run();
        prop_assert!(report.is_clean(), "{report}");
    }

    fn scenarios_are_reproducible(seed in 0u64..1_000_000) {
        let a = ChaosScenario::from_seed(seed).run();
        let b = ChaosScenario::from_seed(seed).run();
        prop_assert_eq!(a, b);
    }
}
