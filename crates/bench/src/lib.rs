//! Shared helpers for the experiment binaries and micro-benchmarks.
//!
//! Each `src/bin/*.rs` binary regenerates one of the paper's artifacts
//! (Table I, Figures 1–8); the [`kernels`] modules measure the
//! algorithmic components (B1–B10 in DESIGN.md) via `harness::bench`
//! and are aggregated by the `benchmarks` binary into
//! `BENCH_schedflow.json`. This library holds the scenario builders
//! and the database-state renderer they share.
//!
//! # Baseline workflow
//!
//! The committed `BENCH_schedflow.json` at the workspace root is the
//! perf baseline. `scripts/ci.sh` (stage `bench`) runs the
//! `bench_compare` binary, which measures a fresh quick run and fails
//! when any shared bench's median **and** min both exceed the
//! baseline median by more than the tolerance (±30 % by default —
//! override with `--tolerance`, point at other reports with
//! `--baseline`/`--fresh`). After an intentional performance change,
//! regenerate and commit the baseline:
//!
//! ```text
//! cargo run --release -p bench --bin benchmarks   # full sampling plan
//! git add BENCH_schedflow.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;

use hercules::Hercules;
use metadata::MetadataDb;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

/// A manager on the paper's circuit schema with `team` designers.
pub fn circuit_manager(team: usize, seed: u64) -> Hercules {
    Hercules::new(
        examples::circuit_design(),
        ToolLibrary::standard(),
        Team::of_size(team),
        seed,
    )
}

/// A manager on the nine-activity ASIC flow with `team` designers.
pub fn asic_manager(team: usize, seed: u64) -> Hercules {
    Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(team),
        seed,
    )
}

/// A manager on a synthetic pipeline schema of `stages` activities —
/// the scaling knob for planning/execution benches.
pub fn pipeline_manager(stages: usize, team: usize, seed: u64) -> Hercules {
    Hercules::new(
        examples::pipeline(stages),
        ToolLibrary::standard(),
        Team::of_size(team),
        seed,
    )
}

/// Renders the metadata database in the style of the paper's Figures
/// 5–7: execution space (entity containers and their instances) beside
/// schedule space (activity containers and their schedule instances),
/// with completion links shown as arrows.
pub fn render_db_state(db: &MetadataDb) -> String {
    let mut out = String::new();
    out.push_str("Execution Space                     | Schedule Space\n");
    out.push_str("------------------------------------+------------------------------------\n");
    let mut left: Vec<String> = Vec::new();
    for class in db.entity_classes() {
        let container = db.entity_container(class).expect("listed class exists");
        left.push(format!("[{class}]"));
        for &id in container {
            let inst = db.entity_instance(id);
            left.push(format!(
                "  {} v{} at {} by {}",
                id,
                inst.version(),
                inst.created_at(),
                inst.creator()
            ));
        }
    }
    let mut right: Vec<String> = Vec::new();
    for activity in db.activities() {
        let container = db
            .schedule_container(activity)
            .expect("listed activity exists");
        right.push(format!("({activity})"));
        for &id in container {
            let sc = db.schedule_instance(id);
            let link = match sc.linked_entity() {
                Some(e) => format!(" -> {e}"),
                None => String::new(),
            };
            right.push(format!(
                "  {} v{} [{} .. {}]{}",
                id,
                sc.version(),
                sc.planned_start(),
                sc.planned_finish(),
                link
            ));
        }
    }
    let rows = left.len().max(right.len());
    for i in 0..rows {
        let l = left.get(i).map(String::as_str).unwrap_or("");
        let r = right.get(i).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{l:<36}| {r}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_db_state_shows_both_spaces() {
        let mut h = circuit_manager(2, 42);
        h.plan("performance").unwrap();
        h.execute("performance").unwrap();
        let state = render_db_state(h.db());
        assert!(state.contains("Execution Space"));
        assert!(state.contains("[netlist]"));
        assert!(state.contains("(Simulate)"));
        assert!(state.contains(" -> ei")); // completion links
    }

    #[test]
    fn scenario_builders_work() {
        assert_eq!(circuit_manager(1, 0).schema().rules().len(), 2);
        assert_eq!(asic_manager(1, 0).schema().rules().len(), 9);
        assert_eq!(pipeline_manager(5, 1, 0).schema().rules().len(), 5);
    }
}
