//! Capacity-constrained scheduling (resource levelling).
//!
//! CPM assumes unlimited resources; real design teams have three
//! designers and two simulator licenses. [`level_resources`] produces a
//! feasible schedule with a *serial schedule generation scheme*:
//! activities are taken in a priority order (minimum total slack first,
//! the classic heuristic) and each is started at the earliest time where
//! its predecessors have finished *and* every demanded resource has
//! spare capacity for its whole duration.

use std::collections::HashMap;

use crate::cpm::CpmAnalysis;
use crate::error::ScheduleError;
use crate::network::{ActivityId, ScheduleNetwork, WorkDays};
use crate::resource::ResourcePool;

/// A resource-feasible schedule: start/finish per activity.
#[derive(Debug, Clone, PartialEq)]
pub struct LeveledSchedule {
    starts: Vec<WorkDays>,
    finishes: Vec<WorkDays>,
    makespan: WorkDays,
}

impl LeveledSchedule {
    /// Scheduled start of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from the levelled network.
    pub fn start(&self, id: ActivityId) -> WorkDays {
        self.starts[id.index()]
    }

    /// Scheduled finish of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from the levelled network.
    pub fn finish(&self, id: ActivityId) -> WorkDays {
        self.finishes[id.index()]
    }

    /// Total schedule length.
    pub fn makespan(&self) -> WorkDays {
        self.makespan
    }
}

/// Event-list simulation of resource usage over time for one resource.
#[derive(Debug, Default)]
struct UsageProfile {
    /// (time, delta) events; usage at `t` is the sum of deltas at or
    /// before `t`.
    events: Vec<(f64, i64)>,
}

impl UsageProfile {
    /// Peak usage over the half-open interval `[start, finish)`.
    ///
    /// The usage level at time `t` is the sum of all event deltas with
    /// event time `<= t`; the peak is the maximum level attained at
    /// `start` or at any event inside the interval.
    fn peak_in(&self, start: f64, finish: f64) -> i64 {
        if finish <= start {
            return 0;
        }
        let mut events = self.events.clone();
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut usage = 0i64;
        let mut peak = 0i64;
        let mut crossed_start = false;
        for (t, delta) in events {
            if t >= finish {
                break;
            }
            if !crossed_start && t > start {
                // Level carried into the interval from earlier events.
                peak = peak.max(usage);
                crossed_start = true;
            }
            usage += delta;
            if t >= start {
                peak = peak.max(usage);
            }
        }
        // Level at `start` when no event falls inside the interval, or
        // the level held approaching `finish` — both are valid samples.
        peak.max(usage)
    }

    fn reserve(&mut self, start: f64, finish: f64, units: i64) {
        self.events.push((start, units));
        self.events.push((finish, -units));
    }
}

/// Produces a resource-feasible schedule for `network` against `pool`.
///
/// Priority: smaller CPM total slack first (critical activities get
/// resources first), ties broken by earliest CPM start then insertion
/// order, making the result deterministic. Start times only move *later*
/// than CPM's earliest starts, never earlier.
///
/// Activities demanding a resource the pool does not contain, or more
/// units than its total capacity, are rejected.
///
/// # Errors
///
/// * [`ScheduleError::UnknownResource`] — a demand names an absent
///   resource.
/// * [`ScheduleError::InfeasibleDemand`] — a single activity demands
///   more than a resource's capacity.
///
/// # Example
///
/// ```
/// use schedule::{level_resources, Resource, ResourcePool, ScheduleNetwork, WorkDays};
///
/// # fn main() -> Result<(), schedule::ScheduleError> {
/// let mut net = ScheduleNetwork::new();
/// let a = net.add_activity("block_a", WorkDays::new(2.0))?;
/// let b = net.add_activity("block_b", WorkDays::new(2.0))?;
/// net.add_demand(a, "designer", 1)?;
/// net.add_demand(b, "designer", 1)?;
/// let pool: ResourcePool = [Resource::new("designer", 1)].into_iter().collect();
/// let leveled = level_resources(&net, &pool)?;
/// // One designer: the two independent blocks serialize.
/// assert_eq!(leveled.makespan(), WorkDays::new(4.0));
/// # Ok(())
/// # }
/// ```
pub fn level_resources(
    network: &ScheduleNetwork,
    pool: &ResourcePool,
) -> Result<LeveledSchedule, ScheduleError> {
    let cpm: CpmAnalysis = network.analyze()?;
    // Validate demands up front.
    for id in network.activities() {
        for (name, units) in network.demands(id) {
            if !pool.check_demand(name, *units)? {
                return Err(ScheduleError::InfeasibleDemand {
                    activity: id,
                    resource: name.clone(),
                });
            }
        }
    }
    // Priority order: min-slack first, then early start, then id.
    let mut order: Vec<ActivityId> = network.activities().collect();
    order.sort_by(|&x, &y| {
        let tx = cpm.times(x);
        let ty = cpm.times(y);
        tx.total_slack
            .days()
            .total_cmp(&ty.total_slack.days())
            .then(tx.early_start.days().total_cmp(&ty.early_start.days()))
            .then(x.cmp(&y))
    });
    // But we must respect precedence: process in a precedence-feasible
    // sweep, selecting the highest-priority ready activity each step.
    let mut priority = vec![0usize; network.activity_count()];
    for (rank, &id) in order.iter().enumerate() {
        priority[id.index()] = rank;
    }
    let mut remaining_preds: Vec<usize> = network
        .activities()
        .map(|id| network.predecessors(id).count())
        .collect();
    let mut ready: Vec<ActivityId> = network
        .activities()
        .filter(|id| remaining_preds[id.index()] == 0)
        .collect();

    let n = network.activity_count();
    let mut starts = vec![WorkDays::ZERO; n];
    let mut finishes = vec![WorkDays::ZERO; n];
    let mut profiles: HashMap<String, UsageProfile> = HashMap::new();
    let mut scheduled = vec![false; n];
    let mut makespan = 0.0f64;

    while let Some(pos) = ready
        .iter()
        .enumerate()
        .min_by_key(|(_, id)| priority[id.index()])
        .map(|(i, _)| i)
    {
        let id = ready.swap_remove(pos);
        let duration = network.duration(id).days();
        // Earliest precedence-feasible start.
        let mut t = network
            .predecessors(id)
            .map(|p| finishes[p.index()].days())
            .fold(0.0f64, f64::max);
        // Candidate start times: only at t or at a release event after t.
        if duration > 0.0 {
            loop {
                let fits = network.demands(id).iter().all(|(name, units)| {
                    let cap = pool.capacity_of(name).expect("validated above");
                    let profile = profiles.entry(name.clone()).or_default();
                    profile.peak_in(t, t + duration) + i64::from(*units) <= i64::from(cap)
                });
                if fits {
                    break;
                }
                // Advance to the next release event after t.
                let next = network
                    .demands(id)
                    .iter()
                    .filter_map(|(name, _)| profiles.get(name))
                    .flat_map(|p| p.events.iter())
                    .filter(|(et, delta)| *delta < 0 && *et > t)
                    .map(|(et, _)| *et)
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    next.is_finite(),
                    "demand validated against capacity, so a feasible slot must exist"
                );
                t = next;
            }
        }
        if duration > 0.0 {
            for (name, units) in network.demands(id) {
                profiles.entry(name.clone()).or_default().reserve(
                    t,
                    t + duration,
                    i64::from(*units),
                );
            }
        }
        starts[id.index()] = WorkDays::new(t);
        finishes[id.index()] = WorkDays::new(t + duration);
        makespan = makespan.max(t + duration);
        scheduled[id.index()] = true;
        for s in network.successors(id) {
            remaining_preds[s.index()] -= 1;
            if remaining_preds[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert!(scheduled.iter().all(|&s| s), "all activities scheduled");
    Ok(LeveledSchedule {
        starts,
        finishes,
        makespan: WorkDays::new(makespan),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;

    fn one_designer() -> ResourcePool {
        [Resource::new("designer", 1)].into_iter().collect()
    }

    #[test]
    fn unconstrained_matches_cpm() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(2.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(3.0)).unwrap();
        net.add_precedence(a, b).unwrap();
        let pool = ResourcePool::new();
        let lev = level_resources(&net, &pool).unwrap();
        assert_eq!(lev.makespan(), WorkDays::new(5.0));
        assert_eq!(lev.start(b), WorkDays::new(2.0));
    }

    #[test]
    fn single_resource_serializes_parallel_work() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(2.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(3.0)).unwrap();
        net.add_demand(a, "designer", 1).unwrap();
        net.add_demand(b, "designer", 1).unwrap();
        let lev = level_resources(&net, &one_designer()).unwrap();
        assert_eq!(lev.makespan(), WorkDays::new(5.0));
        // They must not overlap.
        let (s1, f1) = (lev.start(a).days(), lev.finish(a).days());
        let (s2, f2) = (lev.start(b).days(), lev.finish(b).days());
        assert!(f1 <= s2 || f2 <= s1);
    }

    #[test]
    fn two_designers_allow_overlap() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(2.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(3.0)).unwrap();
        net.add_demand(a, "designer", 1).unwrap();
        net.add_demand(b, "designer", 1).unwrap();
        let pool: ResourcePool = [Resource::new("designer", 2)].into_iter().collect();
        let lev = level_resources(&net, &pool).unwrap();
        assert_eq!(lev.makespan(), WorkDays::new(3.0));
    }

    #[test]
    fn critical_work_wins_the_resource() {
        // Long chain (critical) and short independent task compete for
        // one designer; the critical chain's head should go first.
        let mut net = ScheduleNetwork::new();
        let head = net.add_activity("head", WorkDays::new(3.0)).unwrap();
        let tail = net.add_activity("tail", WorkDays::new(5.0)).unwrap();
        let side = net.add_activity("side", WorkDays::new(1.0)).unwrap();
        net.add_precedence(head, tail).unwrap();
        net.add_demand(head, "designer", 1).unwrap();
        net.add_demand(side, "designer", 1).unwrap();
        let lev = level_resources(&net, &one_designer()).unwrap();
        assert_eq!(lev.start(head), WorkDays::ZERO);
        assert_eq!(lev.start(side), WorkDays::new(3.0));
        assert_eq!(lev.makespan(), WorkDays::new(8.0));
    }

    #[test]
    fn unknown_resource_rejected() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        net.add_demand(a, "ghost", 1).unwrap();
        assert!(matches!(
            level_resources(&net, &ResourcePool::new()),
            Err(ScheduleError::UnknownResource(_))
        ));
    }

    #[test]
    fn infeasible_demand_rejected() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        net.add_demand(a, "designer", 5).unwrap();
        assert!(matches!(
            level_resources(&net, &one_designer()),
            Err(ScheduleError::InfeasibleDemand { .. })
        ));
    }

    #[test]
    fn leveled_never_earlier_than_cpm() {
        let mut net = ScheduleNetwork::new();
        let ids: Vec<_> = (0..6)
            .map(|i| {
                net.add_activity(format!("t{i}"), WorkDays::new(1.0 + i as f64))
                    .unwrap()
            })
            .collect();
        net.add_precedence(ids[0], ids[2]).unwrap();
        net.add_precedence(ids[1], ids[2]).unwrap();
        net.add_precedence(ids[2], ids[5]).unwrap();
        for &id in &ids {
            net.add_demand(id, "designer", 1).unwrap();
        }
        let pool: ResourcePool = [Resource::new("designer", 2)].into_iter().collect();
        let cpm = net.analyze().unwrap();
        let lev = level_resources(&net, &pool).unwrap();
        for &id in &ids {
            assert!(lev.start(id).days() >= cpm.times(id).early_start.days() - 1e-9);
        }
    }

    #[test]
    fn zero_duration_activities_cost_nothing() {
        let mut net = ScheduleNetwork::new();
        let m = net.add_activity("milestone", WorkDays::ZERO).unwrap();
        net.add_demand(m, "designer", 1).unwrap();
        let lev = level_resources(&net, &one_designer()).unwrap();
        assert_eq!(lev.makespan(), WorkDays::ZERO);
    }
}
