//! Structural CPM properties on two DAG families the workspace's
//! scenario builders actually produce: pure pipelines (the `pipeline`
//! schema) and layered fan-in/fan-out networks (the bench topology).
//!
//! Complements `cpm_properties.rs` (fully random DAGs) with the shapes
//! where the expected answers are computable in closed form:
//!
//! * the critical path's summed duration equals the makespan,
//! * every total slack is non-negative,
//! * critical activities have (exactly) zero slack — and in a pipeline
//!   *everything* is critical and the makespan is the duration sum.

use harness::prelude::*;
use schedule::{ActivityId, ScheduleNetwork, WorkDays};

/// A pure chain: `t0 -> t1 -> ... -> t{n-1}` with random durations in
/// half-day steps.
fn arb_pipeline() -> impl Strategy<Value = (ScheduleNetwork, Vec<ActivityId>)> {
    vec(0u32..24, 1..30).prop_map(|durations| {
        let mut net = ScheduleNetwork::new();
        let ids: Vec<_> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                net.add_activity(format!("t{i}"), WorkDays::new(f64::from(d) * 0.5))
                    .expect("unique names")
            })
            .collect();
        for pair in ids.windows(2) {
            net.add_precedence(pair[0], pair[1]).expect("forward edge");
        }
        (net, ids)
    })
}

/// A layered DAG: `layers x width` activities, each wired to up to two
/// predecessors in the previous layer (the B1 bench topology, but with
/// randomized durations and fan-in).
fn arb_layered() -> impl Strategy<Value = ScheduleNetwork> {
    (
        1usize..8,
        1usize..6,
        vec(0u32..16, 1..48),
        vec((any_u16(), any_u16()), 0..48),
    )
        .prop_map(|(layers, width, durations, picks)| {
            let mut net = ScheduleNetwork::new();
            let mut all: Vec<Vec<ActivityId>> = Vec::new();
            let mut k = 0usize;
            for l in 0..layers {
                let mut this = Vec::new();
                for w in 0..width {
                    let d = durations.get(k % durations.len()).copied().unwrap_or(1);
                    let id = net
                        .add_activity(format!("l{l}w{w}"), WorkDays::new(f64::from(d) * 0.25))
                        .expect("unique names");
                    if l > 0 {
                        let prev = &all[l - 1];
                        let (a, b) = picks.get(k % picks.len().max(1)).copied().unwrap_or((0, 1));
                        net.add_precedence(prev[a as usize % prev.len()], id)
                            .expect("forward edge");
                        net.add_precedence(prev[b as usize % prev.len()], id).ok();
                        // may duplicate the first pick
                    }
                    this.push(id);
                    k += 1;
                }
                all.push(this);
            }
            net
        })
}

harness::props! {
    config(cases = 48);

    fn pipeline_makespan_is_duration_sum(input in arb_pipeline()) {
        let (net, ids) = input;
        let cpm = net.analyze().expect("acyclic");
        let serial: f64 = ids.iter().map(|&id| net.duration(id).days()).sum();
        prop_assert!((cpm.project_duration().days() - serial).abs() < 1e-9);
        // In a chain, every activity is critical with zero slack and
        // the critical path is the whole chain, in order.
        for &id in &ids {
            prop_assert!(cpm.is_critical(id));
            prop_assert!(cpm.times(id).total_slack.days().abs() < 1e-9);
        }
        prop_assert_eq!(cpm.critical_path(), &ids[..]);
    }

    fn layered_critical_path_duration_equals_makespan(net in arb_layered()) {
        let cpm = net.analyze().expect("acyclic");
        let path = cpm.critical_path();
        prop_assert!(!path.is_empty());
        let along_path: f64 = path.iter().map(|&id| net.duration(id).days()).sum();
        prop_assert!(
            (along_path - cpm.project_duration().days()).abs() < 1e-9,
            "critical path sums to {along_path}, makespan {}",
            cpm.project_duration().days()
        );
    }

    fn layered_slacks_are_nonnegative(net in arb_layered()) {
        let cpm = net.analyze().expect("acyclic");
        for id in net.activities() {
            let t = cpm.times(id);
            prop_assert!(t.total_slack.days() >= -1e-9, "negative total slack on {id:?}");
            prop_assert!(t.free_slack.days() >= -1e-9, "negative free slack on {id:?}");
        }
    }

    fn layered_critical_iff_zero_slack(net in arb_layered()) {
        let cpm = net.analyze().expect("acyclic");
        for id in net.activities() {
            let slack = cpm.times(id).total_slack.days();
            if cpm.is_critical(id) {
                prop_assert!(slack.abs() < 1e-9, "critical {id:?} has slack {slack}");
            } else {
                prop_assert!(slack > 1e-9, "non-critical {id:?} has slack {slack}");
            }
        }
        // At least one activity sits on the critical path.
        prop_assert!(net.activities().any(|id| cpm.is_critical(id)));
    }
}
