//! Descriptive statistics over duration histories — the summary a
//! project manager reads before trusting a prediction, and the inputs
//! three-point estimates are calibrated from.

use std::fmt;

/// Summary statistics of one activity's measured durations.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (mean of middle two for even counts).
    pub median: f64,
}

impl DurationStats {
    /// Computes statistics over `history`. Returns `None` for an empty
    /// history.
    ///
    /// # Example
    ///
    /// ```
    /// use predict::DurationStats;
    ///
    /// let s = DurationStats::of(&[2.0, 4.0, 6.0]).expect("nonempty");
    /// assert_eq!(s.mean, 4.0);
    /// assert_eq!(s.median, 4.0);
    /// assert_eq!(s.std_dev, 2.0);
    /// ```
    pub fn of(history: &[f64]) -> Option<Self> {
        if history.is_empty() {
            return None;
        }
        let n = history.len();
        let mean = history.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            history
                .iter()
                .map(|&x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (n - 1) as f64
        };
        let mut sorted = history.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(DurationStats {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// A calibrated three-point estimate `(optimistic, most-likely,
    /// pessimistic)` from the history: `(min, median, max)` — the
    /// simplest defensible calibration, suitable for feeding PERT or
    /// Monte Carlo analysis.
    pub fn three_point(&self) -> (f64, f64, f64) {
        (self.min, self.median, self.max)
    }

    /// Coefficient of variation (`std_dev / mean`); 0 when the mean is
    /// 0. High values warn that any point prediction is shaky.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

impl fmt::Display for DurationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean {:.2} median {:.2} sd {:.2} [{:.2} .. {:.2}]",
            self.count, self.mean, self.median, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history() {
        assert!(DurationStats::of(&[]).is_none());
    }

    #[test]
    fn single_point() {
        let s = DurationStats::of(&[3.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.three_point(), (3.0, 3.0, 3.0));
    }

    #[test]
    fn known_values() {
        let s = DurationStats::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
        // Sample sd of this classic dataset is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 0.01);
    }

    #[test]
    fn even_median_is_midpoint() {
        let s = DurationStats::of(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn cv_flags_noise() {
        let tight = DurationStats::of(&[5.0, 5.1, 4.9]).unwrap();
        let wild = DurationStats::of(&[1.0, 9.0, 5.0]).unwrap();
        assert!(tight.cv() < 0.05);
        assert!(wild.cv() > 0.5);
    }

    #[test]
    fn display_mentions_count_and_range() {
        let s = DurationStats::of(&[1.0, 2.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("[1.00 .. 2.00]"));
    }

    #[test]
    fn unordered_input_handled() {
        let s = DurationStats::of(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 5.0);
    }
}
