//! Queries over the metadata database — §IV-B of the paper.
//!
//! Two query families are supported:
//!
//! * **queries into design schedule data** — "prior schedule plan data
//!   can be used as a resource. For example, a query to show the
//!   duration of an activity the last time it was performed could be
//!   used to predict the duration of the present design";
//! * **queries into design schedule metadata** — "which schedule plans
//!   were used to create the present schedule plan ... they can show
//!   the evolution of a design schedule".
//!
//! Plus execution-space queries (instance history, derivation chains)
//! that the status displays are built from.

use schedule::WorkDays;

use crate::database::MetadataDb;
use crate::ids::{EntityInstanceId, ScheduleInstanceId};

impl MetadataDb {
    /// The measured duration of `activity` the last time it completed —
    /// the elapsed time from the activity's first run of that iteration
    /// cycle to the linked final instance. Returns the duration of the
    /// most recent *finished* run when no completion link exists yet.
    pub fn last_duration(&self, activity: &str) -> Option<WorkDays> {
        // Prefer the linked completion: first-run start to final
        // instance creation.
        if let (Some(start), Some(finish)) =
            (self.actual_start(activity), self.actual_finish(activity))
        {
            return Some(finish.saturating_sub(start));
        }
        self.runs_of(activity)
            .iter()
            .rev()
            .find_map(|r| r.duration())
    }

    /// All measured run durations of `activity`, oldest first — the
    /// history a prediction model consumes.
    pub fn duration_history(&self, activity: &str) -> Vec<WorkDays> {
        self.runs_of(activity)
            .iter()
            .filter_map(|r| r.duration())
            .collect()
    }

    /// The provenance chain of a schedule instance, newest first:
    /// `sc` itself, the plan it was derived from, and so on back to the
    /// original plan — "the evolution of a design schedule".
    ///
    /// # Panics
    ///
    /// Panics if `sc` is not from this database.
    pub fn plan_evolution(&self, sc: ScheduleInstanceId) -> Vec<ScheduleInstanceId> {
        let mut chain = vec![sc];
        let mut current = sc;
        while let Some(prev) = self.schedule_instance(current).derived_from() {
            chain.push(prev);
            current = prev;
        }
        chain
    }

    /// The derivation cone of an entity instance: every instance it
    /// transitively depends on, in dependency order (inputs before the
    /// instances derived from them), ending with `id` itself.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this database.
    pub fn derivation_of(&self, id: EntityInstanceId) -> Vec<EntityInstanceId> {
        // Instance ids are allocated in creation order, and an instance
        // can only depend on instances created before it, so a simple
        // reverse-DFS + sort is a topological order.
        let mut seen = vec![id];
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            for &dep in self.entity_instance(v).depends_on() {
                if !seen.contains(&dep) {
                    seen.push(dep);
                    stack.push(dep);
                }
            }
        }
        seen.sort();
        seen
    }

    /// Activities whose latest plan is complete (linked to final design
    /// data), sorted.
    pub fn completed_activities(&self) -> Vec<&str> {
        self.activities()
            .filter(|a| self.current_plan(a).is_some_and(|sc| sc.is_complete()))
            .collect()
    }

    /// Activities that have started (some run exists) but whose latest
    /// plan is not complete, sorted.
    pub fn in_progress_activities(&self) -> Vec<&str> {
        self.activities()
            .filter(|a| {
                self.actual_start(a).is_some()
                    && !self.current_plan(a).is_some_and(|sc| sc.is_complete())
            })
            .collect()
    }

    /// Activities with a current plan but no runs yet, sorted.
    pub fn pending_activities(&self) -> Vec<&str> {
        self.activities()
            .filter(|a| self.current_plan(a).is_some() && self.actual_start(a).is_none())
            .collect()
    }

    /// Finish slip of `activity` in days (positive = late) against its
    /// *latest* plan. `None` until completion is linked.
    pub fn finish_slip(&self, activity: &str) -> Option<f64> {
        let plan = self.current_plan(activity)?;
        let actual = self.actual_finish(activity)?;
        Some(actual.days() - plan.planned_finish().days())
    }

    /// Entity instances created by `designer`, oldest first — the
    /// who-did-what query behind per-designer workload views.
    pub fn instances_by(&self, designer: &str) -> Vec<EntityInstanceId> {
        let mut out: Vec<EntityInstanceId> = self
            .entity_classes()
            .map(str::to_owned)
            .collect::<Vec<_>>()
            .iter()
            .flat_map(|class| {
                self.entity_container(class)
                    .expect("listed class exists")
                    .to_vec()
            })
            .filter(|&id| self.entity_instance(id).creator() == designer)
            .collect();
        out.sort();
        out
    }

    /// Runs whose span intersects the half-open window `[from, to)`,
    /// oldest first. Unfinished runs are treated as extending to the
    /// window end.
    pub fn runs_between(&self, from: WorkDays, to: WorkDays) -> Vec<&crate::Run> {
        self.runs()
            .iter()
            .filter(|r| {
                let start = r.started_at().days();
                let end = r.finished_at().map_or(f64::INFINITY, |f| f.days());
                start < to.days() && end > from.days()
            })
            .collect()
    }

    /// Total measured run time per designer, sorted busiest first —
    /// the utilisation data resource optimization needs.
    pub fn workload_by_designer(&self) -> Vec<(String, WorkDays)> {
        let mut totals: std::collections::BTreeMap<String, f64> = Default::default();
        for run in self.runs() {
            if let Some(d) = run.duration() {
                *totals.entry(run.operator().to_owned()).or_default() += d.days();
            }
        }
        let mut out: Vec<(String, WorkDays)> = totals
            .into_iter()
            .map(|(name, days)| (name, WorkDays::new(days)))
            .collect();
        out.sort_by(|a, b| b.1.days().total_cmp(&a.1.days()).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;

    /// Builds a database with a full plan/execute/link cycle on the
    /// paper's circuit schema.
    fn populated() -> (MetadataDb, ScheduleInstanceId, EntityInstanceId) {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        let session = db.begin_planning(WorkDays::ZERO);
        let sc_create = db
            .plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        let sc_sim = db
            .plan_activity(session, "Simulate", WorkDays::new(2.0), WorkDays::new(3.0))
            .unwrap();

        let stim_data = db.store_data("vec.stim", b"0101".to_vec());
        let stim = db
            .supply_input("stimuli", "alice", WorkDays::ZERO, stim_data)
            .unwrap();

        // Create iterates twice before the designer is satisfied.
        let d1 = db.store_data("v1.net", b"bad".to_vec());
        let r1 = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let _e1 = db
            .finish_run(r1, "netlist", d1, WorkDays::new(1.0), &[])
            .unwrap();
        let d2 = db.store_data("v2.net", b"good".to_vec());
        let r2 = db.begin_run("Create", "alice", WorkDays::new(1.0)).unwrap();
        let e2 = db
            .finish_run(r2, "netlist", d2, WorkDays::new(2.5), &[])
            .unwrap();
        db.link_completion(sc_create, e2).unwrap();

        // Simulate runs once using the final netlist + stimuli.
        let d3 = db.store_data("perf.rpt", b"ok".to_vec());
        let r3 = db.begin_run("Simulate", "bob", WorkDays::new(2.5)).unwrap();
        let e3 = db
            .finish_run(r3, "performance", d3, WorkDays::new(4.0), &[e2, stim])
            .unwrap();
        db.link_completion(sc_sim, e3).unwrap();
        (db, sc_create, e3)
    }

    #[test]
    fn last_duration_prefers_linked_completion() {
        let (db, _, _) = populated();
        // Create: first run started at 0, final instance at 2.5.
        assert_eq!(db.last_duration("Create"), Some(WorkDays::new(2.5)));
        // Simulate: 2.5 → 4.0.
        assert_eq!(db.last_duration("Simulate"), Some(WorkDays::new(1.5)));
        assert_eq!(db.last_duration("ghost"), None);
    }

    #[test]
    fn duration_history_lists_all_runs() {
        let (db, _, _) = populated();
        let hist = db.duration_history("Create");
        assert_eq!(hist, vec![WorkDays::new(1.0), WorkDays::new(1.5)]);
    }

    #[test]
    fn plan_evolution_walks_versions() {
        let (mut db, sc1, _) = populated();
        let s2 = db.begin_planning(WorkDays::new(5.0));
        let sc2 = db
            .plan_activity(s2, "Create", WorkDays::new(1.0), WorkDays::new(2.0))
            .unwrap();
        let s3 = db.begin_planning(WorkDays::new(6.0));
        let sc3 = db
            .plan_activity(s3, "Create", WorkDays::new(2.0), WorkDays::new(2.0))
            .unwrap();
        assert_eq!(db.plan_evolution(sc3), vec![sc3, sc2, sc1]);
        assert_eq!(db.plan_evolution(sc1), vec![sc1]);
    }

    #[test]
    fn derivation_cone() {
        let (db, _, perf) = populated();
        let chain = db.derivation_of(perf);
        // performance depends on netlist v2 and stimuli; not netlist v1.
        assert_eq!(chain.len(), 3);
        assert_eq!(*chain.last().unwrap(), perf);
        let classes: Vec<&str> = chain
            .iter()
            .map(|&id| db.entity_instance(id).class())
            .collect();
        assert!(classes.contains(&"stimuli"));
        assert!(classes.contains(&"netlist"));
    }

    #[test]
    fn status_rollups() {
        let (db, _, _) = populated();
        assert_eq!(db.completed_activities(), vec!["Create", "Simulate"]);
        assert!(db.in_progress_activities().is_empty());
        assert!(db.pending_activities().is_empty());
    }

    #[test]
    fn status_rollups_partial() {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        let s = db.begin_planning(WorkDays::ZERO);
        db.plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        db.plan_activity(s, "Simulate", WorkDays::new(2.0), WorkDays::new(3.0))
            .unwrap();
        assert_eq!(db.pending_activities(), vec!["Create", "Simulate"]);
        let run = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        assert_eq!(db.in_progress_activities(), vec!["Create"]);
        assert_eq!(db.pending_activities(), vec!["Simulate"]);
        let data = db.store_data("x", vec![]);
        let e = db
            .finish_run(run, "netlist", data, WorkDays::new(1.0), &[])
            .unwrap();
        let sc = db.current_plan("Create").unwrap().id();
        db.link_completion(sc, e).unwrap();
        assert_eq!(db.completed_activities(), vec!["Create"]);
    }

    #[test]
    fn instances_by_creator() {
        let (db, _, _) = populated();
        let alice = db.instances_by("alice");
        // alice supplied stimuli and created two netlists.
        assert_eq!(alice.len(), 3);
        for id in &alice {
            assert_eq!(db.entity_instance(*id).creator(), "alice");
        }
        assert!(db.instances_by("nobody").is_empty());
    }

    #[test]
    fn runs_between_windows() {
        let (db, _, _) = populated();
        // Runs: Create [0,1], Create [1,2.5], Simulate [2.5,4].
        assert_eq!(db.runs_between(WorkDays::ZERO, WorkDays::new(1.0)).len(), 1);
        assert_eq!(db.runs_between(WorkDays::ZERO, WorkDays::new(2.0)).len(), 2);
        assert_eq!(
            db.runs_between(WorkDays::new(2.6), WorkDays::new(3.0))
                .len(),
            1
        );
        assert!(db
            .runs_between(WorkDays::new(10.0), WorkDays::new(11.0))
            .is_empty());
        // Degenerate window.
        assert!(db
            .runs_between(WorkDays::new(1.0), WorkDays::new(1.0))
            .is_empty());
    }

    #[test]
    fn workload_sorted_busiest_first() {
        let (db, _, _) = populated();
        let workload = db.workload_by_designer();
        assert_eq!(workload.len(), 2);
        // alice ran Create twice (1.0 + 1.5 = 2.5d); bob ran Simulate (1.5d).
        assert_eq!(workload[0].0, "alice");
        assert!((workload[0].1.days() - 2.5).abs() < 1e-9);
        assert_eq!(workload[1].0, "bob");
        assert!(workload[0].1.days() >= workload[1].1.days());
    }

    #[test]
    fn finish_slip_sign() {
        let (db, _, _) = populated();
        // Create planned finish 2.0, actual 2.5 → +0.5 slip.
        assert_eq!(db.finish_slip("Create"), Some(0.5));
        // Simulate planned finish 5.0, actual 4.0 → -1.0 (early).
        assert_eq!(db.finish_slip("Simulate"), Some(-1.0));
    }
}
