//! Offline integrity scrubbing and repair for persistent store roots —
//! the engine behind `herc fsck`.
//!
//! [`scrub`] is **read-only**: it walks every store file in a
//! directory (`CURRENT`, all `snapshot-*.txt` / `tail-*.journal`
//! generations, stray temp files), verifies headers and checksums, and
//! returns a per-file verdict plus two summary bits:
//!
//! * `healthy` — opening the store would succeed (a torn trailing tail
//!   record counts as healthy: open self-heals it, as ever);
//! * `repairable` — some snapshot generation still loads, so
//!   [`repair`] can rebuild a servable store.
//!
//! [`repair`] rebuilds from the **best recoverable state**: the newest
//! generation whose snapshot loads, plus the longest prefix of its
//! tail that verifies *and* replays. The rebuilt state is written as a
//! brand-new generation (above every sequence number seen in the
//! directory, so nothing is overwritten), damaged files are renamed to
//! `<name>.quarantine` for post-mortems, and stray temp files are
//! removed. Repair never deletes evidence and never guesses across a
//! checksum failure — ops after a corrupt interior record are
//! unreachable by design, because their ordering against the damage is
//! unknowable.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use simtools::vfs::Vfs;

use crate::database::MetadataDb;
use crate::framing::{self, Framing, TailIssue};
use crate::journal::Journal;
use crate::store::{
    self, generation_of, snapshot_name, tail_name, CorruptionKind, CorruptionReport, StoreError,
};

/// How one store file fared under the scrub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FileStatus {
    /// Verifies completely.
    Ok,
    /// Valid except for a torn final record (self-healing on open).
    Torn,
    /// Fails verification: bad header, checksum mismatch, interior
    /// damage, or does not load/replay.
    Corrupt,
    /// Referenced by `CURRENT` but absent.
    Missing,
    /// Not part of the live store: a leftover `.tmp` file or an
    /// earlier repair's `.quarantine` file.
    Stray,
}

impl std::fmt::Display for FileStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FileStatus::Ok => "ok",
            FileStatus::Torn => "torn",
            FileStatus::Corrupt => "CORRUPT",
            FileStatus::Missing => "MISSING",
            FileStatus::Stray => "stray",
        };
        f.write_str(s)
    }
}

/// One file's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileVerdict {
    /// The file.
    pub path: PathBuf,
    /// Its status.
    pub status: FileStatus,
    /// Specifics worth printing (line numbers, checksums, op counts).
    pub detail: String,
}

/// The result of scrubbing one store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreScrub {
    /// The directory scrubbed.
    pub dir: PathBuf,
    /// The sequence `CURRENT` names, when it parses.
    pub current_seq: Option<u64>,
    /// Per-file verdicts, `CURRENT` first, then by generation.
    pub verdicts: Vec<FileVerdict>,
    /// Whether opening the store would succeed.
    pub healthy: bool,
    /// Whether [`repair`] could rebuild a servable store.
    pub repairable: bool,
}

impl StoreScrub {
    /// Files whose verdict is [`FileStatus::Corrupt`] or
    /// [`FileStatus::Missing`].
    pub fn damaged(&self) -> impl Iterator<Item = &FileVerdict> {
        self.verdicts
            .iter()
            .filter(|v| matches!(v.status, FileStatus::Corrupt | FileStatus::Missing))
    }
}

/// What [`repair`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RepairOutcome {
    /// The store already opened cleanly; only stray temp files (if
    /// any) were removed.
    AlreadyHealthy,
    /// The store was rebuilt.
    Repaired {
        /// The new live sequence number.
        new_seq: u64,
        /// The snapshot generation the rebuild started from.
        base_seq: u64,
        /// Tail ops replayed on top of that snapshot.
        ops_replayed: usize,
        /// Damaged files renamed to `<name>.quarantine`.
        quarantined: Vec<PathBuf>,
    },
}

/// A generation's worth of evidence gathered during the scrub.
#[derive(Debug)]
struct GenerationScan {
    /// Loads successfully ⇒ the loaded database.
    snapshot: Option<MetadataDb>,
    /// The valid-prefix journal of `tail-<seq>`, when the tail exists
    /// and its header parses.
    tail: Option<Journal>,
    /// The tail verified completely or was merely torn (open would
    /// proceed rather than refuse).
    tail_clean_or_torn: bool,
}

fn parse_store_name(name: &str) -> Option<(&'static str, u64)> {
    if let Some(rest) = name.strip_prefix("snapshot-") {
        let seq = rest.strip_suffix(".txt")?.parse().ok()?;
        return Some(("snapshot", seq));
    }
    if let Some(rest) = name.strip_prefix("tail-") {
        let seq = rest.strip_suffix(".journal")?.parse().ok()?;
        return Some(("tail", seq));
    }
    None
}

/// Replays ops one at a time, stopping at the first that refuses to
/// apply; returns how many applied. (A refusal mid-tail means the ops
/// beyond it were written against state we no longer have — replaying
/// past it would fabricate history.)
fn replay_prefix(db: &mut MetadataDb, journal: &Journal) -> usize {
    let mut applied = 0;
    for op in journal.ops() {
        let single = Journal::from_ops(vec![op.clone()]);
        if db.apply_journal(&single).is_err() {
            break;
        }
        applied += 1;
    }
    applied
}

/// Read-only integrity scrub of one store directory. See the
/// [module docs](self).
///
/// # Errors
///
/// [`StoreError::Io`] when the directory itself cannot be read or
/// holds no `CURRENT` at all (not a store — callers distinguish this
/// from damage).
pub fn scrub(vfs: &dyn Vfs, dir: &Path) -> Result<StoreScrub, StoreError> {
    let current_path = dir.join(store::CURRENT);
    let current_text = vfs
        .read_to_string(&current_path)
        .map_err(|e| StoreError::Io {
            path: current_path.clone(),
            message: e.to_string(),
        })?;
    let mut verdicts = Vec::new();
    let current_seq: Option<u64> = current_text.trim().parse().ok();
    verdicts.push(match current_seq {
        Some(seq) => FileVerdict {
            path: current_path.clone(),
            status: FileStatus::Ok,
            detail: format!("sequence {seq}"),
        },
        None => FileVerdict {
            path: current_path.clone(),
            status: FileStatus::Corrupt,
            detail: format!("not a sequence number: {:?}", current_text.trim()),
        },
    });

    // Inventory the directory: every generation with any evidence,
    // plus strays.
    let mut listed: Vec<PathBuf> = vfs.list_dir(dir).map_err(|e| StoreError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    listed.sort();
    let mut seqs: Vec<u64> = Vec::new();
    for path in &listed {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if name.ends_with(".tmp") {
            verdicts.push(FileVerdict {
                path: path.clone(),
                status: FileStatus::Stray,
                detail: "leftover temp file from an interrupted write".into(),
            });
            continue;
        }
        if name.ends_with(".quarantine") {
            verdicts.push(FileVerdict {
                path: path.clone(),
                status: FileStatus::Stray,
                detail: "quarantined by an earlier repair".into(),
            });
            continue;
        }
        if let Some((_, seq)) = parse_store_name(name) {
            if !seqs.contains(&seq) {
                seqs.push(seq);
            }
        }
    }
    if let Some(seq) = current_seq {
        if !seqs.contains(&seq) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();

    let mut healthy = current_seq.is_some();
    let mut repairable = false;
    for &seq in &seqs {
        let is_live = current_seq == Some(seq);
        let scan = scrub_generation(vfs, dir, seq, is_live, &mut verdicts);
        if scan.snapshot.is_some() {
            repairable = true;
        }
        if is_live {
            healthy &= generation_opens(&scan);
        }
    }
    if current_seq.is_some() && !seqs.contains(&current_seq.unwrap()) {
        healthy = false;
    }
    Ok(StoreScrub {
        dir: dir.to_path_buf(),
        current_seq,
        verdicts,
        healthy,
        repairable,
    })
}

/// Whether `PersistentStore::open` would succeed on this generation:
/// snapshot loads, tail is clean or merely torn, and the valid tail
/// prefix replays completely.
fn generation_opens(scan: &GenerationScan) -> bool {
    let db = match &scan.snapshot {
        Some(db) => db,
        None => return false,
    };
    match &scan.tail {
        Some(journal) => {
            let mut db = db.clone();
            replay_prefix(&mut db, journal) == journal.len() && scan.tail_clean_or_torn
        }
        None => false,
    }
}

/// Scrubs one generation's snapshot + tail, pushing verdicts and
/// returning the evidence for repair.
fn scrub_generation(
    vfs: &dyn Vfs,
    dir: &Path,
    seq: u64,
    is_live: bool,
    verdicts: &mut Vec<FileVerdict>,
) -> GenerationScan {
    let snap_path = dir.join(snapshot_name(seq));
    let mut snapshot = None;
    match read_text(vfs, &snap_path) {
        ReadOutcome::Missing => {
            if is_live {
                verdicts.push(FileVerdict {
                    path: snap_path.clone(),
                    status: FileStatus::Missing,
                    detail: "referenced by CURRENT but absent".into(),
                });
            }
        }
        ReadOutcome::Unreadable(detail) => verdicts.push(FileVerdict {
            path: snap_path.clone(),
            status: FileStatus::Corrupt,
            detail,
        }),
        ReadOutcome::Text(raw) => match framing::decode_snapshot(&raw) {
            Err(issue) => verdicts.push(FileVerdict {
                path: snap_path.clone(),
                status: FileStatus::Corrupt,
                detail: issue.to_string(),
            }),
            Ok((framing, body)) => match MetadataDb::load_at(body, generation_of(seq)) {
                Err(e) => verdicts.push(FileVerdict {
                    path: snap_path.clone(),
                    status: FileStatus::Corrupt,
                    detail: format!("checksum ok but body does not load: {e}"),
                }),
                Ok(db) => {
                    verdicts.push(FileVerdict {
                        path: snap_path.clone(),
                        status: FileStatus::Ok,
                        detail: format!("{} ({} bytes)", framing_label(framing), raw.len()),
                    });
                    snapshot = Some(db);
                }
            },
        },
    }

    let tail_path = dir.join(tail_name(seq));
    let mut tail = None;
    let mut tail_clean_or_torn = false;
    match read_text(vfs, &tail_path) {
        ReadOutcome::Missing => {
            if is_live {
                verdicts.push(FileVerdict {
                    path: tail_path.clone(),
                    status: FileStatus::Missing,
                    detail: "referenced by CURRENT but absent".into(),
                });
            }
        }
        ReadOutcome::Unreadable(detail) => verdicts.push(FileVerdict {
            path: tail_path.clone(),
            status: FileStatus::Corrupt,
            detail,
        }),
        ReadOutcome::Text(raw) => {
            let scan = framing::decode_tail(&raw);
            match &scan.issue {
                None => {
                    verdicts.push(FileVerdict {
                        path: tail_path.clone(),
                        status: FileStatus::Ok,
                        detail: format!(
                            "{}, {} ops",
                            framing_label(scan.framing),
                            scan.journal.len()
                        ),
                    });
                    tail_clean_or_torn = true;
                }
                Some(issue @ TailIssue::Torn { .. }) => {
                    verdicts.push(FileVerdict {
                        path: tail_path.clone(),
                        status: FileStatus::Torn,
                        detail: format!("{issue}; {} ops verify", scan.journal.len()),
                    });
                    tail_clean_or_torn = true;
                }
                Some(issue) => verdicts.push(FileVerdict {
                    path: tail_path.clone(),
                    status: FileStatus::Corrupt,
                    detail: format!("{issue}; {} ops verify before it", scan.journal.len()),
                }),
            }
            tail = Some(scan.journal);
        }
    }
    GenerationScan {
        snapshot,
        tail,
        tail_clean_or_torn,
    }
}

fn framing_label(framing: Framing) -> &'static str {
    match framing {
        Framing::V1 => "v1 (no checksums)",
        Framing::V2 => "v2 checksummed",
    }
}

enum ReadOutcome {
    Text(String),
    Missing,
    Unreadable(String),
}

fn read_text(vfs: &dyn Vfs, path: &Path) -> ReadOutcome {
    match vfs.read_to_string(path) {
        Ok(text) => ReadOutcome::Text(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => ReadOutcome::Missing,
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            ReadOutcome::Unreadable("not valid UTF-8".into())
        }
        Err(e) => ReadOutcome::Unreadable(e.to_string()),
    }
}

/// Rebuilds a damaged store from its best recoverable state. See the
/// [module docs](self).
///
/// # Errors
///
/// * [`StoreError::Io`] if the directory is not a store or the rebuild
///   itself cannot be written.
/// * [`StoreError::Corruption`] if **no** snapshot generation loads —
///   there is nothing to rebuild from.
pub fn repair(vfs: &Arc<dyn Vfs>, dir: &Path) -> Result<RepairOutcome, StoreError> {
    let report = scrub(&**vfs, dir)?;

    // Strays are removed in every case — they are never part of the
    // live store.
    for v in &report.verdicts {
        if v.status == FileStatus::Stray && !v.detail.contains("quarantine") {
            let _ = vfs.remove_file(&v.path);
        }
    }
    if report.healthy {
        return Ok(RepairOutcome::AlreadyHealthy);
    }

    // Best recoverable state: the newest generation whose snapshot
    // loads, plus the longest replayable prefix of its verified tail.
    let mut seqs: Vec<u64> = Vec::new();
    for v in &report.verdicts {
        if let Some(name) = v.path.file_name().and_then(|n| n.to_str()) {
            if let Some((_, seq)) = parse_store_name(name) {
                if !seqs.contains(&seq) {
                    seqs.push(seq);
                }
            }
        }
    }
    if let Some(seq) = report.current_seq {
        if !seqs.contains(&seq) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    let mut best: Option<(u64, MetadataDb, usize)> = None;
    for &seq in seqs.iter().rev() {
        let scan = scrub_generation(&**vfs, dir, seq, false, &mut Vec::new());
        if let Some(mut db) = scan.snapshot {
            let replayed = match &scan.tail {
                Some(journal) => replay_prefix(&mut db, journal),
                None => 0,
            };
            best = Some((seq, db, replayed));
            break;
        }
    }
    let (base_seq, db, ops_replayed) = match best {
        Some(b) => b,
        None => {
            let worst = report
                .damaged()
                .next()
                .map(|v| (v.path.clone(), v.detail.clone()))
                .unwrap_or_else(|| (dir.join(store::CURRENT), "no loadable snapshot".into()));
            return Err(StoreError::Corruption(CorruptionReport {
                path: worst.0,
                kind: CorruptionKind::SnapshotLoad,
                detail: format!("unrepairable: no snapshot generation loads ({})", worst.1),
            }));
        }
    };

    // Write the rebuilt state as a brand-new generation above every
    // sequence number seen, so nothing — not even damaged evidence —
    // is overwritten.
    let new_seq = seqs.iter().copied().max().unwrap_or(base_seq) + 1;
    let dump = db.dump();
    store::write_atomic(
        &**vfs,
        &dir.join(snapshot_name(new_seq)),
        &Framing::V2.encode_snapshot(&dump),
    )?;
    store::write_atomic(
        &**vfs,
        &dir.join(tail_name(new_seq)),
        &Framing::V2.empty_tail(),
    )?;
    store::write_atomic(&**vfs, &dir.join(store::CURRENT), &format!("{new_seq}\n"))?;

    // Quarantine the damaged files (rename, never delete: they are the
    // post-mortem evidence).
    let mut quarantined = Vec::new();
    for v in report.damaged() {
        if v.status != FileStatus::Corrupt {
            continue;
        }
        let mut target = v.path.as_os_str().to_owned();
        target.push(".quarantine");
        let target = PathBuf::from(target);
        if vfs.rename(&v.path, &target).is_ok() {
            quarantined.push(target);
        }
    }
    Ok(RepairOutcome::Repaired {
        new_seq,
        base_seq,
        ops_replayed,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{PersistentStore, Store};
    use schedule::WorkDays;
    use schema::examples;
    use simtools::vfs::MemVfs;

    fn seeded(dir: &str) -> (Arc<MemVfs>, Arc<dyn Vfs>, String) {
        let mem = MemVfs::new();
        let vfs: Arc<dyn Vfs> = mem.clone();
        let db = MetadataDb::for_schema(&examples::circuit_design());
        let mut store = PersistentStore::create_on(vfs.clone(), dir, db).unwrap();
        let s = store.begin_planning(WorkDays::ZERO);
        let sc = store
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        store.assign(sc, "alice").unwrap();
        let data = store.store_data("v1.net", b"module".to_vec());
        let run = store.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let e = store
            .finish_run(run, "netlist", data, WorkDays::new(1.0), &[])
            .unwrap();
        store.link_completion(sc, e).unwrap();
        let dump = store.db().dump();
        drop(store);
        (mem, vfs, dump)
    }

    #[test]
    fn scrub_of_healthy_store_is_all_ok() {
        let (_mem, vfs, _) = seeded("/p");
        let report = scrub(&*vfs, Path::new("/p")).unwrap();
        assert!(report.healthy);
        assert!(report.repairable);
        assert_eq!(report.current_seq, Some(0));
        assert!(report.verdicts.iter().all(|v| v.status == FileStatus::Ok));
        assert_eq!(report.damaged().count(), 0);
    }

    #[test]
    fn scrub_flags_torn_tail_as_healthy() {
        let (mem, vfs, _) = seeded("/p");
        mem.append(
            &Path::new("/p").join(tail_name(0)),
            b"deadbeef begin-run xx",
        )
        .unwrap();
        let report = scrub(&*vfs, Path::new("/p")).unwrap();
        assert!(report.healthy, "torn tails self-heal on open");
        assert!(report.verdicts.iter().any(|v| v.status == FileStatus::Torn));
    }

    #[test]
    fn scrub_on_non_store_is_an_io_error() {
        let mem = MemVfs::new();
        mem.create_dir_all(Path::new("/empty")).unwrap();
        let err = scrub(&*mem, Path::new("/empty")).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
    }

    #[test]
    fn repair_rebuilds_after_interior_corruption() {
        let (mem, vfs, dump) = seeded("/p");
        // Damage an interior tail record: open refuses...
        let tail = Path::new("/p").join(tail_name(0));
        let text = mem.read_to_string(&tail).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let damaged_line = 3;
        lines[damaged_line] = lines[damaged_line].chars().rev().collect();
        mem.write(&tail, (lines.join("\n") + "\n").as_bytes())
            .unwrap();
        assert!(matches!(
            PersistentStore::open_on(vfs.clone(), "/p"),
            Err(StoreError::Corruption(_))
        ));
        // ...scrub sees it, repair rebuilds, reopen serves.
        let report = scrub(&*vfs, Path::new("/p")).unwrap();
        assert!(!report.healthy);
        assert!(report.repairable);
        let outcome = repair(&vfs, Path::new("/p")).unwrap();
        let (new_seq, replayed, quarantined) = match outcome {
            RepairOutcome::Repaired {
                new_seq,
                ops_replayed,
                quarantined,
                ..
            } => (new_seq, ops_replayed, quarantined),
            other => panic!("expected a rebuild, got {other:?}"),
        };
        assert_eq!(new_seq, 1);
        // Records before the damage were replayed; the damaged one and
        // everything after it were not.
        assert_eq!(replayed, damaged_line - 1);
        assert_eq!(quarantined.len(), 1);
        let reopened = PersistentStore::open_on(vfs.clone(), "/p").unwrap();
        reopened.db().check_invariants().unwrap();
        // The recovered state is a strict prefix of the full session.
        assert_ne!(reopened.db().dump(), dump);
        let after = scrub(&*vfs, Path::new("/p")).unwrap();
        assert!(after.healthy);
    }

    #[test]
    fn repair_falls_back_to_previous_generation_snapshot() {
        let (mem, vfs, _) = seeded("/p");
        // Compact so generations 0 (fallback) and 1 (live) both exist.
        let mut store = PersistentStore::open_on(vfs.clone(), "/p").unwrap();
        store.compact().unwrap();
        let dump = store.db().dump();
        drop(store);
        // Destroy the live snapshot's checksum.
        let snap = Path::new("/p").join(snapshot_name(1));
        let text = mem.read_to_string(&snap).unwrap();
        mem.write(&snap, text.replace("netlist", "netlisX").as_bytes())
            .unwrap();
        assert!(PersistentStore::open_on(vfs.clone(), "/p").is_err());
        let outcome = repair(&vfs, Path::new("/p")).unwrap();
        match outcome {
            RepairOutcome::Repaired {
                base_seq, new_seq, ..
            } => {
                assert_eq!(base_seq, 0, "fallback generation");
                assert_eq!(new_seq, 2);
            }
            other => panic!("expected a rebuild, got {other:?}"),
        }
        let reopened = PersistentStore::open_on(vfs, "/p").unwrap();
        // Generation 0 held the same folded state (tail 0 replays).
        assert_eq!(reopened.db().dump(), dump);
    }

    #[test]
    fn repair_on_healthy_store_removes_strays_only() {
        let (mem, vfs, dump) = seeded("/p");
        mem.write(Path::new("/p/snapshot-9.tmp"), b"half-written")
            .unwrap();
        let outcome = repair(&vfs, Path::new("/p")).unwrap();
        assert_eq!(outcome, RepairOutcome::AlreadyHealthy);
        assert!(!mem.exists(Path::new("/p/snapshot-9.tmp")));
        let reopened = PersistentStore::open_on(vfs, "/p").unwrap();
        assert_eq!(reopened.db().dump(), dump);
    }

    #[test]
    fn repair_with_no_loadable_snapshot_is_a_typed_refusal() {
        let (mem, vfs, _) = seeded("/p");
        let snap = Path::new("/p").join(snapshot_name(0));
        mem.write(&snap, b"garbage\n").unwrap();
        let err = repair(&vfs, Path::new("/p")).unwrap_err();
        assert!(matches!(err, StoreError::Corruption(_)), "{err:?}");
    }
}
