//! Checksummed record framing for the persistent store's on-disk
//! files — the layer that turns "the file parsed" into "the file is
//! intact".
//!
//! Two wire versions coexist:
//!
//! * **v1** — the original un-checksummed text forms: a tail file is
//!   `metadata-journal v1` plus one op per line; a snapshot is a bare
//!   [`MetadataDb::dump`](crate::MetadataDb::dump). Roots written
//!   before checksumming exist in the wild, so v1 is read forever.
//! * **v2** — every tail record line is prefixed with the CRC32 (IEEE)
//!   of its op text (`<crc08x> <op-line>`) under the header
//!   `metadata-journal v2`; a snapshot carries one framing line
//!   (`metadata-snapshot v2 <crc08x>`) whose checksum covers the
//!   verbatim v1 dump that follows.
//!
//! New stores write v2; a v1 root keeps appending v1 records to its
//! existing tail (mixing framings within one file is never valid) and
//! upgrades wholesale on its next `compact()`, which rewrites every
//! file.
//!
//! The payoff is in [`decode_tail`]: a record that fails its checksum
//! or does not parse is classified as **torn** (it is the last line of
//! the file — a process died mid-append; recovery truncates it, as
//! ever) or **corrupt interior** (valid data follows it — bit-rot or a
//! silent short write spliced two records; recovery must *not* guess,
//! it surfaces a typed corruption report and lets `fsck` rebuild from
//! the longest valid prefix).

use crate::journal::{parse_op_line, Journal};

/// CRC32 (IEEE 802.3, reflected) lookup tables for slicing-by-8,
/// built at compile time. Table 0 is the classic byte-at-a-time
/// table; table `t` advances a byte `t` positions further through the
/// polynomial, letting [`crc32`] fold eight input bytes per step —
/// snapshot bodies run to tens of kilobytes, so the verify pass on
/// open is worth keeping off the byte loop (the B15 gate holds it to
/// 1.2× of the un-checksummed read).
const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// The CRC32 (IEEE) of `bytes` — the checksum v2 framing stores per
/// record and per snapshot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The v1 tail-file header line.
pub const TAIL_HEADER_V1: &str = "metadata-journal v1";
/// The v2 tail-file header line.
pub const TAIL_HEADER_V2: &str = "metadata-journal v2";
/// The v2 snapshot framing-line prefix; the CRC32 of the body follows.
pub const SNAPSHOT_MAGIC_V2: &str = "metadata-snapshot v2 ";

/// Which wire version a store file uses. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Un-checksummed records (pre-durability roots). Read-only compat:
    /// only a store opened from a v1 root still appends v1.
    V1,
    /// CRC32-per-record framing — what every new write uses.
    V2,
}

impl Framing {
    /// The tail-file header line (without trailing newline).
    pub fn tail_header(self) -> &'static str {
        match self {
            Framing::V1 => TAIL_HEADER_V1,
            Framing::V2 => TAIL_HEADER_V2,
        }
    }

    /// A fresh, empty tail file's full contents.
    pub fn empty_tail(self) -> String {
        format!("{}\n", self.tail_header())
    }

    /// Frames one journal op line as a tail record (newline included).
    pub fn encode_tail_record(self, op_line: &str) -> String {
        match self {
            Framing::V1 => format!("{op_line}\n"),
            Framing::V2 => format!("{:08x} {op_line}\n", crc32(op_line.as_bytes())),
        }
    }

    /// Frames a database dump as a snapshot file.
    pub fn encode_snapshot(self, dump: &str) -> String {
        match self {
            Framing::V1 => dump.to_owned(),
            Framing::V2 => format!(
                "{}{:08x}\n{dump}",
                SNAPSHOT_MAGIC_V2,
                crc32(dump.as_bytes())
            ),
        }
    }
}

/// Why a snapshot file failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotIssue {
    /// Neither a v2 framing line nor a v1 dump header.
    BadHeader,
    /// The v2 framing line's checksum does not match the body.
    ChecksumMismatch {
        /// The checksum stored in the framing line.
        stored: u32,
        /// The checksum of the body as found.
        computed: u32,
    },
}

impl std::fmt::Display for SnapshotIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotIssue::BadHeader => write!(f, "unrecognized snapshot header"),
            SnapshotIssue::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: framing line says {stored:08x}, body is {computed:08x}"
            ),
        }
    }
}

/// Unwraps a snapshot file into its framing version and the verbatim
/// dump body, verifying the v2 checksum.
///
/// # Errors
///
/// [`SnapshotIssue`] on an unknown header or a checksum mismatch.
pub fn decode_snapshot(text: &str) -> Result<(Framing, &str), SnapshotIssue> {
    if let Some(rest) = text.strip_prefix(SNAPSHOT_MAGIC_V2) {
        let (crc_line, body) = rest.split_once('\n').ok_or(SnapshotIssue::BadHeader)?;
        let stored =
            u32::from_str_radix(crc_line.trim(), 16).map_err(|_| SnapshotIssue::BadHeader)?;
        let computed = crc32(body.as_bytes());
        if stored != computed {
            return Err(SnapshotIssue::ChecksumMismatch { stored, computed });
        }
        Ok((Framing::V2, body))
    } else if text.starts_with("metadata-db v1") {
        Ok((Framing::V1, text))
    } else {
        Err(SnapshotIssue::BadHeader)
    }
}

/// What stopped a tail scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailIssue {
    /// The header line is neither v1 nor v2.
    BadHeader,
    /// The *last* line is invalid — a process died mid-append. Safe to
    /// truncate; the op was never acknowledged as durable.
    Torn {
        /// 1-based line number of the torn record.
        line: usize,
        /// Why the record failed.
        message: String,
    },
    /// An *interior* record is invalid while later data exists —
    /// bit-rot or a silent short write. Truncating here would discard
    /// acknowledged history, so recovery must report, not guess.
    Corrupt {
        /// 1-based line number of the corrupt record.
        line: usize,
        /// Why the record failed.
        message: String,
    },
}

impl std::fmt::Display for TailIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailIssue::BadHeader => write!(f, "unrecognized tail header"),
            TailIssue::Torn { line, message } => {
                write!(f, "torn trailing record at line {line}: {message}")
            }
            TailIssue::Corrupt { line, message } => {
                write!(f, "corrupt interior record at line {line}: {message}")
            }
        }
    }
}

/// The result of scanning a tail file: the longest valid record
/// prefix, the framing found, and what (if anything) stopped the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct TailScan {
    /// The framing declared by the header (v2 if the header itself was
    /// unreadable).
    pub framing: Framing,
    /// The ops of every valid record before the first failure.
    pub journal: Journal,
    /// Total non-blank record lines in the file (valid or not).
    pub records: usize,
    /// `None` when every record decoded.
    pub issue: Option<TailIssue>,
}

/// Scans a tail file, collecting the longest valid prefix of records
/// and classifying the first failure (torn vs corrupt interior) — the
/// recovery policy's decision input. Never fails: a completely
/// unreadable file yields an empty journal plus an issue.
pub fn decode_tail(text: &str) -> TailScan {
    let mut lines = text.lines().enumerate();
    let framing = match lines.next() {
        Some((_, l)) if l.trim_end() == TAIL_HEADER_V1 => Framing::V1,
        Some((_, l)) if l.trim_end() == TAIL_HEADER_V2 => Framing::V2,
        _ => {
            return TailScan {
                framing: Framing::V2,
                journal: Journal::new(),
                records: 0,
                issue: Some(TailIssue::BadHeader),
            }
        }
    };
    let total_lines = text.lines().count();
    let mut ops = Vec::new();
    let mut records = 0usize;
    let mut issue = None;
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        records += 1;
        let lineno = idx + 1;
        match decode_record(framing, idx, line) {
            Ok(op) => ops.push(op),
            Err(message) => {
                issue = Some(if lineno == total_lines {
                    TailIssue::Torn {
                        line: lineno,
                        message,
                    }
                } else {
                    TailIssue::Corrupt {
                        line: lineno,
                        message,
                    }
                });
                break;
            }
        }
    }
    TailScan {
        framing,
        journal: Journal::from_ops(ops),
        records,
        issue,
    }
}

/// Decodes one record line under `framing` (v2: checksum first, then
/// parse — a checksum pass with a parse failure still means the store
/// wrote garbage and is reported as such).
fn decode_record(
    framing: Framing,
    lineno0: usize,
    line: &str,
) -> Result<crate::journal::JournalOp, String> {
    let op_text = match framing {
        Framing::V1 => line,
        Framing::V2 => {
            let (crc_hex, rest) = line
                .split_once(' ')
                .ok_or_else(|| "missing checksum field".to_owned())?;
            let stored = u32::from_str_radix(crc_hex, 16)
                .map_err(|_| format!("bad checksum field {crc_hex:?}"))?;
            if crc_hex.len() != 8 {
                return Err(format!("bad checksum field {crc_hex:?}"));
            }
            let computed = crc32(rest.as_bytes());
            if stored != computed {
                return Err(format!(
                    "checksum mismatch: record says {stored:08x}, content is {computed:08x}"
                ));
            }
            rest
        }
    };
    match parse_op_line(lineno0, op_text) {
        Ok(Some(op)) => Ok(op),
        Ok(None) => Err("blank op after checksum".to_owned()),
        Err(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetadataDb;
    use schedule::WorkDays;
    use schema::examples;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    fn sample_journal() -> Journal {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        db.enable_journal();
        let s = db.begin_planning(WorkDays::ZERO);
        db.plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        let run = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let data = db.store_data("v1.net", b"module top".to_vec());
        db.finish_run(run, "netlist", data, WorkDays::new(1.0), &[])
            .unwrap();
        db.journal().unwrap().clone()
    }

    fn encode_tail(framing: Framing, journal: &Journal) -> String {
        let mut text = framing.empty_tail();
        for op in journal.ops() {
            text.push_str(&framing.encode_tail_record(&op.to_line()));
        }
        text
    }

    #[test]
    fn tail_roundtrip_both_framings() {
        let journal = sample_journal();
        for framing in [Framing::V1, Framing::V2] {
            let text = encode_tail(framing, &journal);
            let scan = decode_tail(&text);
            assert_eq!(scan.framing, framing);
            assert_eq!(scan.journal, journal);
            assert_eq!(scan.records, journal.len());
            assert_eq!(scan.issue, None);
        }
    }

    #[test]
    fn torn_last_record_is_classified_torn() {
        let journal = sample_journal();
        for framing in [Framing::V1, Framing::V2] {
            let mut text = encode_tail(framing, &journal);
            text.push_str("deadbeef begin-run Create al"); // partial, no newline
            let scan = decode_tail(&text);
            assert_eq!(scan.journal, journal, "valid prefix survives");
            assert!(
                matches!(scan.issue, Some(TailIssue::Torn { .. })),
                "{framing:?}: {:?}",
                scan.issue
            );
        }
    }

    #[test]
    fn interior_damage_is_classified_corrupt() {
        let journal = sample_journal();
        assert!(journal.len() >= 3);
        let text = encode_tail(Framing::V2, &journal);
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        // Flip a byte inside the second record (header is line 0).
        let victim = 2;
        lines[victim] = lines[victim].replace(' ', "_");
        let damaged = lines.join("\n") + "\n";
        let scan = decode_tail(&damaged);
        assert!(
            matches!(scan.issue, Some(TailIssue::Corrupt { line, .. }) if line == victim + 1),
            "{:?}",
            scan.issue
        );
        assert_eq!(scan.journal.len(), victim - 1, "prefix stops at damage");
    }

    #[test]
    fn v2_checksum_catches_spliced_records() {
        // A silent short write splices two records onto one line: the
        // crc of the splice matches neither record.
        let journal = sample_journal();
        let a = journal.ops()[0].to_line();
        let b = journal.ops()[1].to_line();
        let splice = Framing::V2.encode_tail_record(&a);
        let splice = splice.trim_end().to_owned() + &Framing::V2.encode_tail_record(&b);
        let text = format!("{}{splice}", Framing::V2.empty_tail());
        let scan = decode_tail(&text);
        assert!(scan.issue.is_some(), "splice must not decode");
    }

    #[test]
    fn tail_bad_header_reported() {
        let scan = decode_tail("metadata-journal v9\n");
        assert_eq!(scan.issue, Some(TailIssue::BadHeader));
        assert!(scan.journal.is_empty());
    }

    #[test]
    fn snapshot_roundtrip_and_compat() {
        let db = MetadataDb::for_schema(&examples::circuit_design());
        let dump = db.dump();
        // v2 wraps and unwraps.
        let v2 = Framing::V2.encode_snapshot(&dump);
        let (framing, body) = decode_snapshot(&v2).unwrap();
        assert_eq!(framing, Framing::V2);
        assert_eq!(body, dump);
        // a bare v1 dump passes through.
        let (framing, body) = decode_snapshot(&dump).unwrap();
        assert_eq!(framing, Framing::V1);
        assert_eq!(body, dump);
    }

    #[test]
    fn snapshot_bitrot_is_caught() {
        let db = MetadataDb::for_schema(&examples::circuit_design());
        let dump = db.dump();
        let v2 = Framing::V2.encode_snapshot(&dump);
        assert!(v2.contains("netlist"), "fixture must contain the word");
        let rotted = v2.replace("netlist", "netlisX");
        assert!(matches!(
            decode_snapshot(&rotted),
            Err(SnapshotIssue::ChecksumMismatch { .. })
        ));
        assert_eq!(decode_snapshot("garbage\n"), Err(SnapshotIssue::BadHeader));
    }
}
