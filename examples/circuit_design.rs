//! The paper's running example in full: the circuit-design task schema
//! taken through the §IV procedure, printing the Hercules database at
//! each phase exactly as Figures 5–7 depict it.
//!
//! Run with `cargo run --example circuit_design`.

use hercules::{browse::ScheduleBrowser, Hercules};
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn render_spaces(h: &Hercules) {
    let db = h.db();
    println!("  execution space:");
    for class in db.entity_classes() {
        let container = db.entity_container(class).expect("listed");
        if container.is_empty() {
            continue;
        }
        let items: Vec<String> = container
            .iter()
            .map(|&id| format!("{}v{}", id, db.entity_instance(id).version()))
            .collect();
        println!("    [{class}]: {}", items.join(", "));
    }
    println!("  schedule space:");
    for activity in db.activities() {
        let container = db.schedule_container(activity).expect("listed");
        if container.is_empty() {
            continue;
        }
        let items: Vec<String> = container
            .iter()
            .map(|&id| {
                let sc = db.schedule_instance(id);
                match sc.linked_entity() {
                    Some(e) => format!("{}v{}->{}", id, sc.version(), e),
                    None => format!("{}v{}", id, sc.version()),
                }
            })
            .collect();
        println!("    ({activity}): {}", items.join(", "));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = examples::circuit_design();
    println!("step 1 — task schema (Fig. 4):\n{schema}");
    let mut h = Hercules::new(schema, ToolLibrary::standard(), Team::of_size(2), 42);

    println!("step 2 — task database initialised: containers only");
    render_spaces(&h);

    println!("\nstep 3 — planning phase (Fig. 5): simulate the execution twice");
    h.plan("performance")?;
    h.plan("performance")?; // the plan can be updated at any time
    render_spaces(&h);

    println!("\nstep 4 — execution phase (Fig. 6): runs create entity instances");
    let report = h.execute("performance")?;
    for exec in report.activities() {
        println!(
            "    {} by {}: {} iteration(s), days {} .. {}",
            exec.activity, exec.assignee, exec.iterations, exec.started, exec.finished
        );
    }

    println!("\nstep 5 — completion (Fig. 7): schedule instances linked to final data");
    render_spaces(&h);

    println!("\nstep 6 — browse the schedule instances (the §IV-C browser):");
    let browser = ScheduleBrowser::new(h.db());
    print!("{}", browser.list());
    let create_plans = browser.rows();
    println!(
        "{}",
        browser.display(*create_plans.last().expect("instances exist"))
    );
    Ok(())
}
