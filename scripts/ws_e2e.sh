#!/usr/bin/env bash
# End-to-end workspace lifecycle through the user-facing CLI:
# create -> plan/execute -> (simulated) crash -> recover -> gc ->
# query. The crash is a torn journal append — a half-written line at
# the end of the project's tail file, exactly what a process killed
# mid-write leaves behind. Reopening must shrug it off (and truncate
# it), `herc gc` must fold the surviving ops into a fresh snapshot,
# and every status query across the lifecycle must agree.
#
# Run directly or via `scripts/ci.sh --stage ws`.

set -euo pipefail
cd "$(dirname "$0")/.."

HERC=${HERC:-"cargo run -q --release --offline -p dac95-schedflow --bin herc --"}
ROOT=target/ws_e2e
rm -rf "$ROOT"
mkdir -p "$ROOT"

cat > "$ROOT/counter.schema" <<'EOF'
data netlist; data stimuli; data performance;
tool netlist_editor; tool simulator;
activity Create:   netlist = netlist_editor();
activity Simulate: performance = simulator(netlist, stimuli);
EOF

# -- create two projects, execute one, plan the other ------------------
$HERC ws "$ROOT/ws" create alpha "$ROOT/counter.schema" --seed 7
$HERC ws "$ROOT/ws" create beta "$ROOT/counter.schema" --seed 8
$HERC ws "$ROOT/ws" run alpha "$ROOT/counter.schema" performance --seed 7 \
    > "$ROOT/run_alpha.txt"
$HERC ws "$ROOT/ws" plan beta "$ROOT/counter.schema" performance --seed 8 \
    > /dev/null
$HERC ws "$ROOT/ws" status alpha "$ROOT/counter.schema" --seed 7 \
    > "$ROOT/status_before.txt"

# -- crash: torn half-line at the end of alpha's journal tail ----------
tail_file=$(ls "$ROOT"/ws/alpha/tail-*.journal | head -n 1)
printf 'begin-run Create al' >> "$tail_file"

# -- recover: reopening tolerates the torn line, state is unchanged ----
$HERC ws "$ROOT/ws" status alpha "$ROOT/counter.schema" --seed 7 \
    > "$ROOT/status_recovered.txt"
cmp "$ROOT/status_before.txt" "$ROOT/status_recovered.txt" || {
    echo "ws_e2e: status diverged across crash recovery" >&2
    exit 1
}

# -- gc: fold each tail into a fresh snapshot --------------------------
$HERC gc "$ROOT/ws" | tee "$ROOT/gc1.txt"
grep -q '^alpha: folded' "$ROOT/gc1.txt" || {
    echo "ws_e2e: gc did not report alpha" >&2
    exit 1
}
if grep -q '^alpha: folded 0 ' "$ROOT/gc1.txt"; then
    echo "ws_e2e: alpha had an empty tail before gc — nothing was journaled" >&2
    exit 1
fi
# A second pass must find nothing left to fold.
$HERC gc "$ROOT/ws" > "$ROOT/gc2.txt"
if grep -qv 'folded 0 tail op(s)' "$ROOT/gc2.txt"; then
    echo "ws_e2e: second gc still had tail ops to fold:" >&2
    cat "$ROOT/gc2.txt" >&2
    exit 1
fi

# -- query at the new generation: identical state, still writable ------
$HERC ws "$ROOT/ws" status alpha "$ROOT/counter.schema" --seed 7 \
    > "$ROOT/status_after_gc.txt"
cmp "$ROOT/status_before.txt" "$ROOT/status_after_gc.txt" || {
    echo "ws_e2e: status diverged across gc" >&2
    exit 1
}
$HERC ws "$ROOT/ws" plan beta "$ROOT/counter.schema" performance --seed 8 \
    > /dev/null
$HERC ws "$ROOT/ws" list

# -- corruption: flip an interior record in beta's journal tail --------
# (Not a torn tail: damage with valid records after it, which recovery
# must refuse to guess around. fsck must flag it, --repair must rebuild
# from snapshot + valid prefix, and the root must serve again. The
# *live* generation is the one named by CURRENT — compact keeps the
# previous one around, and damage there must not fail the store.)
tail_file="$ROOT/ws/beta/tail-$(cat "$ROOT/ws/beta/CURRENT").journal"
awk 'NR==3 { n=split($0,a,""); s=""; for (i=n; i>=1; i--) s=s a[i]; print s; next }
     { print }' "$tail_file" > "$tail_file.rot" && mv "$tail_file.rot" "$tail_file"
if $HERC fsck "$ROOT/ws" > "$ROOT/fsck_before.txt" 2>&1; then
    echo "ws_e2e: fsck passed on a corrupt root" >&2
    exit 1
fi
grep -q 'CORRUPT' "$ROOT/fsck_before.txt" || {
    echo "ws_e2e: fsck did not classify the damage:" >&2
    cat "$ROOT/fsck_before.txt" >&2
    exit 1
}
$HERC fsck "$ROOT/ws" --repair > "$ROOT/fsck_repair.txt"
grep -q 'repaired: rebuilt' "$ROOT/fsck_repair.txt" || {
    echo "ws_e2e: repair did not rebuild beta:" >&2
    cat "$ROOT/fsck_repair.txt" >&2
    exit 1
}
test -f "$ROOT"/ws/beta/*.quarantine || {
    echo "ws_e2e: damaged tail was not quarantined" >&2
    exit 1
}
$HERC fsck "$ROOT/ws" > /dev/null
# -- re-serve: the repaired root answers over HTTP ---------------------
$HERC serve "$ROOT/ws" --oneshot GET /projects/beta/status > /dev/null
$HERC ws "$ROOT/ws" status alpha "$ROOT/counter.schema" --seed 7 \
    > "$ROOT/status_after_fsck.txt"
cmp "$ROOT/status_before.txt" "$ROOT/status_after_fsck.txt" || {
    echo "ws_e2e: alpha's state changed across beta's repair" >&2
    exit 1
}

echo "ws_e2e: OK"
