//! Integration tests driving the `herc` binary end-to-end.

use std::io::Write as _;
use std::process::Command;

const SCHEMA: &str = "schema circuit;
data netlist, stimuli, performance;
tool netlist_editor, simulator;
activity Create:   netlist = netlist_editor();
activity Simulate: performance = simulator(netlist, stimuli);
";

fn schema_file() -> tempfile::TempPath {
    let mut f = tempfile::Builder::new()
        .suffix(".schema")
        .tempfile()
        .expect("create temp schema");
    f.write_all(SCHEMA.as_bytes()).expect("write schema");
    f.into_temp_path()
}

// A tiny tempfile shim so the test has no external dependency: module
// implementing just what the tests need on top of std.
mod tempfile {
    use std::path::{Path, PathBuf};

    pub struct Builder {
        suffix: String,
    }

    pub struct NamedTemp {
        file: std::fs::File,
        path: PathBuf,
    }

    pub struct TempPath(PathBuf);

    impl Builder {
        pub fn new() -> Self {
            Builder {
                suffix: String::new(),
            }
        }

        pub fn suffix(mut self, s: &str) -> Self {
            self.suffix = s.to_owned();
            self
        }

        pub fn tempfile(self) -> std::io::Result<NamedTemp> {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos();
            let path = std::env::temp_dir().join(format!(
                "herc-test-{}-{nanos}{}",
                std::process::id(),
                self.suffix
            ));
            let file = std::fs::File::create(&path)?;
            Ok(NamedTemp { file, path })
        }
    }

    impl NamedTemp {
        pub fn into_temp_path(self) -> TempPath {
            TempPath(self.path)
        }
    }

    impl std::io::Write for NamedTemp {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.file.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.file.flush()
        }
    }

    impl std::ops::Deref for TempPath {
        type Target = Path;
        fn deref(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

fn herc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_herc"))
        .args(args)
        .output()
        .expect("spawn herc")
}

#[test]
fn schema_command_prints_rules() {
    let path = schema_file();
    let out = herc(&["schema", path.to_str().expect("utf-8 path")]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Simulate: performance = simulator(netlist, stimuli)"));
    assert!(stdout.contains("activity order: Create -> Simulate"));
    assert!(stdout.contains("primary inputs: stimuli"));
}

#[test]
fn plan_command_shows_proposal() {
    let path = schema_file();
    let out = herc(&[
        "plan",
        path.to_str().expect("utf-8 path"),
        "performance",
        "--team",
        "2",
        "--estimate",
        "Create=3",
        "--estimate",
        "Simulate=2",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("proposed finish: day 5d"), "{stdout}");
}

#[test]
fn run_command_produces_gantt_and_status() {
    let path = schema_file();
    let out = herc(&[
        "run",
        path.to_str().expect("utf-8 path"),
        "performance",
        "--seed",
        "7",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("executed 2 activities"));
    assert!(stdout.contains("[done]"));
    assert!(stdout.contains("variance: PV"));
}

#[test]
fn sweep_requires_deadline() {
    let path = schema_file();
    let out = herc(&["sweep", path.to_str().expect("utf-8 path"), "performance"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--deadline"));
}

#[test]
fn sweep_reports_minimal_team() {
    let path = schema_file();
    let out = herc(&[
        "sweep",
        path.to_str().expect("utf-8 path"),
        "performance",
        "--deadline",
        "100",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("minimal team meeting the deadline: 1"));
}

#[test]
fn save_and_report_roundtrip() {
    let path = schema_file();
    let db_path = std::env::temp_dir().join(format!("herc-db-{}.txt", std::process::id()));
    let db_str = db_path.to_str().expect("utf-8 path");
    let out = herc(&[
        "run",
        path.to_str().expect("utf-8 path"),
        "performance",
        "--seed",
        "7",
        "--save",
        db_str,
    ]);
    assert!(out.status.success());
    assert!(db_path.exists());
    // Report over the saved database, from a fresh process.
    let out = herc(&[
        "report",
        path.to_str().expect("utf-8 path"),
        "performance",
        "--load",
        db_str,
    ]);
    let _ = std::fs::remove_file(&db_path);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PROJECT REPORT"));
    assert!(stdout.contains("2 of 2 activities complete"));
}

#[test]
fn bad_usage_exits_2() {
    let out = herc(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = herc(&["frobnicate", "/nonexistent"]);
    assert!(!out.status.success());
}

#[test]
fn unreadable_file_fails_cleanly() {
    let out = herc(&["schema", "/nonexistent/path.schema"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn ws_status_on_missing_root_is_a_typed_error() {
    let path = schema_file();
    let root = std::env::temp_dir().join(format!("herc-no-such-root-{}", std::process::id()));
    let out = herc(&[
        "ws",
        root.to_str().expect("utf-8 path"),
        "status",
        "alpha",
        path.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(out.status.code(), Some(1), "missing root must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The typed registry error, not a raw store I/O message.
    assert!(
        stderr.contains("no project \"alpha\" in the workspace"),
        "expected typed UnknownProject, got: {stderr}"
    );
    assert!(
        !stderr.contains("I/O error"),
        "must not leak a raw store error: {stderr}"
    );
}

#[test]
fn ws_status_on_missing_project_is_a_typed_error() {
    let path = schema_file();
    let root = std::env::temp_dir().join(format!("herc-ws-root-{}", std::process::id()));
    // A real root with one project; asking for another by name must be
    // the same typed not-found, exit 1.
    let out = herc(&[
        "ws",
        root.to_str().expect("utf-8 path"),
        "create",
        "alpha",
        path.to_str().expect("utf-8 path"),
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = herc(&[
        "ws",
        root.to_str().expect("utf-8 path"),
        "status",
        "beta",
        path.to_str().expect("utf-8 path"),
    ]);
    let _ = std::fs::remove_dir_all(&root);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no project \"beta\" in the workspace"),
        "expected typed UnknownProject, got: {stderr}"
    );
}

#[test]
fn serve_oneshot_answers_healthz() {
    let out = herc(&["serve", ":memory:", "--oneshot", "GET", "/healthz"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = String::from_utf8_lossy(&out.stdout).into_owned();
    let health = obs::export::parse_json(&body).expect("healthz is JSON");
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(
        health.get("schema").and_then(|v| v.as_str()),
        Some(hercules::PROJECT_CONF_MAGIC)
    );
    assert_eq!(health.get("wedged").and_then(|v| v.as_f64()), Some(0.0));
}

#[test]
fn serve_oneshot_surfaces_http_errors_as_exit_code() {
    let out = herc(&[
        "serve",
        ":memory:",
        "--oneshot",
        "GET",
        "/projects/ghost/status",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("HTTP 404"), "{stderr}");
}

#[test]
fn parse_errors_surface_with_position() {
    let mut f = tempfile::Builder::new()
        .suffix(".schema")
        .tempfile()
        .expect("create temp schema");
    f.write_all(b"data a;\ndata ;\n").expect("write");
    let path = f.into_temp_path();
    let out = herc(&["schema", path.to_str().expect("utf-8 path")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2:6"), "{stderr}");
}

#[test]
fn gc_on_missing_root_is_a_typed_error() {
    let root = std::env::temp_dir().join(format!("herc-gc-no-root-{}", std::process::id()));
    let out = herc(&["gc", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "missing root must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no workspace at"),
        "expected typed missing-root error, got: {stderr}"
    );
    assert!(
        !stderr.contains("I/O error"),
        "must not leak a raw store error: {stderr}"
    );
}

#[test]
fn fsck_on_missing_root_is_a_typed_error() {
    let root = std::env::temp_dir().join(format!("herc-fsck-no-root-{}", std::process::id()));
    let out = herc(&["fsck", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no workspace here"), "{stderr}");
}

#[test]
fn fsck_finds_corruption_and_repair_restores_service() {
    let path = schema_file();
    let root = std::env::temp_dir().join(format!("herc-fsck-root-{}", std::process::id()));
    let root_str = root.to_str().expect("utf-8 path");
    let schema = path.to_str().expect("utf-8 path");
    let out = herc(&["ws", root_str, "create", "alpha", schema, "--seed", "7"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Append journal records, then a clean bill of health.
    let out = herc(&["ws", root_str, "plan", "alpha", schema, "performance"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = herc(&["fsck", root_str]);
    assert!(
        out.status.success(),
        "healthy root must pass fsck: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("project alpha: ok"));
    // Corrupt an interior tail record: fsck must fail with a verdict
    // and point at --repair.
    let tail = root.join("alpha/tail-0.journal");
    let text = std::fs::read_to_string(&tail).expect("read tail");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert!(lines.len() > 3, "need interior records: {text}");
    lines[2] = lines[2].chars().rev().collect();
    std::fs::write(&tail, lines.join("\n") + "\n").expect("corrupt tail");
    let out = herc(&["fsck", root_str]);
    assert_eq!(out.status.code(), Some(1), "corrupt root must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CORRUPT"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("damaged project"), "{stderr}");
    assert!(stderr.contains("--repair"), "{stderr}");
    // Repair, then the root serves again — end to end through the
    // HTTP surface.
    let out = herc(&["fsck", root_str, "--repair"]);
    assert!(
        out.status.success(),
        "repair must succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("repaired"));
    let out = herc(&[
        "serve",
        root_str,
        "--oneshot",
        "GET",
        "/projects/alpha/status",
    ]);
    let _ = std::fs::remove_dir_all(&root);
    assert!(
        out.status.success(),
        "repaired root must serve: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn run_accepts_policy_and_workers() {
    let path = schema_file();
    let out = herc(&[
        "run",
        path.to_str().expect("utf-8 path"),
        "performance",
        "--seed",
        "7",
        "--policy",
        "heft",
        "--workers",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("executed 2 activities"), "{stdout}");
}

#[test]
fn run_rejects_unknown_policy_listing_valid_names() {
    let path = schema_file();
    let out = herc(&[
        "run",
        path.to_str().expect("utf-8 path"),
        "performance",
        "--policy",
        "random",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fifo") && stderr.contains("minslack"),
        "error must list the valid policy names: {stderr}"
    );
}

#[test]
fn ws_run_accepts_policy_and_workers() {
    let path = schema_file();
    let root = std::env::temp_dir().join(format!("herc-ws-policy-{}", std::process::id()));
    let root_str = root.to_str().expect("utf-8 path");
    let schema = path.to_str().expect("utf-8 path");
    let out = herc(&["ws", root_str, "create", "alpha", schema, "--seed", "7"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = herc(&[
        "ws",
        root_str,
        "run",
        "alpha",
        schema,
        "performance",
        "--policy",
        "minslack",
        "--workers",
        "2",
    ]);
    let _ = std::fs::remove_dir_all(&root);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("executed 2 activities"), "{stdout}");
}

#[test]
fn chaos_policy_override_pins_every_scenario() {
    let out = herc(&[
        "chaos",
        "--seed",
        "0",
        "--count",
        "3",
        "--policy",
        "worksteal",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let pinned = stdout.lines().filter(|l| l.contains("worksteal")).count();
    assert_eq!(
        pinned, 3,
        "all scenarios must report the pinned policy: {stdout}"
    );
}
