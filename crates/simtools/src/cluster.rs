//! Simulated heterogeneous execution clusters.
//!
//! A [`Cluster`] models the compute substrate a policy-driven executor
//! dispatches onto: `N` workers, each with a *speed factor* scaling
//! tool run durations, and a seeded network profile charging a
//! *transfer delay* when an entity produced on one worker is consumed
//! on another. Everything is a pure function of the cluster's
//! configuration and seed, so simulated schedules are exactly
//! reproducible.
//!
//! The cluster composes with the fault layer ([`crate::FaultInjector`])
//! rather than replacing it: the injector decides *whether* an attempt
//! fails, the cluster decides *how long* the attempt (or the elapsed
//! fraction a transient crash burns) takes on the chosen worker.
//!
//! # Example
//!
//! ```
//! use simtools::cluster::Cluster;
//!
//! let c = Cluster::heterogeneous(4, 7).with_network(0.01, 0.05);
//! assert_eq!(c.len(), 4);
//! // Hand-off between distinct workers costs seeded, deterministic time;
//! // data already local is free.
//! let d = c.transfer_delay(Some(0), 1, 1 << 20);
//! assert!(d > 0.0);
//! assert_eq!(c.transfer_delay(Some(1), 1, 1 << 20), 0.0);
//! assert_eq!(d, c.transfer_delay(Some(0), 1, 1 << 20));
//! ```

use crate::rng::{mix, SplitMix64};

/// One simulated worker: a named compute slot with a relative speed.
#[derive(Debug, Clone, PartialEq)]
pub struct Worker {
    name: String,
    speed: f64,
}

impl Worker {
    /// The worker's name (`worker0`, `worker1`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relative speed factor: a tool run of nominal duration `d` takes
    /// `d / speed` on this worker. `1.0` is the reference machine.
    pub fn speed(&self) -> f64 {
        self.speed
    }
}

/// A simulated cluster: workers with heterogeneous speed factors plus a
/// seeded network profile for entity hand-off.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    workers: Vec<Worker>,
    seed: u64,
    base_delay_days: f64,
    delay_days_per_mib: f64,
}

impl Cluster {
    /// A cluster of `n` identical full-speed workers with no network
    /// delay — the neutral substrate (a single-worker uniform cluster
    /// reproduces serial execution exactly).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        Cluster::with_speeds(std::iter::repeat_n(1.0, n))
    }

    /// A cluster of `n` workers whose speed factors are drawn
    /// deterministically from `seed`, uniform in `[0.5, 2.0)` — the
    /// heterogeneous substrate scheduler comparisons run on. No network
    /// delay until [`with_network`](Cluster::with_network) adds one.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn heterogeneous(n: usize, seed: u64) -> Self {
        assert!(n > 0, "a cluster needs at least one worker");
        let mut rng = SplitMix64::new(mix(&[seed, 0xC1D5_7E8A]));
        let mut c = Cluster::with_speeds((0..n).map(|_| 0.5 + 1.5 * rng.next_f64()));
        c.seed = seed;
        c
    }

    /// A cluster with explicit speed factors, one worker per factor.
    ///
    /// # Panics
    ///
    /// Panics if `speeds` is empty or any factor is not positive and
    /// finite.
    pub fn with_speeds<I>(speeds: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let workers: Vec<Worker> = speeds
            .into_iter()
            .enumerate()
            .map(|(i, speed)| {
                assert!(
                    speed > 0.0 && speed.is_finite(),
                    "worker speed must be positive and finite, got {speed}"
                );
                Worker {
                    name: format!("worker{i}"),
                    speed,
                }
            })
            .collect();
        assert!(!workers.is_empty(), "a cluster needs at least one worker");
        Cluster {
            workers,
            seed: 0,
            base_delay_days: 0.0,
            delay_days_per_mib: 0.0,
        }
    }

    /// Adds a network profile: moving an entity between two distinct
    /// workers costs `base_delay_days + size_mib * delay_days_per_mib`,
    /// scaled by a seeded per-link jitter in `[0.75, 1.25)`. Data
    /// consumed where it was produced (or read from shared storage) is
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if either component is negative or not finite.
    #[must_use]
    pub fn with_network(mut self, base_delay_days: f64, delay_days_per_mib: f64) -> Self {
        assert!(
            base_delay_days >= 0.0 && base_delay_days.is_finite(),
            "base delay must be non-negative and finite"
        );
        assert!(
            delay_days_per_mib >= 0.0 && delay_days_per_mib.is_finite(),
            "per-MiB delay must be non-negative and finite"
        );
        self.base_delay_days = base_delay_days;
        self.delay_days_per_mib = delay_days_per_mib;
        self
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Returns `true` if... never: clusters are non-empty by
    /// construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th worker.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn worker(&self, i: usize) -> &Worker {
        &self.workers[i]
    }

    /// Iterates over the workers.
    pub fn workers(&self) -> impl Iterator<Item = &Worker> + '_ {
        self.workers.iter()
    }

    /// The `i`-th worker's speed factor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn speed(&self, i: usize) -> f64 {
        self.workers[i].speed
    }

    /// Whether any inter-worker hand-off can cost time.
    pub fn has_network_delay(&self) -> bool {
        self.base_delay_days > 0.0 || self.delay_days_per_mib > 0.0
    }

    /// The nominal duration `days` as experienced on worker `i`
    /// (`days / speed`). Exact for full-speed workers: dividing by 1.0
    /// never perturbs the value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn scaled_days(&self, i: usize, days: f64) -> f64 {
        days / self.workers[i].speed
    }

    /// Simulated working days to move `bytes` of entity data from the
    /// worker that produced it to worker `to`. Zero when the data is
    /// already local (`from == Some(to)`), comes from shared storage
    /// (`from == None` — supplied primary inputs, prior-session
    /// results), or the cluster has no network profile. Otherwise the
    /// configured base + per-MiB cost under a deterministic per-link
    /// jitter, so the same hand-off always costs the same.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is out of range.
    pub fn transfer_delay(&self, from: Option<usize>, to: usize, bytes: u64) -> f64 {
        assert!(to < self.workers.len(), "worker {to} out of range");
        let Some(from) = from else { return 0.0 };
        assert!(from < self.workers.len(), "worker {from} out of range");
        if from == to || !self.has_network_delay() {
            return 0.0;
        }
        let mib = bytes as f64 / (1024.0 * 1024.0);
        let nominal = self.base_delay_days + mib * self.delay_days_per_mib;
        let mut link = SplitMix64::new(mix(&[self.seed, from as u64 + 1, to as u64 + 1]));
        nominal * (0.75 + 0.5 * link.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_clusters_are_neutral() {
        let c = Cluster::uniform(3);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.worker(1).name(), "worker1");
        for w in 0..3 {
            assert_eq!(c.speed(w), 1.0);
            assert_eq!(c.scaled_days(w, 3.5), 3.5);
        }
        assert!(!c.has_network_delay());
        assert_eq!(c.transfer_delay(Some(0), 2, 1 << 30), 0.0);
    }

    #[test]
    fn heterogeneous_speeds_are_seeded_and_bounded() {
        let a = Cluster::heterogeneous(8, 7);
        let b = Cluster::heterogeneous(8, 7);
        assert_eq!(a, b);
        let speeds: Vec<f64> = a.workers().map(Worker::speed).collect();
        assert!(speeds.iter().all(|&s| (0.5..2.0).contains(&s)));
        // Heterogeneous means actually varied.
        assert!(speeds.iter().any(|&s| (s - speeds[0]).abs() > 1e-6));
        assert_ne!(
            speeds,
            Cluster::heterogeneous(8, 8)
                .workers()
                .map(Worker::speed)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn scaled_days_divides_by_speed() {
        let c = Cluster::with_speeds([2.0, 0.5]);
        assert_eq!(c.scaled_days(0, 10.0), 5.0);
        assert_eq!(c.scaled_days(1, 10.0), 20.0);
    }

    #[test]
    fn transfer_delay_charges_remote_handoff_only() {
        let c = Cluster::uniform(3).with_network(0.02, 0.1);
        assert!(c.has_network_delay());
        // Local and shared-storage reads are free.
        assert_eq!(c.transfer_delay(Some(1), 1, 1 << 20), 0.0);
        assert_eq!(c.transfer_delay(None, 1, 1 << 20), 0.0);
        // Remote hand-off costs base + per-MiB, jittered within 25%.
        let d = c.transfer_delay(Some(0), 1, 2 << 20);
        let nominal = 0.02 + 2.0 * 0.1;
        assert!(d >= nominal * 0.75 && d < nominal * 1.25, "delay {d}");
        // Deterministic per link; links differ from each other.
        assert_eq!(d, c.transfer_delay(Some(0), 1, 2 << 20));
        assert_ne!(d, c.transfer_delay(Some(2), 1, 2 << 20));
        // More bytes, more delay.
        assert!(c.transfer_delay(Some(0), 1, 8 << 20) > d);
    }

    #[test]
    fn zero_byte_handoff_still_pays_base_latency() {
        let c = Cluster::uniform(2).with_network(0.5, 0.0);
        let d = c.transfer_delay(Some(0), 1, 0);
        assert!((0.375..0.625).contains(&d), "delay {d}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_cluster_panics() {
        Cluster::uniform(0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nonpositive_speed_panics() {
        Cluster::with_speeds([1.0, 0.0]);
    }
}
