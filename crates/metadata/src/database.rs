use std::collections::BTreeMap;
use std::fmt;

use schedule::WorkDays;
use schema::TaskSchema;

use crate::error::MetadataError;
use crate::ids::{DataObjectId, EntityInstanceId, PlanningSessionId, RunId, ScheduleInstanceId};
use crate::journal::{Journal, JournalOp};
use crate::objects::{
    to_millidays, DataObject, EntityInstance, PlanningSession, Run, ScheduleInstance,
};

/// The Hercules-style metadata database: entity containers (execution
/// space), schedule containers (schedule space), runs, planning
/// sessions, Level-4 data objects, and the links between the spaces.
///
/// "The Hercules task database is initialized from the schema by
/// generating a series of containers that will hold the entity
/// instances created during flow execution. ... As the task entities
/// are parsed into the database, schedule containers are created from
/// the functions associated with each construction rule" (§IV-A).
///
/// All mutation is through methods that preserve referential integrity;
/// ids handed out by one database must not be used with another (they
/// are dense indices, so misuse is caught only when out of range).
///
/// With [`enable_journal`](MetadataDb::enable_journal) every mutation
/// is write-ahead journaled and the database survives injected crashes
/// via [`recover`](MetadataDb::recover) — see [`crate::journal`].
#[derive(Debug, Clone, Default)]
pub struct MetadataDb {
    /// Per entity class: instance ids in creation order.
    pub(crate) entity_containers: BTreeMap<String, Vec<EntityInstanceId>>,
    /// Per activity: schedule instance ids in creation order.
    pub(crate) schedule_containers: BTreeMap<String, Vec<ScheduleInstanceId>>,
    /// Per activity: its declared output class (for link validation).
    pub(crate) activity_outputs: BTreeMap<String, String>,
    pub(crate) entities: Vec<EntityInstance>,
    pub(crate) schedules: Vec<ScheduleInstance>,
    pub(crate) runs: Vec<Run>,
    pub(crate) sessions: Vec<PlanningSession>,
    pub(crate) data: Vec<DataObject>,
    /// Write-ahead journal (`None` when journaling is disabled).
    pub(crate) journal: Option<Journal>,
    /// Fallible mutations until an injected crash fires (`None`:
    /// disarmed).
    pub(crate) crash_countdown: Option<u32>,
    /// Set once an injected crash fired; the database then refuses all
    /// further fallible mutations.
    pub(crate) crashed: bool,
    /// Store generation: bumped by compaction (which renumbers the slot
    /// space). Ids minted here are stamped with it; fallible mutations
    /// reject handles stamped with an older generation as
    /// [`MetadataError::StaleHandle`].
    pub(crate) generation: u32,
}

impl MetadataDb {
    /// Creates an empty database with no containers. Most callers want
    /// [`MetadataDb::for_schema`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Initialises containers from a validated Level-1 schema: one
    /// entity container per class, one schedule container per activity.
    pub fn for_schema(schema: &TaskSchema) -> Self {
        let mut db = MetadataDb::new();
        for class in schema.classes() {
            db.entity_containers
                .insert(class.name().to_owned(), Vec::new());
        }
        for rule in schema.rules() {
            db.schedule_containers
                .insert(rule.activity().to_owned(), Vec::new());
            db.activity_outputs
                .insert(rule.activity().to_owned(), rule.output().to_owned());
        }
        db
    }

    /// The store generation ids minted by this database carry. Bumped
    /// by compaction; handles from older generations are rejected by
    /// mutating calls with [`MetadataError::StaleHandle`].
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Rejects an id stamped with a generation other than the
    /// database's current one. `display` is the id's rendered form for
    /// the error message.
    fn check_gen(&self, gen: u32, display: impl fmt::Display) -> Result<(), MetadataError> {
        if gen != self.generation {
            return Err(MetadataError::StaleHandle(display.to_string()));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Containers
    // ------------------------------------------------------------------

    /// Instance ids in the container for `class`, oldest first; `None`
    /// if the class has no container.
    pub fn entity_container(&self, class: &str) -> Option<&[EntityInstanceId]> {
        self.entity_containers.get(class).map(Vec::as_slice)
    }

    /// Schedule instance ids in the container for `activity`, oldest
    /// first; `None` if the activity has no container.
    pub fn schedule_container(&self, activity: &str) -> Option<&[ScheduleInstanceId]> {
        self.schedule_containers.get(activity).map(Vec::as_slice)
    }

    /// All entity-class container names, sorted.
    pub fn entity_classes(&self) -> impl Iterator<Item = &str> + '_ {
        self.entity_containers.keys().map(String::as_str)
    }

    /// All activity container names, sorted.
    pub fn activities(&self) -> impl Iterator<Item = &str> + '_ {
        self.schedule_containers.keys().map(String::as_str)
    }

    /// The output class an activity produces, per the schema.
    pub fn output_class_of(&self, activity: &str) -> Option<&str> {
        self.activity_outputs.get(activity).map(String::as_str)
    }

    /// Declares an entity container without a schema (used by the dump
    /// loader and by callers assembling databases by hand). Idempotent.
    pub fn declare_entity_container(&mut self, class: &str) {
        self.journal_op(|| JournalOp::DeclareEntityContainer {
            class: class.to_owned(),
        });
        self.entity_containers.entry(class.to_owned()).or_default();
    }

    /// Declares a schedule container and its activity's output class.
    /// Idempotent.
    pub fn declare_schedule_container(&mut self, activity: &str, output_class: &str) {
        self.journal_op(|| JournalOp::DeclareScheduleContainer {
            activity: activity.to_owned(),
            output_class: output_class.to_owned(),
        });
        self.schedule_containers
            .entry(activity.to_owned())
            .or_default();
        self.activity_outputs
            .insert(activity.to_owned(), output_class.to_owned());
    }

    /// Number of Level-4 data objects stored.
    pub fn data_count(&self) -> usize {
        self.data.len()
    }

    // ------------------------------------------------------------------
    // Level 4: design data
    // ------------------------------------------------------------------

    /// Stores a Level-4 data object and returns its id.
    pub fn store_data(&mut self, name: impl Into<String>, content: Vec<u8>) -> DataObjectId {
        let name = name.into();
        self.journal_op(|| JournalOp::StoreData {
            name: name.clone(),
            content: content.clone(),
        });
        let id = DataObjectId::new(self.data.len() as u32, self.generation);
        self.data.push(DataObject::new(id, name, content));
        id
    }

    /// The data object behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this database.
    pub fn data_object(&self, id: DataObjectId) -> &DataObject {
        &self.data[id.index()]
    }

    // ------------------------------------------------------------------
    // Execution space
    // ------------------------------------------------------------------

    /// Starts a run of `activity` by `operator` at `started_at`.
    ///
    /// The iteration number is one more than the number of existing
    /// runs of the activity.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownActivity`] if the activity has no
    /// container; [`MetadataError::InjectedCrash`] under an armed crash
    /// point.
    pub fn begin_run(
        &mut self,
        activity: &str,
        operator: &str,
        started_at: WorkDays,
    ) -> Result<RunId, MetadataError> {
        self.check_alive()?;
        if !self.schedule_containers.contains_key(activity) {
            return Err(MetadataError::UnknownActivity(activity.to_owned()));
        }
        self.journal_op(|| JournalOp::BeginRun {
            activity: activity.to_owned(),
            operator: operator.to_owned(),
            started_md: to_millidays(started_at),
        });
        self.crash_point()?;
        let iteration = self
            .runs
            .iter()
            .filter(|r| r.activity() == activity)
            .count() as u32
            + 1;
        let id = RunId::new(self.runs.len() as u32, self.generation);
        self.runs.push(Run::new(
            id,
            activity.to_owned(),
            operator.to_owned(),
            iteration,
            started_at,
        ));
        Ok(id)
    }

    /// Finishes a run: creates the output [`EntityInstance`] in
    /// `output_class`'s container, linked to `data` and depending on
    /// `inputs`.
    ///
    /// # Errors
    ///
    /// * [`MetadataError::UnknownId`] — foreign run or input id.
    /// * [`MetadataError::RunAlreadyFinished`] — double finish.
    /// * [`MetadataError::UnknownClass`] — no container for the class.
    /// * [`MetadataError::WrongOutputClass`] — the class is not what
    ///   the activity produces.
    /// * [`MetadataError::InvalidTimestamps`] — finish before start.
    pub fn finish_run(
        &mut self,
        run: RunId,
        output_class: &str,
        data: DataObjectId,
        finished_at: WorkDays,
        inputs: &[EntityInstanceId],
    ) -> Result<EntityInstanceId, MetadataError> {
        self.check_alive()?;
        self.check_gen(run.gen, run)?;
        self.check_gen(data.gen, data)?;
        for input in inputs {
            self.check_gen(input.gen, input)?;
        }
        let run_ref = self
            .runs
            .get(run.index())
            .ok_or_else(|| MetadataError::UnknownId(run.to_string()))?;
        if run_ref.finished_at().is_some() {
            return Err(MetadataError::RunAlreadyFinished(run));
        }
        if !self.entity_containers.contains_key(output_class) {
            return Err(MetadataError::UnknownClass(output_class.to_owned()));
        }
        let expected = self
            .activity_outputs
            .get(run_ref.activity())
            .cloned()
            .unwrap_or_else(|| output_class.to_owned());
        if expected != output_class {
            return Err(MetadataError::WrongOutputClass {
                run,
                expected,
                found: output_class.to_owned(),
            });
        }
        if finished_at.days() < run_ref.started_at().days() {
            return Err(MetadataError::InvalidTimestamps {
                started: run_ref.started_at().days(),
                finished: finished_at.days(),
            });
        }
        for input in inputs {
            if input.index() >= self.entities.len() {
                return Err(MetadataError::UnknownId(input.to_string()));
            }
        }
        if data.index() >= self.data.len() {
            return Err(MetadataError::UnknownId(data.to_string()));
        }
        let operator = run_ref.operator().to_owned();
        self.journal_op(|| JournalOp::FinishRun {
            run,
            output_class: output_class.to_owned(),
            data,
            finished_md: to_millidays(finished_at),
            inputs: inputs.to_vec(),
        });
        self.crash_point()?;
        let id = self.insert_entity(
            output_class,
            finished_at,
            operator,
            Some(run),
            inputs.to_vec(),
            data,
        );
        self.runs[run.index()].finish(finished_at, id);
        Ok(id)
    }

    /// Records a designer-supplied instance (a primary input such as
    /// the paper's `stimuli`) with no producing run.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownClass`] if the class has no container.
    pub fn supply_input(
        &mut self,
        class: &str,
        creator: &str,
        created_at: WorkDays,
        data: DataObjectId,
    ) -> Result<EntityInstanceId, MetadataError> {
        self.check_alive()?;
        self.check_gen(data.gen, data)?;
        if !self.entity_containers.contains_key(class) {
            return Err(MetadataError::UnknownClass(class.to_owned()));
        }
        if data.index() >= self.data.len() {
            return Err(MetadataError::UnknownId(data.to_string()));
        }
        self.journal_op(|| JournalOp::SupplyInput {
            class: class.to_owned(),
            creator: creator.to_owned(),
            created_md: to_millidays(created_at),
            data,
        });
        self.crash_point()?;
        Ok(self.insert_entity(
            class,
            created_at,
            creator.to_owned(),
            None,
            Vec::new(),
            data,
        ))
    }

    fn insert_entity(
        &mut self,
        class: &str,
        created_at: WorkDays,
        creator: String,
        produced_by: Option<RunId>,
        depends_on: Vec<EntityInstanceId>,
        data: DataObjectId,
    ) -> EntityInstanceId {
        let container = self
            .entity_containers
            .get_mut(class)
            .expect("caller checked the container exists");
        let version = container.len() as u32 + 1;
        let id = EntityInstanceId::new(self.entities.len() as u32, self.generation);
        self.entities.push(EntityInstance::new(
            id,
            class.to_owned(),
            version,
            created_at,
            creator,
            produced_by,
            depends_on,
            data,
        ));
        container.push(id);
        id
    }

    /// Restores a run's finish timestamp without creating an output
    /// instance — dump-loader plumbing: the entity record that follows
    /// re-attaches the output via [`restore_entity`](Self::restore_entity).
    pub(crate) fn restore_run_finish(&mut self, run: RunId, finished_at: WorkDays) {
        // A placeholder output id; the matching `restore_entity` call
        // overwrites it with the real instance.
        let placeholder = EntityInstanceId::new(u32::MAX, self.generation);
        self.runs[run.index()].finish(finished_at, placeholder);
    }

    /// Restores an entity instance with explicit provenance — the dump
    /// loader's counterpart of [`finish_run`](Self::finish_run) /
    /// [`supply_input`](Self::supply_input).
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownClass`] / [`MetadataError::UnknownId`]
    /// when references do not resolve.
    pub(crate) fn restore_entity(
        &mut self,
        class: &str,
        created_at: WorkDays,
        creator: &str,
        produced_by: Option<RunId>,
        depends_on: Vec<EntityInstanceId>,
        data: DataObjectId,
    ) -> Result<EntityInstanceId, MetadataError> {
        if !self.entity_containers.contains_key(class) {
            return Err(MetadataError::UnknownClass(class.to_owned()));
        }
        if let Some(run) = produced_by {
            if run.index() >= self.runs.len() {
                return Err(MetadataError::UnknownId(run.to_string()));
            }
        }
        for dep in &depends_on {
            if dep.index() >= self.entities.len() {
                return Err(MetadataError::UnknownId(dep.to_string()));
            }
        }
        if data.index() >= self.data.len() {
            return Err(MetadataError::UnknownId(data.to_string()));
        }
        let id = self.insert_entity(
            class,
            created_at,
            creator.to_owned(),
            produced_by,
            depends_on,
            data,
        );
        if let Some(run) = produced_by {
            // Re-point the run's output at the restored instance.
            let finished = self.runs[run.index()].finished_at().unwrap_or(created_at);
            self.runs[run.index()].finish(finished, id);
        }
        Ok(id)
    }

    /// The entity instance behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this database.
    pub fn entity_instance(&self, id: EntityInstanceId) -> &EntityInstance {
        &self.entities[id.index()]
    }

    /// The run behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this database.
    pub fn run(&self, id: RunId) -> &Run {
        &self.runs[id.index()]
    }

    /// All runs, oldest first.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Runs of one activity, oldest first.
    pub fn runs_of(&self, activity: &str) -> Vec<&Run> {
        self.runs
            .iter()
            .filter(|r| r.activity() == activity)
            .collect()
    }

    /// Number of entity instances across all containers.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    // ------------------------------------------------------------------
    // Schedule space
    // ------------------------------------------------------------------

    /// Opens a planning session (the schedule-space analog of a run).
    pub fn begin_planning(&mut self, at: WorkDays) -> PlanningSessionId {
        self.journal_op(|| JournalOp::BeginPlanning {
            at_md: to_millidays(at),
        });
        let id = PlanningSessionId::new(self.sessions.len() as u32, self.generation);
        self.sessions.push(PlanningSession::new(id, at));
        id
    }

    /// Creates a schedule instance for `activity` inside `session`.
    ///
    /// The new instance's version is one more than the container's
    /// count, and it records the previous latest instance (if any) as
    /// its provenance (`derived_from`) — replanning never mutates old
    /// plans, it versions them (Fig. 5's SC1/SC2).
    ///
    /// # Errors
    ///
    /// * [`MetadataError::UnknownActivity`] — no container.
    /// * [`MetadataError::UnknownId`] — foreign session id.
    pub fn plan_activity(
        &mut self,
        session: PlanningSessionId,
        activity: &str,
        planned_start: WorkDays,
        planned_duration: WorkDays,
    ) -> Result<ScheduleInstanceId, MetadataError> {
        self.check_alive()?;
        self.check_gen(session.gen, session)?;
        if session.index() >= self.sessions.len() {
            return Err(MetadataError::UnknownId(session.to_string()));
        }
        if !self.schedule_containers.contains_key(activity) {
            return Err(MetadataError::UnknownActivity(activity.to_owned()));
        }
        self.journal_op(|| JournalOp::PlanActivity {
            session,
            activity: activity.to_owned(),
            start_md: to_millidays(planned_start),
            duration_md: to_millidays(planned_duration),
        });
        self.crash_point()?;
        let container = self
            .schedule_containers
            .get_mut(activity)
            .expect("container existence checked above");
        let version = container.len() as u32 + 1;
        let derived_from = container.last().copied();
        let id = ScheduleInstanceId::new(self.schedules.len() as u32, self.generation);
        self.schedules.push(ScheduleInstance::new(
            id,
            activity.to_owned(),
            version,
            session,
            planned_start,
            planned_duration,
            derived_from,
        ));
        container.push(id);
        self.sessions[session.index()].push(id);
        Ok(id)
    }

    /// Assigns a designer to a planned activity.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownId`] for a foreign id.
    pub fn assign(
        &mut self,
        schedule: ScheduleInstanceId,
        designer: &str,
    ) -> Result<(), MetadataError> {
        self.check_alive()?;
        self.check_gen(schedule.gen, schedule)?;
        if schedule.index() >= self.schedules.len() {
            return Err(MetadataError::UnknownId(schedule.to_string()));
        }
        self.journal_op(|| JournalOp::Assign {
            schedule,
            designer: designer.to_owned(),
        });
        self.crash_point()?;
        self.schedules[schedule.index()].assign(designer.to_owned());
        Ok(())
    }

    /// The schedule instance behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this database.
    pub fn schedule_instance(&self, id: ScheduleInstanceId) -> &ScheduleInstance {
        &self.schedules[id.index()]
    }

    /// The planning session behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this database.
    pub fn planning_session(&self, id: PlanningSessionId) -> &PlanningSession {
        &self.sessions[id.index()]
    }

    /// All planning sessions, oldest first.
    pub fn planning_sessions(&self) -> &[PlanningSession] {
        &self.sessions
    }

    /// The latest schedule instance for `activity`, if any.
    pub fn current_plan(&self, activity: &str) -> Option<&ScheduleInstance> {
        self.schedule_containers
            .get(activity)?
            .last()
            .map(|&id| self.schedule_instance(id))
    }

    /// Number of schedule instances across all containers.
    pub fn schedule_count(&self) -> usize {
        self.schedules.len()
    }

    // ------------------------------------------------------------------
    // Links between the spaces
    // ------------------------------------------------------------------

    /// Links a schedule instance to the entity instance the designer
    /// declares to be the activity's final result — "this link is
    /// created when the designer determines that the execution of an
    /// activity is completed" (§III).
    ///
    /// # Errors
    ///
    /// * [`MetadataError::UnknownId`] — foreign ids.
    /// * [`MetadataError::AlreadyLinked`] — the plan already has a
    ///   final result.
    /// * [`MetadataError::MismatchedLink`] — the instance's class is
    ///   not the activity's output class, or it was produced by a
    ///   different activity's run.
    pub fn link_completion(
        &mut self,
        schedule: ScheduleInstanceId,
        entity: EntityInstanceId,
    ) -> Result<(), MetadataError> {
        self.check_alive()?;
        self.check_gen(schedule.gen, schedule)?;
        self.check_gen(entity.gen, entity)?;
        if schedule.index() >= self.schedules.len() {
            return Err(MetadataError::UnknownId(schedule.to_string()));
        }
        if entity.index() >= self.entities.len() {
            return Err(MetadataError::UnknownId(entity.to_string()));
        }
        if self.schedules[schedule.index()].linked_entity().is_some() {
            return Err(MetadataError::AlreadyLinked(schedule));
        }
        let activity = self.schedules[schedule.index()].activity().to_owned();
        let inst = &self.entities[entity.index()];
        let class_ok = self
            .activity_outputs
            .get(&activity)
            .is_none_or(|out| out == inst.class());
        let producer_ok = match inst.produced_by() {
            Some(run) => self.runs[run.index()].activity() == activity,
            None => false,
        };
        if !(class_ok && producer_ok) {
            return Err(MetadataError::MismatchedLink { schedule, entity });
        }
        self.journal_op(|| JournalOp::LinkCompletion { schedule, entity });
        self.crash_point()?;
        self.schedules[schedule.index()].set_link(entity);
        Ok(())
    }

    /// Actual start of `activity`: the start of its first run. "Once a
    /// data instance for the particular task is created, the actual
    /// start date for the task is set" (§IV-C).
    pub fn actual_start(&self, activity: &str) -> Option<WorkDays> {
        self.runs
            .iter()
            .filter(|r| r.activity() == activity)
            .map(Run::started_at)
            .min_by(|a, b| a.days().total_cmp(&b.days()))
    }

    /// Actual finish of `activity`: the creation time of the entity
    /// instance linked from its *latest* schedule instance. `None`
    /// until the designer links completion.
    pub fn actual_finish(&self, activity: &str) -> Option<WorkDays> {
        let sc = self.current_plan(activity)?;
        let entity = sc.linked_entity()?;
        Some(self.entity_instance(entity).created_at())
    }
}

impl fmt::Display for MetadataDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "metadata db: {} entity instances, {} schedule instances, {} runs, {} sessions, {} data objects",
            self.entities.len(),
            self.schedules.len(),
            self.runs.len(),
            self.sessions.len(),
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;

    fn db() -> MetadataDb {
        MetadataDb::for_schema(&examples::circuit_design())
    }

    #[test]
    fn containers_created_from_schema() {
        let db = db();
        assert_eq!(db.entity_classes().count(), 5);
        assert_eq!(
            db.activities().collect::<Vec<_>>(),
            vec!["Create", "Simulate"]
        );
        assert_eq!(db.output_class_of("Create"), Some("netlist"));
        assert!(db.entity_container("netlist").unwrap().is_empty());
        assert!(db.schedule_container("Simulate").unwrap().is_empty());
        assert!(db.entity_container("nonsense").is_none());
    }

    #[test]
    fn run_produces_versioned_instances() {
        let mut db = db();
        let d1 = db.store_data("v1.net", b"a".to_vec());
        let d2 = db.store_data("v2.net", b"bb".to_vec());
        let r1 = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let e1 = db
            .finish_run(r1, "netlist", d1, WorkDays::new(1.0), &[])
            .unwrap();
        let r2 = db.begin_run("Create", "alice", WorkDays::new(1.0)).unwrap();
        let e2 = db
            .finish_run(r2, "netlist", d2, WorkDays::new(2.0), &[])
            .unwrap();
        assert_eq!(db.entity_instance(e1).version(), 1);
        assert_eq!(db.entity_instance(e2).version(), 2);
        assert_eq!(db.run(r2).iteration(), 2);
        assert_eq!(db.entity_container("netlist").unwrap().len(), 2);
        assert_eq!(db.entity_count(), 2);
        assert_eq!(db.data_object(d2).size(), 2);
    }

    #[test]
    fn finish_run_validates() {
        let mut db = db();
        let data = db.store_data("x", vec![]);
        let run = db.begin_run("Create", "alice", WorkDays::new(1.0)).unwrap();
        // Wrong class for the activity.
        assert!(matches!(
            db.finish_run(run, "performance", data, WorkDays::new(2.0), &[]),
            Err(MetadataError::WrongOutputClass { .. })
        ));
        // Time travel.
        assert!(matches!(
            db.finish_run(run, "netlist", data, WorkDays::ZERO, &[]),
            Err(MetadataError::InvalidTimestamps { .. })
        ));
        // Unknown input instance.
        assert!(matches!(
            db.finish_run(
                run,
                "netlist",
                data,
                WorkDays::new(2.0),
                &[EntityInstanceId::new(9, 0)]
            ),
            Err(MetadataError::UnknownId(_))
        ));
        // Happy path then double finish.
        db.finish_run(run, "netlist", data, WorkDays::new(2.0), &[])
            .unwrap();
        assert!(matches!(
            db.finish_run(run, "netlist", data, WorkDays::new(3.0), &[]),
            Err(MetadataError::RunAlreadyFinished(_))
        ));
    }

    #[test]
    fn unknown_activity_rejected() {
        let mut db = db();
        assert!(matches!(
            db.begin_run("Fabricate", "alice", WorkDays::ZERO),
            Err(MetadataError::UnknownActivity(_))
        ));
    }

    #[test]
    fn supply_input_has_no_run() {
        let mut db = db();
        let data = db.store_data("vectors.stim", b"0101".to_vec());
        let e = db
            .supply_input("stimuli", "bob", WorkDays::ZERO, data)
            .unwrap();
        assert_eq!(db.entity_instance(e).produced_by(), None);
        assert!(db
            .supply_input("ghost", "bob", WorkDays::ZERO, data)
            .is_err());
    }

    #[test]
    fn planning_creates_versions_with_provenance() {
        let mut db = db();
        let s1 = db.begin_planning(WorkDays::ZERO);
        let sc1 = db
            .plan_activity(s1, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        let s2 = db.begin_planning(WorkDays::new(3.0));
        let sc2 = db
            .plan_activity(s2, "Create", WorkDays::new(1.0), WorkDays::new(2.0))
            .unwrap();
        assert_eq!(db.schedule_instance(sc1).version(), 1);
        assert_eq!(db.schedule_instance(sc2).version(), 2);
        assert_eq!(db.schedule_instance(sc2).derived_from(), Some(sc1));
        assert_eq!(db.current_plan("Create").unwrap().id(), sc2);
        assert_eq!(db.planning_session(s2).instances(), [sc2]);
        assert_eq!(db.schedule_count(), 2);
        assert_eq!(db.planning_sessions().len(), 2);
    }

    #[test]
    fn plan_unknown_activity_or_session() {
        let mut db = db();
        let s = db.begin_planning(WorkDays::ZERO);
        assert!(db
            .plan_activity(s, "ghost", WorkDays::ZERO, WorkDays::ZERO)
            .is_err());
        assert!(db
            .plan_activity(
                PlanningSessionId::new(9, 0),
                "Create",
                WorkDays::ZERO,
                WorkDays::ZERO
            )
            .is_err());
    }

    #[test]
    fn assignment() {
        let mut db = db();
        let s = db.begin_planning(WorkDays::ZERO);
        let sc = db
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(1.0))
            .unwrap();
        db.assign(sc, "carol").unwrap();
        assert_eq!(db.schedule_instance(sc).assignees(), ["carol"]);
        assert!(db.assign(ScheduleInstanceId::new(5, 0), "x").is_err());
    }

    #[test]
    fn completion_link_happy_path() {
        let mut db = db();
        let s = db.begin_planning(WorkDays::ZERO);
        let sc = db
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        let data = db.store_data("x.net", vec![]);
        let run = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let e = db
            .finish_run(run, "netlist", data, WorkDays::new(1.0), &[])
            .unwrap();
        db.link_completion(sc, e).unwrap();
        assert!(db.schedule_instance(sc).is_complete());
        assert_eq!(db.actual_start("Create"), Some(WorkDays::ZERO));
        assert_eq!(db.actual_finish("Create"), Some(WorkDays::new(1.0)));
    }

    #[test]
    fn completion_link_rejects_wrong_activity() {
        let mut db = db();
        let s = db.begin_planning(WorkDays::ZERO);
        let sc_sim = db
            .plan_activity(s, "Simulate", WorkDays::ZERO, WorkDays::new(1.0))
            .unwrap();
        let data = db.store_data("x.net", vec![]);
        let run = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let e = db
            .finish_run(run, "netlist", data, WorkDays::new(1.0), &[])
            .unwrap();
        // e is a netlist from Create; cannot complete Simulate with it.
        assert!(matches!(
            db.link_completion(sc_sim, e),
            Err(MetadataError::MismatchedLink { .. })
        ));
    }

    #[test]
    fn completion_link_rejects_primary_input_and_double_link() {
        let mut db = db();
        let s = db.begin_planning(WorkDays::ZERO);
        let sc = db
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(1.0))
            .unwrap();
        let data = db.store_data("x", vec![]);
        // A supplied input has no producing run — not a valid result.
        let supplied = db
            .supply_input("netlist", "bob", WorkDays::ZERO, data)
            .unwrap();
        assert!(matches!(
            db.link_completion(sc, supplied),
            Err(MetadataError::MismatchedLink { .. })
        ));
        let run = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let e = db
            .finish_run(run, "netlist", data, WorkDays::new(1.0), &[])
            .unwrap();
        db.link_completion(sc, e).unwrap();
        assert!(matches!(
            db.link_completion(sc, e),
            Err(MetadataError::AlreadyLinked(_))
        ));
    }

    #[test]
    fn actuals_absent_until_linked() {
        let mut db = db();
        assert_eq!(db.actual_start("Create"), None);
        let s = db.begin_planning(WorkDays::ZERO);
        db.plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(1.0))
            .unwrap();
        let data = db.store_data("x", vec![]);
        let run = db.begin_run("Create", "alice", WorkDays::new(0.5)).unwrap();
        db.finish_run(run, "netlist", data, WorkDays::new(1.5), &[])
            .unwrap();
        assert_eq!(db.actual_start("Create"), Some(WorkDays::new(0.5)));
        // Finished a run, but the designer has not declared completion.
        assert_eq!(db.actual_finish("Create"), None);
    }

    #[test]
    fn display_summarises_counts() {
        let db = db();
        assert!(db.to_string().contains("0 entity instances"));
    }

    #[test]
    fn stale_handles_rejected_after_generation_bump() {
        let mut db = db();
        let s = db.begin_planning(WorkDays::ZERO);
        let sc = db
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(1.0))
            .unwrap();
        let data = db.store_data("x", vec![]);
        let run = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        assert_eq!(db.generation(), 0);
        // Simulate a compaction bumping the generation: every handle
        // minted above is now stale even though its slot still resolves.
        db.generation = 1;
        assert!(matches!(
            db.finish_run(run, "netlist", data, WorkDays::new(1.0), &[]),
            Err(MetadataError::StaleHandle(_))
        ));
        assert!(matches!(
            db.assign(sc, "carol"),
            Err(MetadataError::StaleHandle(_))
        ));
        assert!(matches!(
            db.plan_activity(s, "Create", WorkDays::ZERO, WorkDays::ZERO),
            Err(MetadataError::StaleHandle(_))
        ));
        assert!(matches!(
            db.supply_input("stimuli", "bob", WorkDays::ZERO, data),
            Err(MetadataError::StaleHandle(_))
        ));
        // Fresh handles minted at the new generation work.
        let data2 = db.store_data("y", vec![]);
        assert_eq!(data2.generation(), 1);
        let run2 = db.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let e2 = db
            .finish_run(run2, "netlist", data2, WorkDays::new(1.0), &[])
            .unwrap();
        let s2 = db.begin_planning(WorkDays::new(1.0));
        let sc2 = db
            .plan_activity(s2, "Create", WorkDays::ZERO, WorkDays::new(1.0))
            .unwrap();
        db.link_completion(sc2, e2).unwrap();
    }
}
