//! B16 — flight-recorder overhead on live paths: the B2 (plan) body
//! and the B13 serve body (`Api::handle`, no TCP) measured with the
//! always-on flight recorder off and on.
//!
//! The live-telemetry contract (DESIGN.md §14): a server can leave the
//! flight recorder enabled permanently — the lossy per-thread rings
//! must cost **≤ 1.15× the disabled median** on both bodies. Unlike
//! B11's session variants there is no drain in the loop: the recorder
//! overwrites in place, which is exactly the deployment mode the gate
//! certifies (`tests/obs_live.rs` and the `obs` CI stage).
//!
//! Bodies:
//!
//! * `plan_flight_{off,on}/50` — B2's body: a fresh 50-stage pipeline
//!   planned from scratch, spans/events recorded into the ring when
//!   the recorder is on.
//! * `serve_flight_{off,on}` — one status request routed through
//!   [`serve::Api::handle`] against a seeded 8-project workspace:
//!   trace-id assignment, the `serve.request` span, kernel status
//!   body, labeled metrics.

use harness::bench::Record;
use hercules::Workspace;
use serve::{Api, ApiConfig, Request};
use std::sync::Arc;

use super::serve_load;
use crate::pipeline_manager;

const STAGES: usize = 50;

/// Ring capacity while the `*_flight_on` variants run — the server
/// default (`serve::ServerConfig::flight_cap`).
pub const FLIGHT_CAP: usize = 4096;

/// A parsed status request for project `p0` (seeded by
/// [`serve_load::seeded_workspace`]).
fn status_request() -> Request {
    let raw = b"GET /projects/p0/status HTTP/1.1\r\nhost: bench\r\ncontent-length: 0\r\n\r\n";
    match serve::http::read_request(&mut std::io::Cursor::new(raw.to_vec())) {
        serve::http::ReadOutcome::Request(req) => req,
        other => panic!("bench request failed to parse: {other:?}"),
    }
}

/// A workspace-backed [`Api`] ready to answer [`status_request`].
pub fn seeded_api() -> Api {
    let ws: Arc<Workspace> = serve_load::seeded_workspace();
    Api::new(ws, ApiConfig::default())
}

/// Runs the kernel; `quick` selects the smoke-test sampling plan.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("obs_live", quick);
    let target = format!("d{STAGES}");

    // -- B2 body: plan from scratch ---------------------------------------
    obs::Collector::disable_flight();
    suite.bench_with_setup(
        &format!("plan_flight_off/{STAGES}"),
        Some(STAGES as u64),
        || pipeline_manager(STAGES, 4, 1),
        |mut h| h.plan(&target).expect("plannable").project_finish(),
    );
    obs::Collector::enable_flight(FLIGHT_CAP);
    suite.bench_with_setup(
        &format!("plan_flight_on/{STAGES}"),
        Some(STAGES as u64),
        || pipeline_manager(STAGES, 4, 1),
        |mut h| h.plan(&target).expect("plannable").project_finish(),
    );
    obs::Collector::disable_flight();
    obs::Collector::flight_clear();

    // -- B13 body: one status request through the router ------------------
    let api = seeded_api();
    let req = status_request();
    suite.bench("serve_flight_off", Some(1), || {
        assert_eq!(api.handle(&req).status, 200);
    });
    obs::Collector::enable_flight(FLIGHT_CAP);
    suite.bench("serve_flight_on", Some(1), || {
        assert_eq!(api.handle(&req).status, 200);
    });
    obs::Collector::disable_flight();
    obs::Collector::flight_clear();

    suite.into_records()
}
