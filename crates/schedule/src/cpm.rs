use crate::error::ScheduleError;
use crate::network::{ActivityId, ScheduleNetwork, WorkDays};

/// The four CPM dates plus slack for one activity, in working days from
/// project start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityTimes {
    /// Earliest start.
    pub early_start: WorkDays,
    /// Earliest finish (`early_start + duration`).
    pub early_finish: WorkDays,
    /// Latest start that does not delay the project.
    pub late_start: WorkDays,
    /// Latest finish that does not delay the project.
    pub late_finish: WorkDays,
    /// Total slack (`late_start - early_start`); zero on the critical
    /// path.
    pub total_slack: WorkDays,
    /// Free slack: how far the activity can slip without delaying any
    /// *immediate* successor's earliest start.
    pub free_slack: WorkDays,
}

/// Result of critical-path analysis over a [`ScheduleNetwork`].
///
/// Produced by [`ScheduleNetwork::analyze`]. This is what a combined
/// flow/schedule manager consults to propose milestones: "the data
/// created by the simulation of an execution should establish an
/// approximate time frame for the execution of an activity" (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct CpmAnalysis {
    times: Vec<ActivityTimes>,
    duration: WorkDays,
    critical: Vec<ActivityId>,
}

impl CpmAnalysis {
    /// Assembles an analysis from precomputed parts. Shared by the full
    /// pass ([`ScheduleNetwork::analyze`]) and the dirty-region engine
    /// ([`crate::IncrementalCpm::analysis`]).
    pub(crate) fn from_parts(
        times: Vec<ActivityTimes>,
        duration: WorkDays,
        critical: Vec<ActivityId>,
    ) -> Self {
        CpmAnalysis {
            times,
            duration,
            critical,
        }
    }

    /// Per-activity dates.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analyzed network.
    pub fn times(&self, id: ActivityId) -> ActivityTimes {
        self.times[id.index()]
    }

    /// Total project duration (max earliest finish).
    pub fn project_duration(&self) -> WorkDays {
        self.duration
    }

    /// Whether the activity is on a critical path (zero total slack).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analyzed network.
    pub fn is_critical(&self, id: ActivityId) -> bool {
        self.times[id.index()].total_slack.days() < 1e-9
    }

    /// One critical path from a start activity to a finish activity, in
    /// precedence order.
    pub fn critical_path(&self) -> &[ActivityId] {
        &self.critical
    }

    /// The flat total-slack array, indexed by activity index — the
    /// contiguous view dispatch policies (e.g. min-slack ready-queue
    /// ordering) consume without per-id lookups.
    pub fn total_slacks(&self) -> Vec<WorkDays> {
        self.times.iter().map(|t| t.total_slack).collect()
    }

    /// Number of activities analyzed.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the analyzed network was empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

impl ScheduleNetwork {
    /// Runs critical-path analysis: a forward pass computing earliest
    /// dates, a backward pass computing latest dates, then slack and a
    /// critical path.
    ///
    /// Runs in `O(activities + constraints)`.
    ///
    /// # Errors
    ///
    /// Currently infallible for networks built through the public API
    /// (they are acyclic by construction); the `Result` guards the
    /// internal topological sort.
    ///
    /// # Example
    ///
    /// ```
    /// use schedule::{ScheduleNetwork, WorkDays};
    ///
    /// # fn main() -> Result<(), schedule::ScheduleError> {
    /// let mut net = ScheduleNetwork::new();
    /// let a = net.add_activity("a", WorkDays::new(4.0))?;
    /// let b = net.add_activity("b", WorkDays::new(2.0))?;
    /// let c = net.add_activity("c", WorkDays::new(1.0))?;
    /// net.add_precedence(a, c)?;
    /// net.add_precedence(b, c)?;
    /// let cpm = net.analyze()?;
    /// assert_eq!(cpm.project_duration(), WorkDays::new(5.0));
    /// // b can slip 2 days before it delays c.
    /// assert_eq!(cpm.times(b).total_slack, WorkDays::new(2.0));
    /// # Ok(())
    /// # }
    /// ```
    pub fn analyze(&self) -> Result<CpmAnalysis, ScheduleError> {
        self.analyze_with_threads(crate::csr::default_threads(self.activity_count()))
    }

    /// [`analyze`](ScheduleNetwork::analyze) with an explicit worker
    /// count for the level-synchronous passes. `threads <= 1` forces
    /// the serial sweep. Results are bit-identical for every thread
    /// count: each activity's dates are a pure fold over its
    /// already-finished neighbors in fixed edge-insertion order, so
    /// threading only changes who computes them, never the outcome.
    ///
    /// # Errors
    ///
    /// Infallible for networks built through the public API, like
    /// [`analyze`](ScheduleNetwork::analyze).
    pub fn analyze_with_threads(&self, threads: usize) -> Result<CpmAnalysis, ScheduleError> {
        let csr = self.csr();
        let dur = csr.gather(self.durations_raw());
        let (es, ef) = csr.forward(&dur, threads);
        let tail = csr.backward(&dur, threads);
        let project = csr.project(&ef);
        let times = csr.assemble_times(&dur, &es, &ef, &tail, project);
        let critical = csr.walk_critical(&es, &ef, &tail, project);
        Ok(CpmAnalysis {
            times,
            duration: WorkDays::new(project),
            critical,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic textbook network:
    ///
    /// ```text
    ///        ┌─ B(4) ─┐
    /// A(2) ──┤        ├── D(3)
    ///        └─ C(1) ─┘
    /// ```
    fn diamond() -> (ScheduleNetwork, [ActivityId; 4]) {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("A", WorkDays::new(2.0)).unwrap();
        let b = net.add_activity("B", WorkDays::new(4.0)).unwrap();
        let c = net.add_activity("C", WorkDays::new(1.0)).unwrap();
        let d = net.add_activity("D", WorkDays::new(3.0)).unwrap();
        net.add_precedence(a, b).unwrap();
        net.add_precedence(a, c).unwrap();
        net.add_precedence(b, d).unwrap();
        net.add_precedence(c, d).unwrap();
        (net, [a, b, c, d])
    }

    #[test]
    fn forward_pass_earliest_dates() {
        let (net, [a, b, c, d]) = diamond();
        let cpm = net.analyze().unwrap();
        assert_eq!(cpm.times(a).early_start, WorkDays::ZERO);
        assert_eq!(cpm.times(b).early_start, WorkDays::new(2.0));
        assert_eq!(cpm.times(c).early_start, WorkDays::new(2.0));
        assert_eq!(cpm.times(d).early_start, WorkDays::new(6.0));
        assert_eq!(cpm.project_duration(), WorkDays::new(9.0));
    }

    #[test]
    fn backward_pass_latest_dates() {
        let (net, [a, b, c, d]) = diamond();
        let cpm = net.analyze().unwrap();
        assert_eq!(cpm.times(d).late_finish, WorkDays::new(9.0));
        assert_eq!(cpm.times(b).late_finish, WorkDays::new(6.0));
        assert_eq!(cpm.times(c).late_finish, WorkDays::new(6.0));
        assert_eq!(cpm.times(c).late_start, WorkDays::new(5.0));
        assert_eq!(cpm.times(a).late_start, WorkDays::ZERO);
    }

    #[test]
    fn slack_and_criticality() {
        let (net, [a, b, c, d]) = diamond();
        let cpm = net.analyze().unwrap();
        assert!(cpm.is_critical(a));
        assert!(cpm.is_critical(b));
        assert!(!cpm.is_critical(c));
        assert!(cpm.is_critical(d));
        assert_eq!(cpm.times(c).total_slack, WorkDays::new(3.0));
        assert_eq!(cpm.times(c).free_slack, WorkDays::new(3.0));
        assert_eq!(cpm.times(b).total_slack, WorkDays::ZERO);
    }

    #[test]
    fn critical_path_is_a_b_d() {
        let (net, [a, b, _c, d]) = diamond();
        let cpm = net.analyze().unwrap();
        assert_eq!(cpm.critical_path(), [a, b, d]);
    }

    #[test]
    fn empty_network() {
        let net = ScheduleNetwork::new();
        let cpm = net.analyze().unwrap();
        assert!(cpm.is_empty());
        assert_eq!(cpm.project_duration(), WorkDays::ZERO);
        assert!(cpm.critical_path().is_empty());
    }

    #[test]
    fn single_activity() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("only", WorkDays::new(7.0)).unwrap();
        let cpm = net.analyze().unwrap();
        assert_eq!(cpm.project_duration(), WorkDays::new(7.0));
        assert_eq!(cpm.critical_path(), [a]);
        assert_eq!(cpm.len(), 1);
    }

    #[test]
    fn parallel_chains_independent() {
        let mut net = ScheduleNetwork::new();
        let a1 = net.add_activity("a1", WorkDays::new(5.0)).unwrap();
        let a2 = net.add_activity("a2", WorkDays::new(5.0)).unwrap();
        let b1 = net.add_activity("b1", WorkDays::new(1.0)).unwrap();
        let b2 = net.add_activity("b2", WorkDays::new(1.0)).unwrap();
        net.add_precedence(a1, a2).unwrap();
        net.add_precedence(b1, b2).unwrap();
        let cpm = net.analyze().unwrap();
        assert_eq!(cpm.project_duration(), WorkDays::new(10.0));
        assert!(cpm.is_critical(a1) && cpm.is_critical(a2));
        assert!(!cpm.is_critical(b1));
        // The short chain's slack equals the duration difference.
        assert_eq!(cpm.times(b2).total_slack, WorkDays::new(8.0));
    }

    #[test]
    fn zero_duration_milestones() {
        let mut net = ScheduleNetwork::new();
        let m0 = net.add_activity("kickoff", WorkDays::ZERO).unwrap();
        let w = net.add_activity("work", WorkDays::new(3.0)).unwrap();
        let m1 = net.add_activity("done", WorkDays::ZERO).unwrap();
        net.add_precedence(m0, w).unwrap();
        net.add_precedence(w, m1).unwrap();
        let cpm = net.analyze().unwrap();
        assert_eq!(cpm.project_duration(), WorkDays::new(3.0));
        assert_eq!(cpm.critical_path(), [m0, w, m1]);
    }

    #[test]
    fn free_slack_less_than_total() {
        // c -> e, b -> e; b short with long parallel a -> e chain:
        //   a(10) -> e ; b(1) -> c(1) -> e(1)
        // c's free slack is limited by e's early start, total slack too;
        // b's free slack is 0 (c starts right after b at its earliest)
        // while b's total slack is 8.
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(10.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(1.0)).unwrap();
        let c = net.add_activity("c", WorkDays::new(1.0)).unwrap();
        let e = net.add_activity("e", WorkDays::new(1.0)).unwrap();
        net.add_precedence(a, e).unwrap();
        net.add_precedence(b, c).unwrap();
        net.add_precedence(c, e).unwrap();
        let cpm = net.analyze().unwrap();
        assert_eq!(cpm.times(b).free_slack, WorkDays::ZERO);
        assert_eq!(cpm.times(b).total_slack, WorkDays::new(8.0));
        assert_eq!(cpm.times(c).free_slack, WorkDays::new(8.0));
    }
}
