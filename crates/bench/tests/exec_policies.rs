//! The B17 acceptance gate for the policy-driven executor.
//!
//! Two halves:
//!
//! * **Simulated makespans** (host-independent, debug-safe): on the
//!   contended layered flow over the heterogeneous cluster, at least
//!   one of the schedule-aware policies (MinSlack, HEFT) must beat
//!   Fifo's makespan — otherwise the policy layer is dead weight.
//! * **Engine overhead** (optimized builds only): Fifo on the implicit
//!   single-designer substrate must stay within **1.05×** of the
//!   retired serial executor's wall-clock — the dispatch loop is
//!   bookkeeping, not a regression. Ratio-only, no wall-clock floors.

#[cfg(not(debug_assertions))]
use bench::kernels::exec_policies::contended_manager;
use bench::kernels::exec_policies::simulated_makespans;

/// The policy field must actually separate on the contended scenario,
/// and the schedule-aware policies must win.
#[test]
fn schedule_aware_policies_beat_fifo_makespan() {
    let spans = simulated_makespans();
    let of = |name: &str| {
        spans
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} missing from {spans:?}"))
            .1
    };
    let fifo = of("fifo");
    let minslack = of("minslack");
    let heft = of("heft");
    eprintln!("exec_policies: simulated makespans {spans:?}");
    assert!(
        minslack < fifo || heft < fifo,
        "neither MinSlack ({minslack}) nor HEFT ({heft}) beats Fifo ({fifo}) \
         on the contended scenario"
    );
    // Determinism: the table in EXPERIMENTS.md must be reproducible.
    assert_eq!(
        spans,
        simulated_makespans(),
        "makespans are not deterministic"
    );
}

/// One timed try: pool construction (schema generation + planning) is
/// untimed, the execution loop is.
#[cfg(not(debug_assertions))]
fn pool_secs(calls: usize, serial: bool) -> f64 {
    let mut pool: Vec<hercules::Hercules> = (0..calls).map(|_| contended_manager(1)).collect();
    let t0 = std::time::Instant::now();
    for h in &mut pool {
        if serial {
            std::hint::black_box(h.execute_serial_reference("merged").expect("reference"));
        } else {
            std::hint::black_box(h.execute("merged").expect("fifo"));
        }
    }
    t0.elapsed().as_secs_f64()
}

/// Timing gates only make sense on optimized builds.
#[cfg(not(debug_assertions))]
#[test]
fn fifo_engine_tracks_serial_reference() {
    const TRIES: usize = 9;
    const CALLS: usize = 64;
    const BUDGET: f64 = 1.05;

    // Warmup both paths once.
    pool_secs(2, true);
    pool_secs(2, false);
    // Interleave the two sides within each try (host-speed drift then
    // hits both sides of a pair alike instead of skewing whichever
    // block ran second) and take the median per-try ratio: robust to
    // load spikes without the optimistic bias a min would have.
    let median_ratio = || {
        let mut ratios: Vec<f64> = (0..TRIES)
            .map(|_| {
                let serial = pool_secs(CALLS, true);
                let engine = pool_secs(CALLS, false);
                engine / serial
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        let median = ratios[TRIES / 2];
        eprintln!("exec_policies: per-try fifo/serial ratios {ratios:.3?}, median {median:.3}");
        median
    };
    // One re-measure on a miss: the engine sits within a few percent
    // of the reference, so a loaded host can push a single median past
    // the budget while a real regression fails both passes.
    let mut ratio = median_ratio();
    if ratio > BUDGET {
        ratio = median_ratio().min(ratio);
    }
    assert!(
        ratio <= BUDGET,
        "fifo engine costs {ratio:.3}x the serial reference (budget {BUDGET}x)"
    );
}
