//! A minimal discrete-event core: a clock plus a time-ordered event
//! queue with deterministic tie-breaking.
//!
//! The execution engines (multi-designer flow execution in the
//! `hercules` crate, the reporting-lag baseline in `baselines`) are
//! built on this: they schedule events at future times and process them
//! in order. Ties are broken by insertion sequence so simulations are
//! reproducible regardless of float coincidences.
//!
//! # Example
//!
//! ```
//! use simtools::des::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.schedule(2.0, "finish");
//! q.schedule(1.0, "start");
//! assert_eq!(q.pop(), Some((1.0, "start")));
//! assert_eq!(q.pop(), Some((2.0, "finish")));
//! assert!(q.is_empty());
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: f64,
    sequence: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap: earliest time first, then earliest
        // insertion.
        other
            .time
            .total_cmp(&self.time)
            .then(other.sequence.cmp(&self.sequence))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue over payloads of type `T`.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    sequence: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            sequence: 0,
            now: 0.0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time: the time of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current clock
    /// (events cannot fire in the past).
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule at {time} before current time {}",
            self.now
        );
        let entry = Entry {
            time,
            sequence: self.sequence,
            payload,
        };
        self.sequence += 1;
        self.heap.push(entry);
    }

    /// Schedules `payload` after a delay from the current clock.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(q.now(), 3.0);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "later");
        q.pop();
        q.schedule_in(2.0, "after");
        assert_eq!(q.peek_time(), Some(7.0));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(4.0, ());
        let mut last = 0.0;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_in(-1.0, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
