//! Policy-engine properties: every scheduling policy upholds the
//! executor's failure-semantics contract (no-abort, blocked never
//! complete, journal replay ≡ live) and — on uniform-speed substrates,
//! where fault outcomes are per-activity and speed-independent — all
//! policies execute, block, and skip exactly the same activity set.

use std::collections::BTreeSet;

use harness::prelude::*;
use hercules::{ExecutionPolicy, ExecutionReport, Hercules};
use metadata::MetadataDb;
use schema::{examples, TaskSchema};
use simtools::cluster::Cluster;
use simtools::rng::{mix, SplitMix64};
use simtools::workload::Team;
use simtools::{FaultPlan, ToolLibrary};

/// A small faulted project derived from a seed (schema family, team
/// size, fault plan), mirroring the chaos derivation but without the
/// crash-injection layer.
struct Scenario {
    schema: TaskSchema,
    target: String,
    team: usize,
    project_seed: u64,
    fault_seed: u64,
}

impl Scenario {
    fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(mix(&[seed, 0x90CC_11E5]));
        let (schema, target) = match rng.next_below(4) {
            0 => (examples::circuit_design(), "performance".to_owned()),
            1 => (examples::asic_flow(), "signoff_report".to_owned()),
            2 => {
                let stages = 3 + rng.next_below(5) as usize;
                (examples::pipeline(stages), format!("d{stages}"))
            }
            _ => {
                let layers = 2 + rng.next_below(2) as usize;
                let width = 2 + rng.next_below(2) as usize;
                (examples::layered(layers, width, 2), "merged".to_owned())
            }
        };
        Scenario {
            schema,
            target,
            team: 1 + rng.next_below(3) as usize,
            project_seed: rng.next_u64(),
            fault_seed: rng.next_u64(),
        }
    }

    /// Builds a planned, fault-injected manager for one run. The
    /// journal (when requested) is enabled before the first mutation so
    /// replay covers the whole session.
    fn manager(&self, journal: bool) -> Hercules {
        let mut h = Hercules::new(
            self.schema.clone(),
            ToolLibrary::standard(),
            Team::of_size(self.team),
            self.project_seed,
        );
        if journal {
            h.enable_journal();
        }
        h.plan(&self.target).expect("scenario plans");
        h.set_fault_plan(FaultPlan::seeded(self.fault_seed).with_persistent_rate(0.25));
        h
    }
}

fn outcome_sets(r: &ExecutionReport) -> (BTreeSet<String>, BTreeSet<String>, BTreeSet<String>) {
    (
        r.activities().iter().map(|a| a.activity.clone()).collect(),
        r.blocked().iter().map(|b| b.activity.clone()).collect(),
        r.skipped().iter().cloned().collect(),
    )
}

harness::props! {
    config(cases = 24);

    /// Same scenario, four policies: identical executed / blocked /
    /// skipped sets and identical completion state on the implicit
    /// (uniform-speed) substrate.
    fn all_policies_complete_the_same_activity_set(seed in 0u64..1_000_000) {
        let scenario = Scenario::from_seed(seed);
        let mut reference: Option<(BTreeSet<String>, BTreeSet<String>, BTreeSet<String>)> = None;
        for policy in ExecutionPolicy::ALL {
            let mut h = scenario.manager(false);
            h.set_execution_policy(policy);
            let report = h
                .execute(&scenario.target)
                .unwrap_or_else(|e| panic!("{policy} aborted on injected faults: {e}"));
            let sets = outcome_sets(&report);
            match &reference {
                None => reference = Some(sets),
                Some(expected) => {
                    prop_assert!(expected == &sets, "{policy} disagrees on the outcome set");
                }
            }
            // Blocked never completes, under any policy.
            for b in report.blocked() {
                prop_assert!(
                    !h.db().current_plan(&b.activity).is_some_and(|p| p.is_complete()),
                    "{}: blocked {} linked complete",
                    policy,
                    b.activity
                );
            }
        }
    }

    /// Journal replay reproduces the live database under every policy,
    /// implicit or explicit cluster alike.
    fn replay_equals_live_for_every_policy(seed in 0u64..1_000_000) {
        let scenario = Scenario::from_seed(seed);
        let policy = ExecutionPolicy::ALL[(seed % 4) as usize];
        let workers = 1 + (seed / 4 % 4) as usize;
        for cluster in [None, Some(Cluster::heterogeneous(workers, seed).with_network(0.01, 0.02))] {
            let mut h = scenario.manager(true);
            h.set_execution_policy(policy);
            h.set_cluster(cluster);
            h.execute(&scenario.target)
                .unwrap_or_else(|e| panic!("{policy} aborted on injected faults: {e}"));
            let journal = h.db().journal().expect("journal enabled");
            let replayed = MetadataDb::recover(journal).expect("replay succeeds");
            prop_assert!(
                replayed.dump() == h.db().dump(),
                "{policy} replay diverges from live"
            );
        }
    }

    /// Explicit uniform clusters preserve the outcome set (speed is
    /// what perturbs fault budgets, not placement).
    fn uniform_cluster_preserves_outcomes(seed in 0u64..1_000_000) {
        let scenario = Scenario::from_seed(seed);
        let policy = ExecutionPolicy::ALL[(seed % 4) as usize];
        let run = |cluster: Option<Cluster>| {
            let mut h = scenario.manager(false);
            h.set_execution_policy(policy);
            h.set_cluster(cluster);
            let report = h
                .execute(&scenario.target)
                .unwrap_or_else(|e| panic!("{policy} aborted on injected faults: {e}"));
            outcome_sets(&report)
        };
        let implicit = run(None);
        let explicit = run(Some(Cluster::uniform(1 + (seed % 5) as usize)));
        prop_assert!(
            implicit == explicit,
            "{policy} outcome shifted on uniform cluster"
        );
    }
}
