//! Workspace root for the DAC'95 reproduction of *Incorporating Design
//! Schedule Management into a Flow Management System* (Johnson &
//! Brockman).
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the functionality lives in
//! the member crates, re-exported here for convenience:
//!
//! * [`hercules`] — the integrated flow + schedule manager (core).
//! * [`schema`] — Level-1 task schemas and the DSL.
//! * [`metadata`] — the Level-3/4 instance database.
//! * [`schedule`] — CPM/PERT, calendars, resources, Gantt.
//! * [`flowgraph`] — the DAG substrate.
//! * [`simtools`] — synthetic tool behaviour models.
//! * [`predict`] — duration prediction from history.
//! * [`baselines`] — manual-PM and VOV-trace comparators.
//! * [`survey`] — Table I's six-system comparison.
//!
//! Start with `cargo run --example quickstart`.

#![forbid(unsafe_code)]

pub use baselines;
pub use flowgraph;
pub use hercules;
pub use metadata;
pub use predict;
pub use schedule;
pub use schema;
pub use simtools;
pub use survey;
