#!/usr/bin/env bash
# Tier-1 gate: offline build + tests + benchmark smoke run.
#
# Everything runs with --offline: the workspace has no crates-io
# dependencies (dev or otherwise), so a network-less container must be
# able to do all of this. If a step fails here, the tree is broken.
#
# Usage: scripts/check.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== toolchain =="
rustc --version
cargo --version

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== bench smoke (quick sampling plan) =="
cargo run -q --release --offline -p bench --bin benchmarks -- --quick \
    --out target/BENCH_smoke.json
test -s target/BENCH_smoke.json

echo "== check.sh: all green =="
