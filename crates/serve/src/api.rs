//! Request routing: maps the HTTP surface onto the
//! [`hercules::Workspace`] kernel.
//!
//! The server is a *pure transport*: every response body is produced
//! by a rendering function over kernel results, and the differential
//! suite (`tests/serve_differential.rs`) holds the server to
//! byte-identical output against direct in-process calls. Keep the
//! render functions (`status_body`, `plan_body`, `run_body`,
//! `replan_body`) free of any server state.
//!
//! ## Routes
//!
//! | Method | Path | Effect |
//! |---|---|---|
//! | GET | `/healthz` | liveness JSON: version, schema, uptime, projects, wedged stores (no auth) |
//! | GET | `/metrics` | obs metrics (JSON; `?format=text` console form, `?format=prom` Prometheus exposition) |
//! | GET | `/debug/flight` | flight-recorder dump (`?trace=<id>` for one request's records) |
//! | GET | `/projects` | registered + on-disk project names, one per line |
//! | POST | `/projects/{name}?team=N&seed=N` | create; body = schema source |
//! | DELETE | `/projects/{name}` | unregister and delete |
//! | GET | `/projects/{name}/status` | status report (CLI `ws status` bytes) |
//! | GET | `/projects/{name}/export` | metadata-db dump |
//! | POST | `/projects/{name}/plan?target=T` | propose a schedule |
//! | POST | `/projects/{name}/replan?target=T` | replan (coalesced per project) |
//! | POST | `/projects/{name}/run?target=T` | plan + execute (`&policy=P` scheduling policy, `&workers=N` simulated uniform cluster) |
//! | GET | `/trace/{scenario}?seed=N` | record a trace (503 while busy) |
//!
//! Kernel-level failures (unknown target, planning errors) map to 422;
//! registry misses to 404; auth failures to 401; admission to 429.
//!
//! ## Request correlation
//!
//! Every request gets a 64-bit trace id: the `x-herc-trace` request
//! header when the client sent one (hex), otherwise a server-generated
//! id. The id is echoed in the `x-herc-trace` response header, stamped
//! into flight-recorder records written while the request is handled,
//! written to the access log, and appended to 5xx bodies together with
//! the request's flight tail — so a single id correlates the client's
//! view, the operator's log, and the in-memory ring.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use hercules::{
    ExecutionReport, Hercules, Project, ReplanOutcome, SchedulePlan, Workspace, WorkspaceError,
};
use obs::{Collector, Metrics};
use schema::parse_schema;
use simtools::rng::SplitMix64;
use simtools::workload::Team;
use simtools::ToolLibrary;

use crate::access_log::{AccessEntry, AccessLog};
use crate::auth::{Admission, AuthError, TokenRegistry};
use crate::batch::{Coalescer, Role};
use crate::http::{Request, Response};

/// Server-side behaviour knobs (transport only — never visible in
/// 2xx/4xx response bodies, which the differential suite pins).
#[derive(Debug)]
pub struct ApiConfig {
    /// Bearer-token registry; empty ⇒ open mode.
    pub tokens: TokenRegistry,
    /// Max in-flight requests per tenant before 429.
    pub per_tenant_cap: usize,
    /// Simulated interactive-session latency, spent while holding the
    /// project lock (mirrors the B12 `workspace_concurrent` kernel so
    /// worker-scaling benches measure concurrency, not CPU).
    pub session_latency: Duration,
    /// Structured JSONL access log, one line per request.
    pub access_log: Option<AccessLog>,
}

impl Default for ApiConfig {
    fn default() -> Self {
        ApiConfig {
            tokens: TokenRegistry::default(),
            per_tenant_cap: 64,
            session_latency: Duration::ZERO,
            access_log: None,
        }
    }
}

struct ApiMetrics {
    rejected_auth: obs::Counter,
    rejected_busy: obs::Counter,
    replan_requests: obs::Counter,
    replan_passes: obs::Counter,
    replan_coalesced: obs::Counter,
}

fn metrics() -> &'static ApiMetrics {
    static METRICS: OnceLock<ApiMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ApiMetrics {
        rejected_auth: Metrics::counter("serve.rejected.auth"),
        rejected_busy: Metrics::counter("serve.rejected.busy"),
        replan_requests: Metrics::counter("serve.replan.requests"),
        replan_passes: Metrics::counter("serve.replan.kernel_passes"),
        replan_coalesced: Metrics::counter("serve.replan.coalesced"),
    })
}

/// Per-endpoint latency histogram, in milliseconds, keyed on the
/// `endpoint` label (one family, many series — `?format=prom` renders
/// them as `serve_latency_bucket{endpoint="plan",le="…"}`).
fn latency_histogram(class: &str) -> obs::Histogram {
    Metrics::histogram_with(
        "serve.latency",
        &[
            0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 512.0,
        ],
        &[("endpoint", class)],
    )
}

/// Per-request fields the router threads back out to [`Api::handle`]
/// for the access log and per-tenant telemetry.
#[derive(Default)]
struct RequestInfo {
    /// Authenticated tenant, once auth succeeded.
    tenant: Option<String>,
    /// Whether a replan was answered from a concurrent leader's pass.
    coalesced: bool,
}

/// How many flight records a 5xx body carries, newest last. A bounded
/// tail: fault bodies must stay small even with a large ring.
const FAULT_TAIL: usize = 16;

/// The routing core shared by every worker thread.
pub struct Api {
    ws: Arc<Workspace>,
    tokens: TokenRegistry,
    admission: Admission,
    coalescer: Coalescer,
    session_latency: Duration,
    trace_busy: AtomicBool,
    access_log: Option<AccessLog>,
    started: Instant,
    /// Trace-id generator for requests that arrive without
    /// `x-herc-trace`. Seeded from wall clock + pid so concurrent
    /// servers don't collide; clients wanting determinism send the
    /// header.
    trace_ids: Mutex<SplitMix64>,
}

impl Api {
    pub fn new(ws: Arc<Workspace>, config: ApiConfig) -> Api {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ (u64::from(std::process::id()) << 32);
        Api {
            ws,
            tokens: config.tokens,
            admission: Admission::new(config.per_tenant_cap),
            coalescer: Coalescer::new(),
            session_latency: config.session_latency,
            trace_busy: AtomicBool::new(false),
            access_log: config.access_log,
            started: Instant::now(),
            trace_ids: Mutex::new(SplitMix64::new(seed)),
        }
    }

    /// Routes one parsed request to a response. Total: every branch
    /// returns a well-formed `Response`.
    pub fn handle(&self, req: &Request) -> Response {
        let class = route_class(req);
        Metrics::counter_with("serve.requests", &[("endpoint", class)]).inc();
        let trace_id = self.trace_id_for(req);
        let start = Instant::now();
        let mut info = RequestInfo::default();
        let mut response = {
            // Flight records written while this request runs carry its
            // id; the guard restores the previous id on exit.
            let _trace = Collector::trace_scope(trace_id);
            self.dispatch(req, class, &mut info)
        };
        let latency_ms = start.elapsed().as_secs_f64() * 1e3;
        latency_histogram(class).observe(latency_ms);
        if let Some(tenant) = &info.tenant {
            Metrics::gauge_with("serve.inflight", &[("tenant", tenant)])
                .set(self.admission.in_flight(tenant) as i64);
        }
        response
            .extra_headers
            .push(("x-herc-trace".to_owned(), format!("{trace_id:016x}")));
        if response.status >= 500 {
            annotate_fault(&mut response, trace_id);
        }
        if let Some(log) = &self.access_log {
            log.record(&AccessEntry {
                trace_id,
                tenant: info.tenant,
                endpoint: class,
                status: response.status,
                latency_ms,
                coalesced: info.coalesced,
            });
        }
        response
    }

    /// The request's trace id: the client's `x-herc-trace` hex value
    /// when present and parseable, else a fresh nonzero id.
    fn trace_id_for(&self, req: &Request) -> u64 {
        if let Some(id) = req.header("x-herc-trace").and_then(parse_trace_id) {
            return id;
        }
        let mut rng = self.trace_ids.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let id = rng.next_u64();
            if id != 0 {
                return id;
            }
        }
    }

    fn dispatch(&self, req: &Request, class: &'static str, info: &mut RequestInfo) -> Response {
        let _span = obs::span!("serve.request", endpoint = class);
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        if segments.as_slice() == ["healthz"] {
            return match req.method.as_str() {
                "GET" => Response::json(200, self.healthz_body()),
                _ => Response::error(405, "method not allowed"),
            };
        }
        // Everything past the liveness probe is authenticated and
        // admission-controlled.
        let tenant = match self.tokens.authenticate(req.header("authorization")) {
            Ok(tenant) => tenant,
            Err(AuthError::Missing) => {
                metrics().rejected_auth.inc();
                return Response::error(401, "missing bearer token");
            }
            Err(AuthError::Invalid) => {
                metrics().rejected_auth.inc();
                return Response::error(401, "invalid bearer token");
            }
        };
        Metrics::counter_with("serve.tenant.requests", &[("tenant", &tenant)]).inc();
        info.tenant = Some(tenant.clone());
        let Some(_guard) = self.admission.try_enter(&tenant) else {
            metrics().rejected_busy.inc();
            return Response::error(429, "tenant at in-flight cap, retry later");
        };
        Metrics::gauge_with("serve.inflight", &[("tenant", &tenant)])
            .set(self.admission.in_flight(&tenant) as i64);
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["metrics"]) => match req.query_param("format") {
                Some("text") => Response::text(200, Metrics::render()),
                Some("prom") => Response::text(200, Metrics::to_prometheus()),
                _ => Response::json(200, Metrics::to_json()),
            },
            ("GET", ["debug", "flight"]) => debug_flight(req),
            ("GET", ["projects"]) => self.list_projects(),
            ("POST", ["projects", name]) => self.create_project(name, req),
            ("DELETE", ["projects", name]) => self.remove_project(name),
            ("GET", ["projects", name, "status"]) => self.project_status(name),
            ("GET", ["projects", name, "export"]) => self.project_export(name),
            ("POST", ["projects", name, "plan"]) => self.project_plan(name, req),
            ("POST", ["projects", name, "replan"]) => self.project_replan(name, req, info),
            ("POST", ["projects", name, "run"]) => self.project_run(name, req),
            ("GET", ["trace", scenario]) => self.record_trace(scenario, req),
            // Known resource, wrong verb → 405; anything else → 404.
            (
                _,
                ["metrics"] | ["projects"] | ["projects", ..] | ["trace", _] | ["debug", "flight"],
            ) => Response::error(405, "method not allowed"),
            _ => Response::error(404, "no such route"),
        }
    }

    /// The `/healthz` body: liveness plus the numbers an orchestrator
    /// or `herc top` header wants in one probe.
    fn healthz_body(&self) -> String {
        format!(
            "{{\"status\":\"ok\",\"version\":\"{}\",\"schema\":\"{}\",\
             \"uptime_secs\":{},\"projects\":{},\"wedged\":{}}}",
            env!("CARGO_PKG_VERSION"),
            hercules::PROJECT_CONF_MAGIC,
            self.started.elapsed().as_secs(),
            self.ws.len(),
            self.ws.wedged_projects().len(),
        )
    }

    fn list_projects(&self) -> Response {
        let mut names = self.ws.names();
        if let Some(root) = self.ws.root() {
            for name in Workspace::on_disk_projects(root) {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        names.sort();
        let mut body = String::new();
        for name in names {
            body.push_str(&name);
            body.push('\n');
        }
        Response::text(200, body)
    }

    fn create_project(&self, name: &str, req: &Request) -> Response {
        let team = match parse_num(req, "team", 2usize) {
            Ok(n) => n.max(1),
            Err(resp) => return resp,
        };
        let seed = match parse_num(req, "seed", 42u64) {
            Ok(n) => n,
            Err(resp) => return resp,
        };
        let source = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => return Response::error(400, "schema body is not UTF-8"),
        };
        if source.trim().is_empty() {
            return Response::error(422, "empty schema body");
        }
        let schema = match parse_schema(source) {
            Ok(schema) => schema,
            Err(e) => return Response::error(422, format!("schema: {e}")),
        };
        match self.ws.create_project(
            name,
            schema,
            ToolLibrary::standard(),
            Team::of_size(team),
            seed,
        ) {
            Ok(_) => Response::text(201, format!("project {name:?} created\n")),
            Err(e) => workspace_error(e),
        }
    }

    fn remove_project(&self, name: &str) -> Response {
        match self.ws.remove_project(name) {
            Ok(()) => Response::text(200, format!("project {name:?} removed\n")),
            Err(e) => workspace_error(e),
        }
    }

    /// Registry lookup with re-open: a restarted server lazily
    /// re-registers on-disk projects from their saved session config.
    fn project(&self, name: &str) -> Result<Arc<Project>, Response> {
        if let Some(project) = self.ws.project(name) {
            return Ok(project);
        }
        if self.ws.root().is_none() {
            return Err(workspace_error(WorkspaceError::UnknownProject(
                name.to_owned(),
            )));
        }
        match self.ws.open_saved_project(name) {
            Ok(project) => Ok(project),
            // Two requests raced to re-open: the loser uses the
            // winner's registration.
            Err(WorkspaceError::DuplicateProject(_)) => self
                .ws
                .project(name)
                .ok_or_else(|| Response::error(500, "project registry race")),
            Err(e) => Err(workspace_error(e)),
        }
    }

    /// Burns the configured simulated session latency (no-op at zero).
    fn session_work(&self) {
        if !self.session_latency.is_zero() {
            std::thread::sleep(self.session_latency);
        }
    }

    fn project_status(&self, name: &str) -> Response {
        let project = match self.project(name) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let body = project.read(|h| {
            self.session_work();
            status_body(h)
        });
        Response::text(200, body)
    }

    fn project_export(&self, name: &str) -> Response {
        let project = match self.project(name) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let body = project.read(|h| h.db().dump());
        Response::text(200, body)
    }

    fn project_plan(&self, name: &str, req: &Request) -> Response {
        let Some(target) = req.query_param("target") else {
            return Response::error(400, "plan needs ?target=");
        };
        let project = match self.project(name) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let result = project.update(|h| {
            self.session_work();
            h.plan(target)
        });
        match result {
            Ok(plan) => Response::text(200, plan_body(name, target, &plan)),
            Err(e) => Response::error(422, e.to_string()),
        }
    }

    fn project_replan(&self, name: &str, req: &Request, info: &mut RequestInfo) -> Response {
        let Some(target) = req.query_param("target") else {
            return Response::error(400, "replan needs ?target=");
        };
        metrics().replan_requests.inc();
        let project = match self.project(name) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let target = target.to_owned();
        let (result, role) = self.coalescer.run(name, || {
            metrics().replan_passes.inc();
            project
                .update(|h| {
                    self.session_work();
                    h.replan(&target)
                })
                .map(|outcome| replan_body(&target, &outcome))
                .map_err(|e| e.to_string())
        });
        if role == Role::Follower {
            metrics().replan_coalesced.inc();
            info.coalesced = true;
        }
        match result {
            Ok(body) => Response::text(200, body),
            Err(message) => Response::error(422, message),
        }
    }

    fn project_run(&self, name: &str, req: &Request) -> Response {
        let Some(target) = req.query_param("target") else {
            return Response::error(400, "run needs ?target=");
        };
        // Per-request execution overrides: `?policy=` picks the
        // scheduling policy, `?workers=N` a simulated uniform cluster.
        // Neither is persisted to the session — two runs with different
        // parameters stay independently reproducible.
        let policy = match req.query_param("policy") {
            None => None,
            Some(s) => match s.parse::<hercules::ExecutionPolicy>() {
                Ok(p) => Some(p),
                Err(e) => return Response::error(422, e),
            },
        };
        let workers = match req.query_param("workers") {
            None => None,
            Some(s) => match s.parse::<usize>() {
                Ok(0) => return Response::error(422, "workers wants at least 1"),
                Ok(n) => Some(n),
                Err(e) => return Response::error(400, format!("workers: {e}")),
            },
        };
        let project = match self.project(name) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        let result = project.update(|h| {
            self.session_work();
            let policy = policy.unwrap_or(h.execution_policy());
            let cluster = match workers {
                Some(n) => Some(simtools::cluster::Cluster::uniform(n)),
                None => h.cluster().cloned(),
            };
            h.plan(target)?;
            let report = h.execute_with(target, policy, cluster.as_ref())?;
            Ok::<_, hercules::HerculesError>(run_body(name, &report, h))
        });
        match result {
            Ok(body) => Response::text(200, body),
            Err(e) => Response::error(422, e.to_string()),
        }
    }

    fn record_trace(&self, scenario: &str, req: &Request) -> Response {
        let seed = match parse_num(req, "seed", hercules::trace::CHAOS_TRACE_SEED) {
            Ok(n) => n,
            Err(resp) => return resp,
        };
        // The trace collector is process-global and exclusive; a
        // second recording would block a worker for the whole run, so
        // answer 503 instead.
        if self
            .trace_busy
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Response::error(503, "trace collector busy, retry later");
        }
        let result = hercules::trace::record(scenario, seed);
        self.trace_busy.store(false, Ordering::Release);
        match result {
            Ok(trace) => match trace.validate() {
                Ok(()) => Response::json(
                    200,
                    obs::export::to_chrome(&trace, obs::export::Timebase::Logical),
                ),
                Err(e) => Response::error(500, format!("trace invalid: {e}")),
            },
            Err(e) => Response::error(422, e),
        }
    }
}

/// Parses a trace id: 1–16 hex digits, nonzero (0 means "no trace"
/// and must never correlate anything).
fn parse_trace_id(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if raw.is_empty() || raw.len() > 16 || !raw.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    match u64::from_str_radix(raw, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// `GET /debug/flight[?trace=<hex id>]`: the merged flight-recorder
/// snapshot, optionally restricted to one request's records.
fn debug_flight(req: &Request) -> Response {
    if !Collector::flight_enabled() {
        return Response::error(409, "flight recorder disabled on this server");
    }
    let dump = Collector::flight_dump();
    match req.query_param("trace") {
        None => Response::json(200, dump.to_json()),
        Some(raw) => match parse_trace_id(raw) {
            Some(id) => Response::json(200, dump.filter_trace(id).to_json()),
            None => Response::error(400, "bad ?trace=, want 1-16 hex digits"),
        },
    }
}

/// Appends the trace id and this request's flight tail to a 5xx body.
/// Only server faults are annotated: 2xx/4xx bodies are pinned
/// byte-for-byte by the differential suite and must not change.
fn annotate_fault(response: &mut Response, trace_id: u64) {
    use std::fmt::Write as _;
    let mut tail = format!("\ntrace: {trace_id:016x}\n");
    if Collector::flight_enabled() {
        let dump = Collector::flight_dump().filter_trace(trace_id);
        let mut records: Vec<&obs::FlightRecord> =
            dump.threads.iter().flat_map(|t| &t.records).collect();
        records.sort_by_key(|r| r.mono_ns);
        if !records.is_empty() {
            let skip = records.len().saturating_sub(FAULT_TAIL);
            let _ = writeln!(
                tail,
                "flight tail ({} records, newest last):",
                records.len() - skip
            );
            for r in &records[skip..] {
                let _ = writeln!(tail, "  {:>6}ns {:?} {}", r.mono_ns, r.kind, r.name);
            }
        }
    }
    response.body.extend_from_slice(tail.as_bytes());
}

/// Parses an optional numeric query parameter, or answers 400.
fn parse_num<T: std::str::FromStr>(req: &Request, key: &str, default: T) -> Result<T, Response>
where
    T::Err: std::fmt::Display,
{
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|e| Response::error(400, format!("bad {key:?}: {e}"))),
    }
}

/// Maps registry errors onto transport statuses.
fn workspace_error(e: WorkspaceError) -> Response {
    // A damaged on-disk store is a server fault, but a *diagnosed* one:
    // the body carries the typed corruption report and the remedy,
    // instead of the panic (then connection reset) this used to be.
    if let WorkspaceError::Store(metadata::StoreError::Corruption(report)) = &e {
        return Response::error(
            500,
            format!("store corruption: {report}; run `herc fsck --repair` on the workspace root"),
        );
    }
    let status = match &e {
        WorkspaceError::UnknownProject(_) => 404,
        WorkspaceError::DuplicateProject(_) => 409,
        WorkspaceError::InvalidName(_) => 400,
        WorkspaceError::Hercules(_) => 422,
        WorkspaceError::SessionConfig { .. } | WorkspaceError::Store(_) => 500,
        // `WorkspaceError` is non_exhaustive; future variants are
        // server faults until mapped.
        _ => 500,
    };
    Response::error(status, e.to_string())
}

// ---------------------------------------------------------------------
// Rendering: shared with the differential suite. These are the *only*
// places response bodies are produced from kernel results.
// ---------------------------------------------------------------------

/// The status body: byte-identical to `herc ws status` output.
pub fn status_body(h: &Hercules) -> String {
    let status = h.status();
    format!("{status}variance: {}\n", status.variance())
}

/// The plan body: byte-identical to `herc ws plan` output.
pub fn plan_body(project: &str, target: &str, plan: &SchedulePlan) -> String {
    use std::fmt::Write as _;
    let mut out = format!("proposed schedule for {target:?} in project {project:?}:\n");
    for pa in plan.activities() {
        let _ = writeln!(
            out,
            "  {:<16} [{} .. {}] {} {}",
            pa.activity,
            pa.start,
            pa.start + pa.duration,
            if pa.critical { "*" } else { " " },
            pa.assignee
        );
    }
    let _ = writeln!(out, "proposed finish: day {}", plan.project_finish());
    out
}

/// The replan body: new schedule-instance versions plus the proposed
/// finish.
pub fn replan_body(target: &str, outcome: &ReplanOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "replanned {} activit{} for {target:?}:\n",
        outcome.len(),
        if outcome.len() == 1 { "y" } else { "ies" }
    );
    for (activity, id) in &outcome.replanned {
        let _ = writeln!(out, "  {activity:<16} {id}");
    }
    let _ = writeln!(out, "proposed finish: day {}", outcome.project_finish);
    out
}

/// The run body: the `herc ws run` summary line plus the post-run
/// status report.
pub fn run_body(project: &str, report: &ExecutionReport, h: &Hercules) -> String {
    format!(
        "project {project:?}: executed {} activities in {} runs, finished day {}\n\n{}",
        report.activities().len(),
        report.total_runs(),
        report.finished_at(),
        status_body(h)
    )
}

/// Stable endpoint class for metrics/latency labels.
fn route_class(req: &Request) -> &'static str {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        (_, ["healthz"]) => "healthz",
        (_, ["metrics"]) => "metrics",
        (_, ["debug", "flight"]) => "debug.flight",
        ("GET", ["projects"]) => "projects.list",
        ("POST", ["projects", _]) => "projects.create",
        ("DELETE", ["projects", _]) => "projects.remove",
        (_, ["projects", _, "status"]) => "status",
        (_, ["projects", _, "export"]) => "export",
        (_, ["projects", _, "plan"]) => "plan",
        (_, ["projects", _, "replan"]) => "replan",
        (_, ["projects", _, "run"]) => "run",
        (_, ["trace", ..]) => "trace",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;

    fn request(method: &str, path_q: &str, body: &[u8]) -> Request {
        let raw = format!(
            "{method} {path_q} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(body);
        match crate::http::read_request(&mut std::io::Cursor::new(bytes)) {
            crate::http::ReadOutcome::Request(req) => req,
            other => panic!("test request failed to parse: {other:?}"),
        }
    }

    fn api() -> Api {
        Api::new(Arc::new(Workspace::in_memory()), ApiConfig::default())
    }

    #[test]
    fn healthz_is_unauthenticated() {
        let tokens = TokenRegistry::parse("alice:tok").unwrap();
        let api = Api::new(
            Arc::new(Workspace::in_memory()),
            ApiConfig {
                tokens,
                ..ApiConfig::default()
            },
        );
        let resp = api.handle(&request("GET", "/healthz", b""));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        let health = obs::export::parse_json(&body).expect("healthz is JSON");
        assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(
            health.get("version").and_then(|v| v.as_str()),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert_eq!(
            health.get("schema").and_then(|v| v.as_str()),
            Some(hercules::PROJECT_CONF_MAGIC)
        );
        assert!(health.get("uptime_secs").and_then(|v| v.as_f64()).is_some());
        // …but everything else requires the bearer token, including the
        // flight recorder dump.
        let resp = api.handle(&request("GET", "/projects", b""));
        assert_eq!(resp.status, 401);
        let resp = api.handle(&request("GET", "/debug/flight", b""));
        assert_eq!(resp.status, 401);
    }

    #[test]
    fn trace_ids_are_parsed_echoed_or_generated() {
        assert_eq!(parse_trace_id("00000000deadbeef"), Some(0xdead_beef));
        assert_eq!(parse_trace_id("  ff  "), Some(0xff));
        assert_eq!(parse_trace_id("0"), None, "zero is not a trace id");
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("00000000000000001"), None, "too long");

        let api = api();
        // Client-supplied id echoes back verbatim (zero-padded hex).
        let mut req = request("GET", "/projects", b"");
        req.headers
            .push(("x-herc-trace".to_owned(), "beef".to_owned()));
        let resp = api.handle(&req);
        let echoed = resp
            .extra_headers
            .iter()
            .find(|(name, _)| name == "x-herc-trace")
            .map(|(_, value)| value.as_str());
        assert_eq!(echoed, Some("000000000000beef"));
        // Absent header ⇒ a fresh nonzero id, still echoed.
        let resp = api.handle(&request("GET", "/projects", b""));
        let echoed = resp
            .extra_headers
            .iter()
            .find(|(name, _)| name == "x-herc-trace")
            .map(|(_, value)| value.as_str())
            .expect("generated id echoed");
        assert_eq!(echoed.len(), 16);
        assert_ne!(echoed, "0000000000000000");
    }

    #[test]
    fn fault_bodies_carry_the_trace_id_and_flight_tail() {
        let mut resp = Response::error(500, "store corruption: …");
        annotate_fault(&mut resp, 0xdead_beef);
        let body = String::from_utf8_lossy(&resp.body);
        assert!(body.contains("trace: 00000000deadbeef"), "{body}");
        // 4xx bodies are differential-pinned and must stay untouched:
        // the router only calls annotate_fault for status >= 500.
        let api = api();
        let resp = api.handle(&request("GET", "/nope", b""));
        assert_eq!(resp.status, 404);
        assert!(!String::from_utf8_lossy(&resp.body).contains("trace:"));
    }

    #[test]
    fn project_lifecycle_over_the_api() {
        let api = api();
        let source = examples::circuit_design().to_source();
        let source = format!("schema circuit;\n{source}");
        let resp = api.handle(&request(
            "POST",
            "/projects/alu?team=2&seed=7",
            source.as_bytes(),
        ));
        assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
        // Duplicate create → 409.
        let resp = api.handle(&request("POST", "/projects/alu", source.as_bytes()));
        assert_eq!(resp.status, 409);
        // Listing shows it.
        let resp = api.handle(&request("GET", "/projects", b""));
        assert_eq!(String::from_utf8_lossy(&resp.body), "alu\n");
        // Plan → run → status.
        let resp = api.handle(&request(
            "POST",
            "/projects/alu/plan?target=performance",
            b"",
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let resp = api.handle(&request(
            "POST",
            "/projects/alu/run?target=performance",
            b"",
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let resp = api.handle(&request("GET", "/projects/alu/status", b""));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("variance: "));
        // Export dumps the db.
        let resp = api.handle(&request("GET", "/projects/alu/export", b""));
        assert!(String::from_utf8_lossy(&resp.body).starts_with("metadata-db v1"));
        // Remove, then 404.
        let resp = api.handle(&request("DELETE", "/projects/alu", b""));
        assert_eq!(resp.status, 200);
        let resp = api.handle(&request("GET", "/projects/alu/status", b""));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn kernel_errors_map_to_422() {
        let api = api();
        let source = examples::circuit_design().to_source();
        let source = format!("schema circuit;\n{source}");
        api.handle(&request("POST", "/projects/alu", source.as_bytes()));
        let resp = api.handle(&request("POST", "/projects/alu/plan?target=nonsense", b""));
        assert_eq!(resp.status, 422);
        let resp = api.handle(&request("POST", "/projects/alu/plan", b""));
        assert_eq!(resp.status, 400, "missing target is a request error");
    }

    #[test]
    fn bad_schema_bodies_are_422_not_500() {
        let api = api();
        let resp = api.handle(&request("POST", "/projects/alu", b"entity gibberish {{{"));
        assert_eq!(resp.status, 422);
        let resp = api.handle(&request("POST", "/projects/alu", b""));
        assert_eq!(resp.status, 422);
    }

    #[test]
    fn unknown_routes_and_verbs() {
        let api = api();
        assert_eq!(api.handle(&request("GET", "/nope", b"")).status, 404);
        assert_eq!(api.handle(&request("PATCH", "/projects", b"")).status, 405);
        assert_eq!(api.handle(&request("POST", "/healthz", b"")).status, 405);
    }

    #[test]
    fn corrupt_store_on_lazy_reopen_is_a_typed_500() {
        let root = std::env::temp_dir().join(format!(
            "schedflow-serve-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        {
            let api = Api::new(Arc::new(Workspace::persistent(&root)), ApiConfig::default());
            let source = examples::circuit_design().to_source();
            let source = format!("schema circuit;\n{source}");
            let resp = api.handle(&request("POST", "/projects/alu?seed=7", source.as_bytes()));
            assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
            let resp = api.handle(&request(
                "POST",
                "/projects/alu/plan?target=performance",
                b"",
            ));
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        }
        // Damage an interior tail record, then serve the root afresh:
        // the lazy reopen must answer a diagnosed 500, not panic the
        // worker (which the client would see as a connection reset).
        let tail = root.join("alu/tail-0.journal");
        let text = std::fs::read_to_string(&tail).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        assert!(lines.len() > 3, "need interior records: {text}");
        lines[2] = lines[2].chars().rev().collect();
        std::fs::write(&tail, lines.join("\n") + "\n").unwrap();
        let api = Api::new(Arc::new(Workspace::persistent(&root)), ApiConfig::default());
        let resp = api.handle(&request("GET", "/projects/alu/status", b""));
        assert_eq!(resp.status, 500);
        let body = String::from_utf8_lossy(&resp.body);
        assert!(body.contains("store corruption"), "body: {body}");
        assert!(
            body.contains("fsck"),
            "body should point at the remedy: {body}"
        );
        // The server is still alive and serving other routes.
        assert_eq!(api.handle(&request("GET", "/projects", b"")).status, 200);
        let _ = std::fs::remove_dir_all(&root);
    }
}
