use std::collections::HashMap;

use metadata::{EntityInstanceId, ScheduleInstanceId};
use schedule::WorkDays;
use simtools::cluster::Cluster;
use simtools::{InjectedFault, ToolInvocation};

use crate::error::HerculesError;
use crate::manager::Hercules;
use crate::policy::{ExecutionPolicy, SchedulingPolicy};

/// Hard cap on iterations per activity, so a pathological tool model
/// cannot spin forever. Real tool models converge far earlier. Hitting
/// the cap is an error ([`HerculesError::IterationLimit`]), not a
/// silent non-convergence.
pub(crate) const ITERATION_CAP: u32 = 16;

/// The record of executing one activity: its runs, dates, and final
/// instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityExecution {
    /// The executed activity.
    pub activity: String,
    /// The designer who ran it.
    pub assignee: String,
    /// When the first run started.
    pub started: WorkDays,
    /// When the final run finished.
    pub finished: WorkDays,
    /// How many runs (iterations) the activity needed.
    pub iterations: u32,
    /// Whether the final run met the design goals.
    pub converged: bool,
    /// The final entity instance (the one linked to the plan).
    pub final_instance: EntityInstanceId,
    /// Failed attempts (transient crashes, hangs) absorbed by the retry
    /// policy before the activity completed.
    pub fault_attempts: u32,
    /// Simulated time those faults burned (crash fractions, timeouts,
    /// backoffs).
    pub fault_time: WorkDays,
}

impl ActivityExecution {
    /// Elapsed activity duration (first start to final finish).
    pub fn duration(&self) -> WorkDays {
        self.finished.saturating_sub(self.started)
    }
}

/// The record of an activity that exhausted the retry policy and was
/// declared *blocked*: its tool kept failing (persistently broken, or
/// simply unlucky past the budget), so the session degraded around it
/// instead of aborting.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedActivity {
    /// The blocked activity.
    pub activity: String,
    /// The designer who was attempting it.
    pub assignee: String,
    /// Failed attempts (transient or hang) before giving up.
    pub attempts: u32,
    /// Simulated time burned on faults before giving up.
    pub fault_time: WorkDays,
    /// Runs that *were* recorded before blocking (e.g. corrupt-output
    /// runs, which leave auditable metadata).
    pub runs_recorded: u32,
}

/// The record of executing a task tree, including any degradation:
/// activities blocked by injected faults and downstream activities
/// skipped for missing inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    pub(crate) target: String,
    pub(crate) activities: Vec<ActivityExecution>,
    pub(crate) blocked: Vec<BlockedActivity>,
    pub(crate) skipped: Vec<String>,
    pub(crate) replanned: Vec<(String, ScheduleInstanceId)>,
    pub(crate) finished_at: WorkDays,
}

impl ExecutionReport {
    /// The executed target.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Per-activity execution records, in dispatch order — dependency
    /// order under the default [`Fifo`](crate::policy::Fifo) policy.
    pub fn activities(&self) -> &[ActivityExecution] {
        &self.activities
    }

    /// The record for `activity`, if executed.
    pub fn activity(&self, name: &str) -> Option<&ActivityExecution> {
        self.activities.iter().find(|a| a.activity == name)
    }

    /// Activities that exhausted the retry policy this session, in
    /// dispatch order.
    pub fn blocked(&self) -> &[BlockedActivity] {
        &self.blocked
    }

    /// The blocked record for `activity`, if blocked.
    pub fn blocked_activity(&self, name: &str) -> Option<&BlockedActivity> {
        self.blocked.iter().find(|b| b.activity == name)
    }

    /// Activities skipped because an upstream activity was blocked or
    /// skipped, leaving an input missing.
    pub fn skipped(&self) -> &[String] {
        &self.skipped
    }

    /// Schedule instances created by the automatic degraded replan
    /// that follows a blocking failure (empty when nothing blocked or
    /// no plan existed).
    pub fn replanned(&self) -> &[(String, ScheduleInstanceId)] {
        &self.replanned
    }

    /// Whether the session degraded: something was blocked or skipped.
    pub fn is_degraded(&self) -> bool {
        !self.blocked.is_empty() || !self.skipped.is_empty()
    }

    /// When the last activity (or fault-handling) finished — the
    /// project clock afterwards.
    pub fn finished_at(&self) -> WorkDays {
        self.finished_at
    }

    /// Whether every attempted activity converged *and* nothing was
    /// blocked or skipped.
    pub fn all_converged(&self) -> bool {
        !self.is_degraded() && self.activities.iter().all(|a| a.converged)
    }

    /// Total number of tool runs across all activities (including runs
    /// recorded by activities that later blocked).
    pub fn total_runs(&self) -> u32 {
        self.activities.iter().map(|a| a.iterations).sum::<u32>()
            + self.blocked.iter().map(|b| b.runs_recorded).sum::<u32>()
    }

    /// Total failed attempts absorbed by the retry policy.
    pub fn total_fault_attempts(&self) -> u32 {
        self.activities
            .iter()
            .map(|a| a.fault_attempts)
            .sum::<u32>()
            + self.blocked.iter().map(|b| b.attempts).sum::<u32>()
    }
}

impl Hercules {
    /// Executes the task tree for `target`: the post-order traversal of
    /// §IV-A, this time running tools.
    ///
    /// For each activity (inputs before outputs):
    ///
    /// 1. wait for its input instances and a free worker — by default
    ///    the assignee's designer slot (one activity at a time per
    ///    designer, a deterministic list schedule);
    /// 2. iterate tool runs until the result converges ("a given
    ///    activity may need to be run several times before the design
    ///    goals are achieved") — every run creates a [`metadata::Run`]
    ///    and a new versioned entity instance;
    /// 3. on convergence, **link** the final instance to the activity's
    ///    current schedule instance, which is how actual dates reach
    ///    the plan (§III's link between schedule and actual flow data).
    ///
    /// Primary inputs (e.g. `stimuli`) are supplied automatically at
    /// the current clock. Activities whose current plan is already
    /// complete are skipped (their final instance is reused), so
    /// re-executing after replanning only redoes open work.
    ///
    /// Dispatch runs through the policy engine under the manager's
    /// configured [`ExecutionPolicy`] and simulated
    /// [`Cluster`](simtools::cluster::Cluster) (see
    /// [`set_execution_policy`](Hercules::set_execution_policy) and
    /// [`set_cluster`](Hercules::set_cluster)). The defaults — the
    /// [`Fifo`](crate::policy::Fifo) policy on the implicit
    /// one-worker-per-designer cluster — reproduce the original serial
    /// topo-order executor exactly, report and store mutations alike
    /// ([`execute_serial_reference`](Hercules::execute_serial_reference)
    /// is the pinned oracle).
    ///
    /// # Failure semantics
    ///
    /// When a fault plan is installed
    /// ([`set_fault_plan`](Hercules::set_fault_plan)), tool attempts
    /// may fail. The [`RetryPolicy`](crate::RetryPolicy) governs the
    /// response:
    ///
    /// * **Transient** crashes charge the elapsed fraction of the run
    ///   plus a capped exponential backoff, then retry.
    /// * **Hangs** charge the policy's timeout plus backoff, then
    ///   retry.
    /// * **Corrupt output** is recorded like any run (the designer only
    ///   notices afterwards) but never converges, costing an iteration.
    /// * When the attempt or time budget is exhausted, the activity is
    ///   declared **blocked** ([`ExecutionReport::blocked`]): no
    ///   result is published, downstream activities missing inputs are
    ///   **skipped**, and — if plans exist — the open scope is
    ///   automatically replanned through the incremental engine with
    ///   the blocked activities' burned time folded into their
    ///   estimates ([`ExecutionReport::replanned`]). The session never
    ///   aborts on injected faults.
    ///
    /// # Errors
    ///
    /// * [`HerculesError::UnknownTarget`] — `target` names nothing.
    /// * [`HerculesError::UnknownActivity`] — the task tree references
    ///   an activity absent from the schema (cannot happen through this
    ///   API).
    /// * [`HerculesError::IterationLimit`] — a tool model produced 16
    ///   (the iteration cap) non-converged runs: a pathological model,
    ///   distinct from injected faults (which block instead).
    /// * [`HerculesError::Metadata`] — database integrity failure,
    ///   including an armed crash injection firing mid-execution.
    pub fn execute(&mut self, target: &str) -> Result<ExecutionReport, HerculesError> {
        let policy = self.execution_policy;
        let cluster = self.cluster.clone();
        self.execute_with(target, policy, cluster.as_ref())
    }

    /// [`execute`](Hercules::execute) under an explicit policy and
    /// cluster, overriding the manager's configured defaults for this
    /// call only. `cluster = None` selects the implicit
    /// one-worker-per-designer substrate.
    ///
    /// # Errors
    ///
    /// As for [`execute`](Hercules::execute).
    pub fn execute_with(
        &mut self,
        target: &str,
        policy: ExecutionPolicy,
        cluster: Option<&Cluster>,
    ) -> Result<ExecutionReport, HerculesError> {
        let mut policy = policy.build();
        self.run_policy_engine(target, policy.as_mut(), cluster)
    }

    /// [`execute`](Hercules::execute) under a caller-supplied
    /// [`SchedulingPolicy`] implementation — the extension point for
    /// policies beyond the built-in four. The policy must be
    /// deterministic for replay to reproduce live execution.
    ///
    /// # Errors
    ///
    /// As for [`execute`](Hercules::execute).
    pub fn execute_with_policy(
        &mut self,
        target: &str,
        policy: &mut dyn SchedulingPolicy,
        cluster: Option<&Cluster>,
    ) -> Result<ExecutionReport, HerculesError> {
        self.run_policy_engine(target, policy, cluster)
    }

    /// Seeds the class → (availability time, instance) map execution
    /// and forecasting start from: supplied primary inputs plus the
    /// linked results of already-completed plans in `tree`'s scope.
    pub(crate) fn seed_data_ready(
        &self,
        tree: &crate::task::TaskTree,
    ) -> HashMap<String, (WorkDays, EntityInstanceId)> {
        let mut data_ready: HashMap<String, (WorkDays, EntityInstanceId)> = HashMap::new();
        for (class, &inst) in &self.supplied {
            data_ready.insert(
                class.clone(),
                (self.store.db().entity_instance(inst).created_at(), inst),
            );
        }
        // Completed activities contribute their linked instances.
        for activity in tree.activities() {
            if let Some(plan) = self.store.db().current_plan(activity) {
                if let Some(inst) = plan.linked_entity() {
                    let at = self.store.db().entity_instance(inst).created_at();
                    data_ready.insert(tree.output_of(activity).to_owned(), (at, inst));
                }
            }
        }
        data_ready
    }

    /// The original single-pass serial executor: one linear walk over
    /// the task tree in dependency order, one activity at a time per
    /// designer. Kept as the *reference implementation* the policy
    /// engine is differentially pinned against — [`Fifo`] on the
    /// implicit cluster must reproduce this method's report, store
    /// mutations, and final clock exactly — and as the baseline for
    /// the `exec_policies` bench gate.
    ///
    /// [`Fifo`]: crate::policy::Fifo
    ///
    /// # Errors
    ///
    /// As for [`execute`](Hercules::execute).
    pub fn execute_serial_reference(
        &mut self,
        target: &str,
    ) -> Result<ExecutionReport, HerculesError> {
        obs::Collector::set_sim_days(self.clock.days());
        let mut exec_span = obs::span!("hercules.execute", target = target);
        let tree = self.extract_task_tree(target)?;
        // Supply primary inputs up front.
        for class in tree.primary_inputs() {
            let designer = self.team.designer(0).to_owned();
            self.supply_primary_input(class, &designer)?;
        }
        // data_ready: class -> (time available, instance).
        let mut data_ready = self.seed_data_ready(&tree);
        let mut designer_free: HashMap<String, WorkDays> = self
            .team
            .iter()
            .map(|d| (d.to_owned(), self.clock))
            .collect();

        let injector = self.fault_injector.clone();
        let policy = self.retry_policy;
        let mut executions = Vec::new();
        let mut blocked_rows: Vec<BlockedActivity> = Vec::new();
        let mut skipped: Vec<String> = Vec::new();
        let mut newly_blocked: Vec<(String, WorkDays)> = Vec::new();
        let mut finished_at = self.clock;
        for activity in tree.activities() {
            // Skip work already declared complete.
            if self
                .db()
                .current_plan(activity)
                .is_some_and(|p| p.is_complete())
            {
                continue;
            }
            // Fallback assignment keys on the activity's *name*, not
            // its position in the tree: the same activity always lands
            // on the same designer regardless of scope or policy.
            let assignee = self
                .db()
                .current_plan(activity)
                .and_then(|p| p.assignees().first().cloned())
                .unwrap_or_else(|| self.team.assignee_for(activity).to_owned());
            // Ready when all inputs exist. An input can be missing only
            // when its producer blocked or was skipped upstream — then
            // this activity is skipped too (degradation, not an error).
            let mut ready = self.clock;
            let mut inputs: Vec<EntityInstanceId> = Vec::new();
            let mut input_bytes = 0u64;
            let mut inputs_missing = false;
            for class in tree.inputs_of(activity) {
                let Some(&(at, inst)) = data_ready.get(class) else {
                    inputs_missing = true;
                    break;
                };
                ready = ready.max(at);
                input_bytes += self
                    .db()
                    .data_object(self.store.db().entity_instance(inst).data())
                    .size() as u64;
                inputs.push(inst);
            }
            if inputs_missing {
                obs::event!("execute.skipped", activity = activity.as_str());
                skipped.push(activity.clone());
                continue;
            }
            let designer_at = designer_free.get(&assignee).copied().unwrap_or(self.clock);
            let start = ready.max(designer_at);
            obs::Collector::set_sim_days(start.days());
            let mut act_span = obs::span!(
                "execute.activity",
                activity = activity.as_str(),
                assignee = assignee.as_str(),
            );

            // Iterate runs until convergence, absorbing injected faults
            // through the retry policy.
            let rule = self
                .schema
                .rule(activity)
                .ok_or_else(|| HerculesError::UnknownActivity(activity.to_owned()))?;
            let tool_name = rule.tool().to_owned();
            let output_class = tree.output_of(activity).to_owned();
            let mut t = start;
            let mut iterations = 0u32;
            let mut attempts = 0u32;
            let mut fault_time = WorkDays::ZERO;
            let mut converged = false;
            let mut blocked = false;
            let mut final_instance = None;
            let prior_runs = self.store.db().runs_of(activity).len() as u32;
            while iterations < ITERATION_CAP {
                let req = ToolInvocation {
                    input_bytes,
                    iteration: prior_runs + iterations + 1,
                    seed: self.seed,
                };
                let attempted =
                    self.tools
                        .invoke_with_faults(&tool_name, &req, &injector, attempts + 1);
                match attempted.fault {
                    // A clean run, or one whose output was silently
                    // corrupted: both finish and leave auditable
                    // metadata; only the clean one can converge.
                    None | Some(InjectedFault::CorruptOutput) => {
                        iterations += 1;
                        let run = self.store.begin_run(activity, &assignee, t)?;
                        let end = t + WorkDays::new(attempted.outcome.duration_days);
                        let data = self.store.store_data(
                            &format!("{output_class}.v{}", prior_runs + iterations),
                            attempted.outcome.output,
                        );
                        let inst = self
                            .store
                            .finish_run(run, &output_class, data, end, &inputs)?;
                        t = end;
                        obs::Collector::set_sim_days(t.days());
                        obs::event!(
                            "execute.run",
                            activity = activity.as_str(),
                            iteration = iterations,
                            converged = attempted.outcome.converged,
                            corrupt = attempted.fault.is_some(),
                        );
                        final_instance = Some(inst);
                        if attempted.outcome.converged {
                            converged = true;
                            break;
                        }
                    }
                    // The run died partway: charge the elapsed fraction
                    // plus backoff, then retry (no metadata recorded —
                    // the tool never finished).
                    Some(InjectedFault::Transient) => {
                        attempts += 1;
                        let frac = injector.crash_fraction(&tool_name, &req, attempts);
                        let burned = WorkDays::new(attempted.outcome.duration_days * frac)
                            + policy.backoff(attempts);
                        fault_time += burned;
                        t += burned;
                        obs::Collector::set_sim_days(t.days());
                        obs::event!(
                            "execute.retry",
                            activity = activity.as_str(),
                            attempt = attempts,
                            burned_days = burned.days(),
                        );
                        if attempts >= policy.max_attempts
                            || fault_time.days() > policy.activity_budget.days()
                        {
                            blocked = true;
                            break;
                        }
                    }
                    // The run hung: kill it at the timeout, backoff,
                    // retry.
                    Some(InjectedFault::Hang) => {
                        attempts += 1;
                        let burned = policy.timeout + policy.backoff(attempts);
                        fault_time += burned;
                        t += burned;
                        obs::Collector::set_sim_days(t.days());
                        obs::event!(
                            "execute.timeout",
                            activity = activity.as_str(),
                            attempt = attempts,
                            burned_days = burned.days(),
                        );
                        if attempts >= policy.max_attempts
                            || fault_time.days() > policy.activity_budget.days()
                        {
                            blocked = true;
                            break;
                        }
                    }
                }
            }
            if blocked {
                obs::event!(
                    "execute.blocked",
                    activity = activity.as_str(),
                    attempts = attempts,
                    fault_days = fault_time.days(),
                );
                act_span.record("blocked", true);
                self.blocked.insert(activity.clone());
                newly_blocked.push((activity.clone(), fault_time));
                blocked_rows.push(BlockedActivity {
                    activity: activity.clone(),
                    assignee: assignee.clone(),
                    attempts,
                    fault_time,
                    runs_recorded: iterations,
                });
                designer_free.insert(assignee, t);
                if t.days() > finished_at.days() {
                    finished_at = t;
                }
                continue;
            }
            let final_instance = match final_instance {
                Some(inst) if converged => inst,
                // The loop can only exit unconverged-and-unblocked by
                // exhausting the iteration cap.
                _ => {
                    return Err(HerculesError::IterationLimit {
                        activity: activity.clone(),
                        cap: ITERATION_CAP,
                    })
                }
            };
            // The activity recovered (or never faulted): it is not
            // blocked, whatever earlier sessions concluded.
            self.blocked.remove(activity);
            // Designer declares completion: link plan to final result.
            if let Some(plan) = self.store.db().current_plan(activity) {
                let sc = plan.id();
                self.store.link_completion(sc, final_instance)?;
            }
            data_ready.insert(output_class, (t, final_instance));
            designer_free.insert(assignee.clone(), t);
            if t.days() > finished_at.days() {
                finished_at = t;
            }
            obs::Collector::set_sim_days(t.days());
            act_span.record("iterations", iterations);
            act_span.record("fault_attempts", attempts);
            act_span.record("converged", converged);
            executions.push(ActivityExecution {
                activity: activity.clone(),
                assignee,
                started: start,
                finished: t,
                iterations,
                converged,
                final_instance,
                fault_attempts: attempts,
                fault_time,
            });
        }
        self.clock = finished_at;
        // Graceful degradation: blocking failures trigger an automatic
        // replan of the open scope. The blocked activities' burned time
        // is folded into their duration estimates, so exactly they are
        // dirty and the incremental CPM engine recomputes only their
        // downstream cone.
        let mut replanned = Vec::new();
        if !newly_blocked.is_empty() {
            for (name, burned) in &newly_blocked {
                let base = self.duration_estimate(name)?;
                self.estimates.insert(name.clone(), base + *burned);
            }
            let any_planned = tree
                .activities()
                .iter()
                .any(|a| self.store.db().current_plan(a).is_some());
            if any_planned {
                let completed: Vec<String> = tree
                    .activities()
                    .iter()
                    .filter(|a| {
                        self.store
                            .db()
                            .current_plan(a)
                            .is_some_and(|p| p.is_complete())
                    })
                    .cloned()
                    .collect();
                let plan = self.plan_scope(target, &completed)?;
                replanned = plan
                    .activities()
                    .iter()
                    .map(|pa| (pa.activity.clone(), pa.schedule))
                    .collect();
            }
        }
        obs::Collector::set_sim_days(finished_at.days());
        exec_span.record("executed", executions.len());
        exec_span.record("blocked", blocked_rows.len());
        exec_span.record("skipped", skipped.len());
        exec_span.record("replanned", replanned.len());
        Ok(ExecutionReport {
            target: target.to_owned(),
            activities: executions,
            blocked: blocked_rows,
            skipped,
            replanned,
            finished_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, FaultPlan, ToolLibrary};

    fn manager(seed: u64) -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            seed,
        )
    }

    #[test]
    fn execute_produces_instances_and_links() {
        let mut h = manager(42);
        h.plan("performance").unwrap();
        let report = h.execute("performance").unwrap();
        assert_eq!(report.target(), "performance");
        assert_eq!(report.activities().len(), 2);
        assert!(report.all_converged());
        assert!(!report.is_degraded());
        // Every activity's plan is now linked to its final instance.
        for activity in ["Create", "Simulate"] {
            let plan = h.db().current_plan(activity).unwrap();
            assert!(plan.is_complete());
            let exec = report.activity(activity).unwrap();
            assert_eq!(plan.linked_entity(), Some(exec.final_instance));
        }
        // Runs recorded one per iteration.
        assert_eq!(h.db().runs().len() as u32, report.total_runs());
        assert_eq!(h.clock(), report.finished_at());
    }

    #[test]
    fn execute_without_plan_still_works() {
        let mut h = manager(42);
        let report = h.execute("performance").unwrap();
        assert!(report.all_converged());
        // No plans, so nothing to link — but instances exist.
        assert!(h.db().entity_container("performance").unwrap().len() == 1);
        assert!(h.db().current_plan("Create").is_none());
    }

    #[test]
    fn execution_respects_dependencies() {
        let mut h = manager(7);
        h.plan("performance").unwrap();
        let report = h.execute("performance").unwrap();
        let create = report.activity("Create").unwrap();
        let simulate = report.activity("Simulate").unwrap();
        assert!(simulate.started.days() >= create.finished.days() - 1e-9);
        assert!(simulate.duration().days() > 0.0);
    }

    #[test]
    fn iterations_create_versions() {
        // Scan seeds for a run where Create needs more than one
        // iteration (first-pass rate is 50%, so this is common).
        let seed = (0..50)
            .find(|&s| {
                let mut h = manager(s);
                let r = h.execute("netlist").unwrap();
                r.activity("Create").unwrap().iterations > 1
            })
            .expect("some seed iterates");
        let mut h = manager(seed);
        let report = h.execute("netlist").unwrap();
        let iters = report.activity("Create").unwrap().iterations;
        assert!(iters > 1);
        assert_eq!(
            h.db().entity_container("netlist").unwrap().len() as u32,
            iters
        );
        // The linked instance is the LAST version.
        let final_id = report.activity("Create").unwrap().final_instance;
        assert_eq!(h.db().entity_instance(final_id).version(), iters);
    }

    #[test]
    fn reexecution_skips_completed_work() {
        let mut h = manager(42);
        h.plan("performance").unwrap();
        let first = h.execute("performance").unwrap();
        let runs_before = h.db().runs().len();
        // Everything complete: executing again does nothing.
        let second = h.execute("performance").unwrap();
        assert!(second.activities().is_empty());
        assert_eq!(h.db().runs().len(), runs_before);
        let _ = first;
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let run = |seed| {
            let mut h = manager(seed);
            h.plan("performance").unwrap();
            let r = h.execute("performance").unwrap();
            (r.finished_at(), r.total_runs())
        };
        assert_eq!(run(9), run(9));
        // Different seeds generally differ in at least one aspect.
        let (f1, n1) = run(1);
        let (f2, n2) = run(2);
        assert!(f1 != f2 || n1 != n2);
    }

    #[test]
    fn actuals_flow_into_schedule_space() {
        let mut h = manager(42);
        h.plan("performance").unwrap();
        let report = h.execute("performance").unwrap();
        let exec = report.activity("Create").unwrap();
        // Metadata stores timestamps at milliday resolution, so compare
        // within that tolerance.
        let start = h.db().actual_start("Create").unwrap();
        let finish = h.db().actual_finish("Create").unwrap();
        assert!((start.days() - exec.started.days()).abs() < 1e-3);
        assert!((finish.days() - exec.finished.days()).abs() < 1e-3);
    }

    #[test]
    fn primary_inputs_supplied_automatically() {
        let mut h = manager(42);
        h.execute("performance").unwrap();
        assert_eq!(h.db().entity_container("stimuli").unwrap().len(), 1);
    }

    #[test]
    fn iteration_cap_is_a_typed_error() {
        // A tool that never passes is a pathological *model*, not an
        // injected fault: execution reports it as an error instead of
        // silently publishing non-converged data downstream.
        let mut tools = ToolLibrary::new();
        tools.add(
            simtools::ToolModel::new("netlist_editor", 1.0)
                .with_first_pass_rate(0.0)
                .with_max_iterations(u32::MAX),
        );
        tools.add(simtools::ToolModel::new("simulator", 1.0));
        let mut h = Hercules::new(examples::circuit_design(), tools, Team::of_size(1), 3);
        h.plan("netlist").unwrap();
        let err = h.execute("netlist").unwrap_err();
        assert_eq!(
            err,
            HerculesError::IterationLimit {
                activity: "Create".into(),
                cap: ITERATION_CAP,
            }
        );
        assert!(err.to_string().contains("Create"));
        // Every iteration before the cap still left auditable
        // metadata...
        assert_eq!(
            h.db().entity_container("netlist").unwrap().len(),
            ITERATION_CAP as usize
        );
        // ...but the designer never declared completion.
        assert!(!h.db().current_plan("Create").unwrap().is_complete());
        assert_eq!(h.db().actual_finish("Create"), None);
    }

    #[test]
    fn broken_tool_blocks_activity_and_replans_downstream() {
        let mut h = manager(42);
        h.plan("performance").unwrap();
        let v1_create = h.db().current_plan("Create").unwrap().version();
        h.set_fault_plan(FaultPlan::breaking_tool("netlist_editor"));
        let session = obs::Collector::session();
        let report = h.execute("performance").unwrap();
        let trace = session.finish();
        // Create blocked, Simulate skipped (its netlist never
        // appeared); the session did NOT abort.
        assert!(report.is_degraded());
        assert!(!report.all_converged());
        let b = report.blocked_activity("Create").unwrap();
        assert_eq!(b.attempts, h.retry_policy().max_attempts);
        assert!(b.fault_time.days() > 0.0);
        assert_eq!(b.runs_recorded, 0, "broken tool never finished a run");
        assert_eq!(report.skipped(), ["Simulate".to_owned()]);
        assert!(report.activities().is_empty());
        assert!(h.is_blocked("Create"));
        assert_eq!(h.blocked_activities(), ["Create"]);
        // No completion links, no published netlist.
        assert!(!h.db().current_plan("Create").unwrap().is_complete());
        assert_eq!(h.db().entity_container("netlist").unwrap().len(), 0);
        // The degraded replan created new schedule versions for the
        // open scope...
        assert_eq!(report.replanned().len(), 2);
        assert!(h.db().current_plan("Create").unwrap().version() > v1_create);
        // ...served incrementally: only the blocked activity's
        // estimate moved.
        let stats = trace
            .spans()
            .into_iter()
            .rfind(|s| s.name == "hercules.plan" && s.lane == 0)
            .expect("degraded replan ran a planning pass");
        assert_eq!(stats.arg("cache_hit"), Some(&obs::ArgValue::Bool(true)));
        assert_eq!(stats.arg("dirty"), Some(&obs::ArgValue::U64(1)));
        // The new plan accounts for the burned fault time: it starts
        // no earlier than the clock after the faults.
        let new_plan = h.db().current_plan("Create").unwrap();
        assert!(new_plan.planned_start().days() >= report.finished_at().days() - 1e-9);
    }

    #[test]
    fn repaired_tool_unblocks_on_reexecution() {
        let mut h = manager(42);
        h.plan("performance").unwrap();
        h.set_fault_plan(FaultPlan::breaking_tool("netlist_editor"));
        let degraded = h.execute("performance").unwrap();
        assert!(h.is_blocked("Create"));
        assert!(degraded.is_degraded());
        // The operator repairs the tool and retries.
        h.set_fault_plan(FaultPlan::none());
        let report = h.execute("performance").unwrap();
        assert!(report.all_converged());
        assert!(!h.is_blocked("Create"));
        assert!(h.blocked_activities().is_empty());
        assert!(h.db().current_plan("Create").unwrap().is_complete());
        assert!(h.db().current_plan("Simulate").unwrap().is_complete());
    }

    #[test]
    fn mid_flow_block_keeps_independent_branches_running() {
        // Break the synthesizer in the ASIC flow: the RTL branch
        // (CaptureSpec, WriteRtl, VerifyRtl) still executes; the
        // physical branch is skipped transitively.
        let mut h = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            11,
        );
        h.plan("signoff_report").unwrap();
        h.set_fault_plan(FaultPlan::breaking_tool("synthesizer"));
        let report = h.execute("signoff_report").unwrap();
        for done in ["CaptureSpec", "WriteRtl", "VerifyRtl"] {
            assert!(report.activity(done).is_some(), "{done} should run");
            assert!(h.db().current_plan(done).unwrap().is_complete());
        }
        assert!(report.blocked_activity("Synthesize").is_some());
        for skip in ["Floorplan", "Place", "Cts", "Route", "Signoff"] {
            assert!(
                report.skipped().contains(&skip.to_owned()),
                "{skip} should be skipped"
            );
        }
        // Degraded replan reversions the open scope only.
        assert!(!report.replanned().is_empty());
        assert!(report
            .replanned()
            .iter()
            .all(|(n, _)| n != "CaptureSpec" && n != "WriteRtl" && n != "VerifyRtl"));
    }

    #[test]
    fn transient_faults_retry_and_still_converge() {
        // A transient-only plan: execution absorbs the crashes via the
        // retry policy and still completes, just later.
        let baseline = {
            let mut h = manager(5);
            h.plan("performance").unwrap();
            h.execute("performance").unwrap().finished_at()
        };
        // Find a fault seed that actually fires at least one fault.
        let fired = (0..200u64)
            .find_map(|fs| {
                let mut h = manager(5);
                h.plan("performance").unwrap();
                h.set_fault_plan(
                    FaultPlan::seeded(fs)
                        .with_persistent_rate(0.0)
                        .with_corrupt_rate(0.0)
                        .with_hang_rate(0.0),
                );
                let r = h.execute("performance").unwrap();
                (r.total_fault_attempts() > 0 && !r.is_degraded()).then_some((h, r))
            })
            .expect("some fault seed fires a transient");
        let (h, report) = fired;
        assert!(report.all_converged());
        assert!(h.blocked_activities().is_empty());
        // The faults cost simulated time.
        assert!(report.finished_at().days() > baseline.days());
        let burned: f64 = report
            .activities()
            .iter()
            .map(|a| a.fault_time.days())
            .sum();
        assert!(burned > 0.0);
    }

    #[test]
    fn faulted_execution_is_deterministic() {
        let run = || {
            let mut h = manager(9);
            h.plan("performance").unwrap();
            h.set_fault_plan(FaultPlan::seeded(3));
            h.execute("performance").unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corrupt_output_costs_an_iteration() {
        // Force corruption on every attempt of the netlist editor's
        // first iterations: runs are recorded (audit trail) but never
        // converge until... they never converge cleanly, so use a rate
        // that eventually lets a clean run through.
        let fired = (0..400u64).find_map(|fs| {
            let mut h = manager(5);
            h.set_fault_plan(
                FaultPlan::seeded(fs)
                    .with_persistent_rate(0.0)
                    .with_transient_rate(0.0)
                    .with_hang_rate(0.0)
                    .with_corrupt_rate(0.35),
            );
            let r = h.execute("netlist").unwrap();
            let clean = {
                let mut h2 = manager(5);
                h2.execute("netlist").unwrap()
            };
            let exec = r.activity("Create").unwrap().clone();
            let clean_exec = clean.activity("Create").unwrap().clone();
            (exec.iterations > clean_exec.iterations).then_some((h, exec))
        });
        let (h, exec) = fired.expect("some seed corrupts a run");
        assert!(exec.converged);
        // Every iteration, corrupt or clean, left a versioned instance.
        assert_eq!(
            h.db().entity_container("netlist").unwrap().len() as u32,
            exec.iterations
        );
    }

    #[test]
    fn asic_flow_executes_end_to_end() {
        let mut h = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            11,
        );
        h.plan("signoff_report").unwrap();
        let report = h.execute("signoff_report").unwrap();
        assert_eq!(report.activities().len(), 9);
        assert!(report.all_converged());
        assert_eq!(h.db().completed_activities().len(), 9);
    }

    /// Differential pin: the policy engine under the default Fifo
    /// policy on the implicit cluster must reproduce the serial
    /// reference executor exactly — report, database, and clock — for
    /// clean, faulted, degraded, and unplanned sessions alike.
    #[test]
    fn default_execute_matches_serial_reference_differentially() {
        let scenarios: Vec<(&str, Hercules, &str)> = vec![
            (
                "circuit clean",
                {
                    let mut h = manager(42);
                    h.plan("performance").unwrap();
                    h
                },
                "performance",
            ),
            (
                "circuit faulted",
                {
                    let mut h = manager(9);
                    h.plan("performance").unwrap();
                    h.set_fault_plan(FaultPlan::seeded(3));
                    h
                },
                "performance",
            ),
            (
                "asic degraded",
                {
                    let mut h = Hercules::new(
                        examples::asic_flow(),
                        ToolLibrary::standard(),
                        Team::of_size(3),
                        11,
                    );
                    h.plan("signoff_report").unwrap();
                    h.set_fault_plan(FaultPlan::breaking_tool("synthesizer"));
                    h
                },
                "signoff_report",
            ),
            (
                "asic unplanned",
                {
                    Hercules::new(
                        examples::asic_flow(),
                        ToolLibrary::standard(),
                        Team::of_size(3),
                        5,
                    )
                },
                "signoff_report",
            ),
            (
                "pipeline faulted",
                {
                    let mut h = Hercules::new(
                        examples::pipeline(5),
                        ToolLibrary::standard(),
                        Team::of_size(2),
                        2,
                    );
                    h.plan("d5").unwrap();
                    h.set_fault_plan(FaultPlan::seeded(17).with_persistent_rate(0.25));
                    h
                },
                "d5",
            ),
        ];
        for (label, h, target) in scenarios {
            let mut engine = h.clone();
            let mut serial = h;
            let re = engine.execute(target).unwrap();
            let rs = serial.execute_serial_reference(target).unwrap();
            assert_eq!(re, rs, "{label}: reports diverge");
            assert_eq!(
                engine.db().dump(),
                serial.db().dump(),
                "{label}: databases diverge"
            );
            assert_eq!(engine.clock(), serial.clock(), "{label}: clocks diverge");
            assert_eq!(
                engine.blocked_activities(),
                serial.blocked_activities(),
                "{label}: blocked sets diverge"
            );
        }
    }

    /// The acceptance pin: Fifo on a single explicit full-speed worker
    /// reproduces the pre-refactor serial executor byte-identically.
    #[test]
    fn fifo_on_one_explicit_worker_matches_serial() {
        let build = || {
            let mut h = Hercules::new(
                examples::asic_flow(),
                ToolLibrary::standard(),
                Team::of_size(1),
                11,
            );
            h.plan("signoff_report").unwrap();
            h.set_fault_plan(FaultPlan::seeded(8).with_persistent_rate(0.2));
            h
        };
        let mut engine = build();
        let cluster = simtools::cluster::Cluster::uniform(1);
        let re = engine
            .execute_with(
                "signoff_report",
                crate::policy::ExecutionPolicy::Fifo,
                Some(&cluster),
            )
            .unwrap();
        let mut serial = build();
        let rs = serial.execute_serial_reference("signoff_report").unwrap();
        assert_eq!(re, rs);
        assert_eq!(engine.db().dump(), serial.db().dump());
    }

    /// Regression for the positional-assignee bug: the fallback
    /// assignment now keys on the activity's name, so the same activity
    /// lands on the same designer whatever scope (tree position) it is
    /// executed under.
    #[test]
    fn fallback_assignee_is_stable_across_scopes() {
        let build = || {
            Hercules::new(
                examples::asic_flow(),
                ToolLibrary::standard(),
                Team::of_size(3),
                11,
            )
        };
        // No plans anywhere: every assignee comes from the fallback.
        let mut narrow = build();
        let narrow_report = narrow.execute("netlist").unwrap();
        let mut wide = build();
        let wide_report = wide.execute("signoff_report").unwrap();
        for exec in narrow_report.activities() {
            assert_eq!(
                exec.assignee,
                narrow.team().assignee_for(&exec.activity),
                "{} not on its stable designer",
                exec.activity
            );
            let same = wide_report.activity(&exec.activity).unwrap();
            assert_eq!(
                exec.assignee, same.assignee,
                "{} shifted designers between scopes",
                exec.activity
            );
        }
    }

    /// Every built-in policy executes, blocks, and skips the same
    /// activity set on uniform-speed substrates (fault outcomes are
    /// per-activity and speed-independent there), and each is
    /// deterministic.
    #[test]
    fn all_policies_agree_on_outcome_sets() {
        use std::collections::BTreeSet;
        let build = || {
            let mut h = Hercules::new(
                examples::asic_flow(),
                ToolLibrary::standard(),
                Team::of_size(3),
                11,
            );
            h.plan("signoff_report").unwrap();
            h.set_fault_plan(FaultPlan::seeded(8).with_persistent_rate(0.25));
            h
        };
        let outcome = |r: &ExecutionReport| {
            (
                r.activities()
                    .iter()
                    .map(|a| a.activity.clone())
                    .collect::<BTreeSet<_>>(),
                r.blocked()
                    .iter()
                    .map(|b| b.activity.clone())
                    .collect::<BTreeSet<_>>(),
                r.skipped().iter().cloned().collect::<BTreeSet<_>>(),
            )
        };
        let mut reference = None;
        for policy in crate::policy::ExecutionPolicy::ALL {
            let run = |cluster: Option<&simtools::cluster::Cluster>| {
                let mut h = build();
                let r = h.execute_with("signoff_report", policy, cluster).unwrap();
                outcome(&r)
            };
            // Implicit substrate and an explicit uniform cluster are
            // both uniform-speed: same outcome sets.
            let implicit = run(None);
            assert_eq!(implicit, run(None), "{policy} is not deterministic");
            let uniform = simtools::cluster::Cluster::uniform(4);
            assert_eq!(
                implicit,
                run(Some(&uniform)),
                "{policy} outcome differs on an explicit uniform cluster"
            );
            match &reference {
                None => reference = Some(implicit),
                Some(expected) => {
                    assert_eq!(expected, &implicit, "{policy} outcome set diverges")
                }
            }
        }
    }

    /// Heterogeneous clusters with a network profile run every policy
    /// to completion, deterministically, and actually change timing
    /// relative to the implicit substrate.
    #[test]
    fn heterogeneous_cluster_execution_is_deterministic() {
        let build = || {
            let mut h = Hercules::new(
                examples::layered(3, 3, 2),
                ToolLibrary::standard(),
                Team::of_size(3),
                7,
            );
            h.plan("merged").unwrap();
            h
        };
        let cluster = simtools::cluster::Cluster::heterogeneous(4, 21).with_network(0.02, 0.01);
        let baseline = build().execute("merged").unwrap();
        for policy in crate::policy::ExecutionPolicy::ALL {
            let run = || {
                let mut h = build();
                h.set_execution_policy(policy);
                h.set_cluster(cluster.clone());
                h.execute("merged").unwrap()
            };
            let a = run();
            assert_eq!(a, run(), "{policy} not deterministic on the cluster");
            assert!(a.all_converged(), "{policy} failed to converge");
            assert_eq!(a.activities().len(), baseline.activities().len());
            assert_ne!(
                a.finished_at(),
                baseline.finished_at(),
                "{policy}: heterogeneous speeds should perturb the makespan"
            );
        }
    }
}
