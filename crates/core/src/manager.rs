use std::collections::{BTreeSet, HashMap};

use metadata::{ArenaStore, CompactionStats, EntityInstanceId, Journal, MetadataDb, Store};
use schedule::WorkDays;
use schema::TaskSchema;
use simtools::workload::{primary_input_data, Team};
use simtools::{FaultInjector, ToolLibrary};

use simtools::cluster::Cluster;

use crate::error::HerculesError;
use crate::plan::PlanCache;
use crate::policy::ExecutionPolicy;
use crate::retry::RetryPolicy;
use crate::task::TaskTree;

/// The integrated workflow manager: one object owning the task schema
/// (Level 1), the metadata storage engine (Levels 3–4), the tool
/// substrate, and the design team — so that planning, executing, and
/// tracking all read and write the *same* state.
///
/// Levels 3–4 live behind a [`Store`] handle: by default the in-memory
/// [`ArenaStore`], or a snapshot + journal-tail
/// [`metadata::PersistentStore`] adopted via
/// [`with_store`](Hercules::with_store) — the manager's code path is
/// identical either way.
///
/// See the [crate-level docs](crate) for the full walkthrough; the
/// type's methods follow the paper's procedure:
///
/// 1. [`Hercules::new`] — define the schema, initialise the database.
/// 2. [`Hercules::extract_task_tree`] — scope a task.
/// 3. [`Hercules::plan`](crate::Hercules::plan) — simulate execution,
///    creating schedule instances.
/// 4. [`Hercules::execute`](crate::Hercules::execute) — run the flow,
///    creating entity instances and completion links.
/// 5. [`Hercules::status`](crate::Hercules::status) /
///    [`Hercules::replan`](crate::Hercules::replan) — track and adapt.
#[derive(Debug, Clone)]
pub struct Hercules {
    pub(crate) schema: TaskSchema,
    pub(crate) store: Box<dyn Store>,
    pub(crate) tools: ToolLibrary,
    pub(crate) team: Team,
    pub(crate) seed: u64,
    pub(crate) clock: WorkDays,
    pub(crate) estimates: HashMap<String, WorkDays>,
    pub(crate) supplied: HashMap<String, EntityInstanceId>,
    /// Per-target planning caches driving the incremental replan
    /// engine: replanning an unchanged scope reuses the cached network
    /// and only recomputes the dirty cone.
    pub(crate) plan_cache: HashMap<String, PlanCache>,
    /// The fault policy layered over tool invocations during
    /// [`execute`](Hercules::execute). Defaults to no faults.
    pub(crate) fault_injector: FaultInjector,
    /// How execution reacts to injected faults: retries, backoff,
    /// timeouts, and the blocked-activity budget.
    pub(crate) retry_policy: RetryPolicy,
    /// Activities declared blocked after exhausting the retry policy.
    pub(crate) blocked: BTreeSet<String>,
    /// The scheduling policy [`execute`](Hercules::execute) dispatches
    /// under. Defaults to [`ExecutionPolicy::Fifo`], which on the
    /// default implicit cluster reproduces the serial executor.
    pub(crate) execution_policy: ExecutionPolicy,
    /// The simulated cluster execution dispatches onto. `None` (the
    /// default) is the implicit substrate: one full-speed worker per
    /// designer, activities bound to their assignee's worker.
    pub(crate) cluster: Option<Cluster>,
}

impl Hercules {
    /// Creates a manager for `schema`: the task database is initialised
    /// with one entity container per class and one schedule container
    /// per activity.
    ///
    /// `seed` controls all synthetic tool behaviour, making every run
    /// of a project reproducible.
    pub fn new(schema: TaskSchema, tools: ToolLibrary, team: Team, seed: u64) -> Self {
        let db = MetadataDb::for_schema(&schema);
        Self::with_store(schema, tools, team, seed, Box::new(ArenaStore::new(db)))
    }

    /// Creates a manager over an already-populated [`Store`] — e.g. a
    /// [`metadata::PersistentStore`] reopened from disk, or a project
    /// handle checked out of a
    /// [`Workspace`](crate::Workspace). The project clock and the
    /// primary-input registry are recomputed from the store's state, so
    /// a reopened project resumes exactly where it left off.
    ///
    /// The store must hold a database produced on the same `schema`;
    /// containers are not re-validated against it.
    pub fn with_store(
        schema: TaskSchema,
        tools: ToolLibrary,
        team: Team,
        seed: u64,
        store: Box<dyn Store>,
    ) -> Self {
        let mut h = Hercules {
            schema,
            store,
            tools,
            team,
            seed,
            clock: WorkDays::ZERO,
            estimates: HashMap::new(),
            supplied: HashMap::new(),
            plan_cache: HashMap::new(),
            fault_injector: FaultInjector::none(),
            retry_policy: RetryPolicy::default(),
            blocked: BTreeSet::new(),
            execution_policy: ExecutionPolicy::default(),
            cluster: None,
        };
        h.adopt_store_state();
        h
    }

    /// Installs a fault policy for subsequent
    /// [`execute`](Hercules::execute) calls. Accepts a
    /// [`simtools::FaultPlan`], a
    /// [`simtools::BrokenToolPlan`], or a prebuilt
    /// [`FaultInjector`].
    pub fn set_fault_plan(&mut self, faults: impl Into<FaultInjector>) {
        self.fault_injector = faults.into();
    }

    /// Builder-style variant of [`set_fault_plan`](Hercules::set_fault_plan).
    #[must_use]
    pub fn with_fault_plan(mut self, faults: impl Into<FaultInjector>) -> Self {
        self.set_fault_plan(faults);
        self
    }

    /// The installed fault policy.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault_injector
    }

    /// Replaces the retry policy governing fault handling during
    /// execution.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// Selects the scheduling policy subsequent
    /// [`execute`](Hercules::execute) calls dispatch under. The default
    /// [`ExecutionPolicy::Fifo`] reproduces the serial dependency-order
    /// executor on the implicit cluster.
    pub fn set_execution_policy(&mut self, policy: ExecutionPolicy) {
        self.execution_policy = policy;
    }

    /// Builder-style variant of
    /// [`set_execution_policy`](Hercules::set_execution_policy).
    #[must_use]
    pub fn with_execution_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.set_execution_policy(policy);
        self
    }

    /// The configured execution policy.
    pub fn execution_policy(&self) -> ExecutionPolicy {
        self.execution_policy
    }

    /// Installs (or with `None`, removes) the simulated cluster
    /// subsequent [`execute`](Hercules::execute) calls dispatch onto.
    /// Without one, execution runs on the implicit substrate: one
    /// full-speed worker per designer, each activity bound to its
    /// assignee. With an explicit cluster, the policy places every
    /// activity on any worker; durations scale with worker speed and
    /// entity hand-off pays the cluster's seeded network delay.
    pub fn set_cluster(&mut self, cluster: impl Into<Option<Cluster>>) {
        self.cluster = cluster.into();
    }

    /// Builder-style variant of [`set_cluster`](Hercules::set_cluster).
    #[must_use]
    pub fn with_cluster(mut self, cluster: impl Into<Option<Cluster>>) -> Self {
        self.set_cluster(cluster);
        self
    }

    /// The configured simulated cluster, if any.
    pub fn cluster(&self) -> Option<&Cluster> {
        self.cluster.as_ref()
    }

    /// The retry policy governing fault handling during execution.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// Activities currently declared blocked (retry policy exhausted by
    /// injected faults), in sorted order.
    pub fn blocked_activities(&self) -> Vec<&str> {
        self.blocked.iter().map(String::as_str).collect()
    }

    /// Whether `activity` is currently blocked.
    pub fn is_blocked(&self, activity: &str) -> bool {
        self.blocked.contains(activity)
    }

    /// Clears the blocked set — e.g. after the operator repairs a
    /// broken tool and installs a new fault plan, so the next
    /// [`execute`](Hercules::execute) retries the activities.
    pub fn clear_blocked(&mut self) {
        self.blocked.clear();
    }

    /// Enables write-ahead journaling on the metadata store — see
    /// [`metadata::MetadataDb::enable_journal`]. Call before the first
    /// mutation (planning or execution) so recovery can replay the full
    /// history. A no-op for persistent stores, which always journal.
    pub fn enable_journal(&mut self) {
        self.store.enable_journal();
    }

    /// Detaches and returns the store's journal, if journaling was
    /// enabled — see [`Store::take_journal`]. Persistent stores return
    /// a copy of their redo tail and keep journaling.
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.store.take_journal()
    }

    /// Arms a simulated crash in the metadata store after `after`
    /// more journaled mutations — see
    /// [`metadata::MetadataDb::inject_crash_after`]. Used by the chaos
    /// suite to prove crash recovery.
    pub fn inject_db_crash_after(&mut self, after: u32) {
        self.store.inject_crash_after(after);
    }

    /// The schema this manager was initialised from.
    pub fn schema(&self) -> &TaskSchema {
        &self.schema
    }

    /// Read access to the metadata database (both spaces).
    pub fn db(&self) -> &MetadataDb {
        self.store.db()
    }

    /// The storage engine behind the database — for inspecting the
    /// backend (e.g. [`Store::path`]) without mutating it.
    pub fn store(&self) -> &dyn Store {
        self.store.as_ref()
    }

    /// Compacts the storage engine: folds the journal history into a
    /// fresh snapshot and bumps the store generation (see
    /// [`Store::compact`]). Handles minted before the call — schedule
    /// instances inside old [`SchedulePlan`](crate::SchedulePlan)s,
    /// cached primary inputs — become stale, so the manager drops its
    /// plan caches and rebuilds the primary-input registry from the
    /// compacted state.
    ///
    /// # Errors
    ///
    /// [`HerculesError::Store`] if the engine has crashed or persisting
    /// the snapshot fails.
    pub fn gc(&mut self) -> Result<CompactionStats, HerculesError> {
        let stats = self.store.compact()?;
        // Every id the manager cached is now stale: re-derive them from
        // the freshly-stamped database. Session-local state (clock,
        // blocked set, estimates) is untouched — gc is maintenance, not
        // a restore.
        self.plan_cache.clear();
        self.rebuild_supplied();
        Ok(stats)
    }

    /// The design team.
    pub fn team(&self) -> &Team {
        &self.team
    }

    /// The current project clock (working days since project start).
    pub fn clock(&self) -> WorkDays {
        self.clock
    }

    /// Advances the project clock (e.g. idle calendar time between
    /// planning and execution). The clock never moves backwards.
    pub fn advance_clock(&mut self, to: WorkDays) {
        if to.days() > self.clock.days() {
            self.clock = to;
        }
    }

    /// Records the designer's intuition estimate for an activity's
    /// duration, used by planning when no measured history exists.
    ///
    /// # Errors
    ///
    /// [`HerculesError::UnknownActivity`] if the schema has no such
    /// activity.
    pub fn set_estimate(
        &mut self,
        activity: &str,
        duration: WorkDays,
    ) -> Result<(), HerculesError> {
        if self.schema.rule(activity).is_none() {
            return Err(HerculesError::UnknownActivity(activity.to_owned()));
        }
        self.estimates.insert(activity.to_owned(), duration);
        Ok(())
    }

    /// Extracts the task tree covering `target` — step 2 of the
    /// procedure, shared by planning and execution.
    ///
    /// # Errors
    ///
    /// [`HerculesError::UnknownTarget`] if `target` names nothing.
    pub fn extract_task_tree(&self, target: &str) -> Result<TaskTree, HerculesError> {
        TaskTree::extract(&self.schema, target)
    }

    /// The duration estimate planning uses for `activity`, in priority
    /// order: (1) measured history from the metadata database — "the
    /// duration of an activity can be based ... on the measured results
    /// of similar tasks"; (2) the designer's intuition estimate;
    /// (3) the tool model's expected activity duration.
    pub fn duration_estimate(&self, activity: &str) -> Result<WorkDays, HerculesError> {
        let rule = self
            .schema
            .rule(activity)
            .ok_or_else(|| HerculesError::UnknownActivity(activity.to_owned()))?;
        if let Some(measured) = self.store.db().last_duration(activity) {
            return Ok(measured);
        }
        if let Some(&intuition) = self.estimates.get(activity) {
            return Ok(intuition);
        }
        let input_bytes = self.planned_input_bytes(activity);
        let model = self.tools.resolve(rule.tool());
        Ok(WorkDays::new(model.expected_activity_duration(input_bytes)))
    }

    /// Estimated input size for `activity` before execution: the sum of
    /// its producers' nominal output sizes (1 KiB for designer-supplied
    /// primary inputs).
    pub(crate) fn planned_input_bytes(&self, activity: &str) -> u64 {
        let Some(rule) = self.schema.rule(activity) else {
            return 0;
        };
        rule.inputs()
            .iter()
            .map(|input| match self.schema.producer_of(input) {
                Some(producer) => self.tools.resolve(producer.tool()).output_bytes(),
                None => 1024,
            })
            .sum()
    }

    /// Replaces the manager's database with a restored one (loaded via
    /// [`metadata::MetadataDb::load`]), recomputing the clock (latest
    /// timestamp in the database) and the primary-input registry. A
    /// persistent store checkpoints the replacement as a fresh
    /// snapshot.
    ///
    /// The database must have been produced by a manager on the same
    /// schema; containers are not re-validated against it.
    ///
    /// # Errors
    ///
    /// [`HerculesError::Store`] if persisting the replacement fails
    /// (never for the in-memory arena).
    pub fn restore_db(&mut self, db: MetadataDb) -> Result<(), HerculesError> {
        self.store.replace_db(db)?;
        self.adopt_store_state();
        Ok(())
    }

    /// Recomputes session state (clock, primary-input registry) from
    /// the store and drops everything derived from the previous state
    /// (plan caches, blocked set).
    fn adopt_store_state(&mut self) {
        let db = self.store.db();
        let mut clock = WorkDays::ZERO;
        for run in db.runs() {
            if let Some(f) = run.finished_at() {
                clock = clock.max(f);
            } else {
                clock = clock.max(run.started_at());
            }
        }
        for session in db.planning_sessions() {
            clock = clock.max(session.created_at());
        }
        self.clock = clock;
        self.rebuild_supplied();
        // The adopted history may change measured-duration estimates
        // arbitrarily; drop planning caches rather than trust them.
        self.plan_cache.clear();
        // Blocked state is session-local (it reflects this process's
        // retry bookkeeping, not database state): start fresh.
        self.blocked.clear();
    }

    /// Rebuilds the supplied-primary-input registry from instances with
    /// no producing run (their ids must match the store's current
    /// generation).
    fn rebuild_supplied(&mut self) {
        let db = self.store.db();
        let mut supplied = HashMap::new();
        for class in db.entity_classes() {
            if let Some(container) = db.entity_container(class) {
                if let Some(&first_supplied) = container
                    .iter()
                    .find(|&&id| db.entity_instance(id).produced_by().is_none())
                {
                    supplied.insert(class.to_owned(), first_supplied);
                }
            }
        }
        self.supplied = supplied;
    }

    /// Supplies a primary-input instance for `class` (synthetic content
    /// derived from the project seed), or returns the already-supplied
    /// instance — primary inputs are provided once, like the paper's
    /// `stimuli`.
    ///
    /// # Errors
    ///
    /// [`HerculesError::Metadata`] if `class` has no container.
    pub fn supply_primary_input(
        &mut self,
        class: &str,
        designer: &str,
    ) -> Result<EntityInstanceId, HerculesError> {
        if let Some(&id) = self.supplied.get(class) {
            return Ok(id);
        }
        let content = primary_input_data(class, self.seed);
        let data = self.store.store_data(&format!("{class}.dat"), content);
        let id = self.store.supply_input(class, designer, self.clock, data)?;
        self.supplied.insert(class.to_owned(), id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;

    fn manager() -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            7,
        )
    }

    #[test]
    fn construction_initialises_containers() {
        let h = manager();
        assert!(h.db().entity_container("netlist").is_some());
        assert!(h.db().schedule_container("Simulate").is_some());
        assert_eq!(h.clock(), WorkDays::ZERO);
        assert_eq!(h.team().len(), 2);
        assert_eq!(h.schema().name(), "circuit");
    }

    #[test]
    fn clock_is_monotonic() {
        let mut h = manager();
        h.advance_clock(WorkDays::new(5.0));
        h.advance_clock(WorkDays::new(3.0));
        assert_eq!(h.clock(), WorkDays::new(5.0));
    }

    #[test]
    fn estimate_requires_known_activity() {
        let mut h = manager();
        assert!(h.set_estimate("Create", WorkDays::new(3.0)).is_ok());
        assert!(matches!(
            h.set_estimate("Fabricate", WorkDays::new(1.0)),
            Err(HerculesError::UnknownActivity(_))
        ));
    }

    #[test]
    fn duration_estimate_priorities() {
        let mut h = manager();
        // No history, no intuition: tool-model estimate.
        let model_est = h.duration_estimate("Create").unwrap();
        assert!(model_est.days() > 0.0);
        // Intuition overrides the model.
        h.set_estimate("Create", WorkDays::new(9.0)).unwrap();
        assert_eq!(h.duration_estimate("Create").unwrap(), WorkDays::new(9.0));
        assert!(h.duration_estimate("Missing").is_err());
    }

    #[test]
    fn planned_input_bytes_uses_producer_models() {
        let h = manager();
        // Create has no inputs.
        assert_eq!(h.planned_input_bytes("Create"), 0);
        // Simulate consumes netlist (producer: netlist_editor, 8 KiB)
        // and stimuli (primary input, 1 KiB).
        assert_eq!(h.planned_input_bytes("Simulate"), 8 * 1024 + 1024);
    }

    #[test]
    fn restore_db_recovers_clock_and_supplied() {
        let mut h = manager();
        h.supply_primary_input("stimuli", "alice").unwrap();
        let run = h
            .store
            .begin_run("Create", "alice", WorkDays::new(1.0))
            .unwrap();
        let data = h.store.store_data("x", vec![]);
        h.store
            .finish_run(run, "netlist", data, WorkDays::new(4.0), &[])
            .unwrap();
        let dump = h.db().dump();

        let mut restored = manager();
        restored
            .restore_db(metadata::MetadataDb::load(&dump).unwrap())
            .unwrap();
        assert_eq!(restored.clock(), WorkDays::new(4.0));
        // The supplied registry is rebuilt: supplying again reuses the
        // restored instance.
        let again = restored.supply_primary_input("stimuli", "bob").unwrap();
        assert_eq!(restored.db().entity_container("stimuli").unwrap().len(), 1);
        assert_eq!(restored.db().entity_instance(again).creator(), "alice");
    }

    #[test]
    fn persistent_store_roundtrip_and_gc() {
        let dir = std::env::temp_dir().join(format!("schedflow-manager-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = examples::circuit_design();
        {
            let store =
                metadata::PersistentStore::create(&dir, MetadataDb::for_schema(&schema)).unwrap();
            let mut h = Hercules::with_store(
                schema.clone(),
                ToolLibrary::standard(),
                Team::of_size(2),
                7,
                Box::new(store),
            );
            h.supply_primary_input("stimuli", "alice").unwrap();
            let run = h
                .store
                .begin_run("Create", "alice", WorkDays::new(1.0))
                .unwrap();
            let data = h.store.store_data("x", vec![]);
            h.store
                .finish_run(run, "netlist", data, WorkDays::new(4.0), &[])
                .unwrap();
        }
        // Reopen: the clock and primary-input registry are recomputed
        // from the replayed state.
        let store = metadata::PersistentStore::open(&dir).unwrap();
        let mut h = Hercules::with_store(
            schema,
            ToolLibrary::standard(),
            Team::of_size(2),
            7,
            Box::new(store),
        );
        assert_eq!(h.clock(), WorkDays::new(4.0));
        let again = h.supply_primary_input("stimuli", "bob").unwrap();
        assert_eq!(h.db().entity_instance(again).creator(), "alice");
        // gc folds the tail and refreshes every cached handle: the
        // supplied registry keeps working at the new generation.
        let stats = h.gc().unwrap();
        assert_eq!(stats.tail_ops_after, 0);
        assert!(stats.generation >= 1);
        let fresh = h.supply_primary_input("stimuli", "carol").unwrap();
        assert_eq!(h.db().entity_container("stimuli").unwrap().len(), 1);
        assert_eq!(h.db().entity_instance(fresh).creator(), "alice");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn primary_inputs_supplied_once() {
        let mut h = manager();
        let a = h.supply_primary_input("stimuli", "alice").unwrap();
        let b = h.supply_primary_input("stimuli", "bob").unwrap();
        assert_eq!(a, b);
        assert_eq!(h.db().entity_container("stimuli").unwrap().len(), 1);
        assert!(h.supply_primary_input("ghost", "alice").is_err());
    }
}
