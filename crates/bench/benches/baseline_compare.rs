//! B6 — integrated tracking vs the separate manual-PM baseline: the
//! tracking cost per event stream, plus (printed once) the staleness
//! and manual-entry comparison the paper's introduction argues from.
//!
//! Expected shape: integrated tracking has zero staleness and zero
//! manual entries at any meeting cadence; the manual baseline's mean
//! staleness is ~period/2 and its entry count equals the event count.

use std::time::Duration;

use baselines::{EventKind, FlowEvent, IntegratedTracker, ManualPm};
use bench::asic_manager;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Event stream from actually executing the ASIC flow.
fn asic_events(seed: u64) -> Vec<FlowEvent> {
    let mut h = asic_manager(3, seed);
    h.plan("signoff_report").expect("plannable");
    let report = h.execute("signoff_report").expect("executable");
    let mut events = Vec::new();
    for exec in report.activities() {
        events.push(FlowEvent::new(
            exec.started.days(),
            exec.activity.clone(),
            EventKind::Started,
        ));
        events.push(FlowEvent::new(
            exec.finished.days(),
            exec.activity.clone(),
            EventKind::Finished,
        ));
    }
    events
}

fn bench_baselines(c: &mut Criterion) {
    let events = asic_events(5);
    // One-shot comparison table (captured by EXPERIMENTS.md).
    println!("\ntracking comparison on a real ASIC-flow event stream:");
    println!("  {}", IntegratedTracker.track(&events));
    for period in [1.0, 5.0, 10.0] {
        println!("  {} (meetings every {period}d)", ManualPm::new(period).track(&events));
    }

    let mut group = c.benchmark_group("tracking_cost");
    group.bench_with_input(BenchmarkId::new("integrated", events.len()), &events, |b, e| {
        b.iter(|| IntegratedTracker.track(e))
    });
    group.bench_with_input(BenchmarkId::new("manual_pm", events.len()), &events, |b, e| {
        b.iter(|| ManualPm::new(5.0).track(e))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_baselines
}
criterion_main!(benches);
