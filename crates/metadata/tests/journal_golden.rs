//! Golden-file test of the journal text format: a fixed, scripted
//! planning + execution session must serialize to exactly the
//! committed `artifacts/journal_session.txt`. The journal text *is*
//! the recovery artifact — any accidental format drift would strand
//! previously written logs — so changes must be deliberate:
//! regenerate with
//!
//! ```text
//! cargo test -p metadata --test journal_golden -- --ignored regenerate
//! ```
//!
//! and review the diff.

use std::path::PathBuf;

use metadata::{Journal, MetadataDb};
use schedule::WorkDays;
use schema::examples;

/// A small but complete session: plan two activities, supply a primary
/// input, run both tools, link both completions. Every journal op kind
/// that a normal session produces appears at least once.
fn scripted_session() -> MetadataDb {
    let schema = examples::circuit_design();
    let mut db = MetadataDb::for_schema(&schema);
    db.enable_journal();

    let session = db.begin_planning(WorkDays::ZERO);
    let plan_create = db
        .plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(2.0))
        .expect("plan Create");
    let plan_sim = db
        .plan_activity(session, "Simulate", WorkDays::new(2.0), WorkDays::new(1.5))
        .expect("plan Simulate");
    db.assign(plan_create, "alice").expect("assign alice");
    db.assign(plan_sim, "bob").expect("assign bob");

    let stim_data = db.store_data("stimuli.dat", b"0101 1100".to_vec());
    let stimuli = db
        .supply_input("stimuli", "bob", WorkDays::ZERO, stim_data)
        .expect("supply stimuli");

    let run = db
        .begin_run("Create", "alice", WorkDays::new(0.25))
        .expect("begin Create run");
    let net_data = db.store_data("netlist.v1", b"module counter;".to_vec());
    let netlist = db
        .finish_run(run, "netlist", net_data, WorkDays::new(1.75), &[])
        .expect("finish Create run");
    db.link_completion(plan_create, netlist)
        .expect("link Create");

    let run = db
        .begin_run("Simulate", "bob", WorkDays::new(2.0))
        .expect("begin Simulate run");
    let perf_data = db.store_data("performance.v1", b"slack +0.2ns".to_vec());
    let performance = db
        .finish_run(
            run,
            "performance",
            perf_data,
            WorkDays::new(3.25),
            &[netlist, stimuli],
        )
        .expect("finish Simulate run");
    db.link_completion(plan_sim, performance)
        .expect("link Simulate");
    db
}

/// The scripted session with a torn tail: an injected crash fires on
/// the very next mutation, so its op is appended to the journal but
/// never applied — exactly the on-disk shape a dead process leaves
/// behind. Compaction must drop that op.
fn scripted_session_with_torn_tail() -> MetadataDb {
    let mut db = scripted_session();
    db.inject_crash_after(0);
    let torn = db.begin_run("Create", "alice", WorkDays::new(4.0));
    assert!(
        matches!(torn, Err(metadata::MetadataError::InjectedCrash)),
        "crash injection should fire on the torn op: {torn:?}"
    );
    db
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/journal_session.txt")
}

fn compacted_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/journal_compacted.txt")
}

#[test]
fn journal_text_matches_golden_artifact() {
    let db = scripted_session();
    let actual = db.journal().expect("journal enabled").to_text();
    let path = golden_path();
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nregenerate with: cargo test -p metadata \
             --test journal_golden -- --ignored regenerate",
            path.display()
        )
    });
    assert_eq!(
        golden.replace("\r\n", "\n"),
        actual,
        "journal text format drifted from the committed golden artifact; \
         if intentional, regenerate with: cargo test -p metadata \
         --test journal_golden -- --ignored regenerate"
    );
}

#[test]
fn golden_artifact_replays_into_the_session() {
    let db = scripted_session();
    let golden = std::fs::read_to_string(golden_path()).expect("golden artifact exists");
    let journal = Journal::parse(&golden).expect("golden artifact parses");
    let recovered = MetadataDb::recover(&journal).expect("golden artifact replays");
    assert_eq!(recovered.dump(), db.dump());
    recovered
        .check_invariants()
        .expect("recovered session passes invariants");
    assert_eq!(recovered.completed_activities(), vec!["Create", "Simulate"]);
}

#[test]
fn compacted_journal_matches_golden_artifact() {
    let db = scripted_session_with_torn_tail();
    let actual = Journal::compacted_from(&db).to_text();
    let path = compacted_golden_path();
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nregenerate with: cargo test -p metadata \
             --test journal_golden -- --ignored regenerate",
            path.display()
        )
    });
    assert_eq!(
        golden.replace("\r\n", "\n"),
        actual,
        "compacted journal emission drifted from the committed golden \
         artifact; if intentional, regenerate with: cargo test -p metadata \
         --test journal_golden -- --ignored regenerate"
    );
}

#[test]
fn compacted_golden_replays_and_is_strictly_smaller() {
    let db = scripted_session_with_torn_tail();
    let raw = db.journal().expect("journal enabled");
    let golden =
        std::fs::read_to_string(compacted_golden_path()).expect("compacted artifact exists");
    let compacted = Journal::parse(&golden).expect("compacted artifact parses");

    // The compacted form is the *minimal* redo journal: replaying it
    // reproduces the crashed database byte-for-byte, without the torn
    // tail op the raw journal still carries.
    let recovered = MetadataDb::recover(&compacted).expect("compacted artifact replays");
    recovered
        .check_invariants()
        .expect("recovered compacted session passes invariants");
    assert_eq!(recovered.dump(), db.dump());
    assert!(
        compacted.len() < raw.len(),
        "compaction must drop the torn tail op ({} vs {} ops)",
        compacted.len(),
        raw.len()
    );
}

/// Rewrites both golden artifacts from the scripted sessions. Ignored
/// by default; run explicitly when the format changes deliberately.
#[test]
#[ignore = "writes the golden artifacts; run explicitly after deliberate format changes"]
fn regenerate() {
    let db = scripted_session();
    let text = db.journal().expect("journal enabled").to_text();
    std::fs::write(golden_path(), text).expect("write golden artifact");

    let torn = scripted_session_with_torn_tail();
    let compacted = Journal::compacted_from(&torn).to_text();
    std::fs::write(compacted_golden_path(), compacted).expect("write compacted artifact");
}
