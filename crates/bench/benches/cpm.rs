//! B1 — CPM forward/backward pass scaling with flow size.
//!
//! Expected shape: near-linear in activities + constraints; even
//! 10 000-activity networks analyze in milliseconds, which is why the
//! integrated system can afford to replan on every status change.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schedule::{ScheduleNetwork, WorkDays};

fn layered_network(layers: usize, width: usize) -> ScheduleNetwork {
    let mut net = ScheduleNetwork::new();
    let mut prev: Vec<_> = Vec::new();
    for l in 0..layers {
        let mut this = Vec::new();
        for w in 0..width {
            let id = net
                .add_activity(format!("l{l}w{w}"), WorkDays::new(1.0 + (w % 3) as f64))
                .expect("unique names");
            for &p in prev.iter().take(2) {
                net.add_precedence(p, id).expect("forward edges");
            }
            this.push(id);
        }
        prev = this;
    }
    net
}

fn bench_cpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpm_analyze");
    for &activities in &[100usize, 1_000, 10_000] {
        let net = layered_network(activities / 10, 10);
        group.throughput(criterion::Throughput::Elements(activities as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(activities),
            &net,
            |b, net| b.iter(|| net.analyze().expect("acyclic")),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cpm
}
criterion_main!(benches);
