//! Regenerates **Fig. 1**: the schedule model within the system
//! representation — a Level-2 process flow giving rise to Level-3
//! *proposed milestones* (via simulated execution) and Level-3 *actual
//! design metadata* (via real execution), linked on completion.

use bench::circuit_manager;

fn main() {
    let mut h = circuit_manager(2, 42);

    println!("Level 2 (pre-execution): process flow");
    let tree = h.extract_task_tree("performance").expect("known target");
    for activity in tree.activities() {
        println!(
            "  ({activity}) : {} <- {:?}",
            tree.output_of(activity),
            tree.inputs_of(activity)
        );
    }

    println!("\nLevel 3 (simulation of execution): proposed schedule");
    let plan = h.plan("performance").expect("plannable");
    for pa in plan.activities() {
        println!(
            "  {} proposed [{} .. {}] assigned {}",
            pa.activity,
            pa.start,
            pa.start + pa.duration,
            pa.assignee
        );
    }

    println!("\nLevel 3 (post-execution): actual design metadata");
    let report = h.execute("performance").expect("executable");
    for exec in report.activities() {
        println!(
            "  {} actual [{} .. {}] in {} run(s) by {}",
            exec.activity, exec.started, exec.finished, exec.iterations, exec.assignee
        );
    }

    println!("\nLinks (created when the designer declares completion):");
    for pa in plan.activities() {
        let sc = h.db().schedule_instance(pa.schedule);
        if let Some(entity) = sc.linked_entity() {
            println!("  {} ----> {}", pa.schedule, entity);
        }
    }
}
