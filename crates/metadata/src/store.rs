//! The storage engine behind the metadata database: a [`Store`] trait
//! offering typed CRUD over runs, schedule instances, planning
//! sessions, and links, with two interchangeable backends.
//!
//! * [`ArenaStore`] — the original grow-forever in-memory arena: a
//!   [`MetadataDb`] plus its optional write-ahead [`Journal`]. Fast,
//!   volatile, and what every single-session `Hercules` uses by
//!   default.
//! * [`PersistentStore`] — a **snapshot + journal-tail** engine layered
//!   on the write-ahead journal: the database state lives on disk as
//!   the last snapshot (a [`MetadataDb::dump`]) plus a redo tail of
//!   every op appended since. Opening replays snapshot then tail;
//!   [`compact`](Store::compact) folds the tail into a fresh snapshot
//!   with a crash-consistent temp/rename `CURRENT` swap (the VOV
//!   lesson: trace-based metadata only scales when the store is an
//!   engine with compaction, not a grow-forever log).
//!
//! # On-disk layout (`PersistentStore`)
//!
//! ```text
//! <dir>/CURRENT            the live sequence number N (temp/renamed)
//! <dir>/snapshot-N.txt     framed metadata-db dump at sequence N
//! <dir>/tail-N.journal     framed redo ops since N
//! ```
//!
//! Files are written in the checksummed **v2 framing**
//! ([`crate::framing`]): each tail record carries the CRC32 of its op
//! line, each snapshot a framing line whose CRC32 covers the dump.
//! Pre-durability v1 roots open read-compatibly and upgrade wholesale
//! on their next compaction.
//!
//! Every mutation appends its op to the in-memory journal *and* the
//! tail file before it is applied — including ops torn by an injected
//! crash, which is exactly the write-ahead fidelity the chaos suite
//! checks. All I/O goes through the [`Vfs`] seam so the chaos suite
//! can inject storage failures (ENOSPC, EIO, short writes, lying
//! fsync, dropped renames) deterministically.
//!
//! # Recovery policy
//!
//! Reopening distinguishes two failure shapes:
//!
//! * **Torn tail** — only the *last* record is invalid: a process died
//!   mid-append. The op was never acknowledged as durable, so open
//!   truncates it and proceeds, as ever.
//! * **Corrupt interior** — an earlier record (or the snapshot) fails
//!   its checksum while valid data follows: bit-rot or a silent short
//!   write. Guessing would fabricate history, so open refuses with a
//!   typed [`StoreError::Corruption`] report; `herc fsck --repair`
//!   (see [`crate::fsck`]) rebuilds from the best recoverable state.
//!
//! # Wedging
//!
//! If a tail append itself fails (disk full, I/O error) the store
//! **wedges**: every further fallible mutation returns
//! [`MetadataError::StorageFailed`], because acknowledging writes that
//! cannot be persisted would break the write-ahead contract. (The op
//! whose append failed has already applied in memory — it reports
//! success but may not survive a reopen; everything acknowledged
//! before it is durable.) Reads keep working; reopening the directory
//! resumes from the last durable prefix. (Earlier revisions panicked here; a
//! million-user workspace must degrade, not abort.)
//!
//! # Generations
//!
//! Compaction renumbers nothing (dumps preserve allocation order) but
//! **bumps the store generation**: the database is reloaded via
//! [`MetadataDb::load_at`] at `N+1`, so ids held from before the
//! compaction fail mutating calls with
//! [`MetadataError::StaleHandle`] instead of silently resolving against
//! the reused slot space. The files of generation `N` are kept as the
//! fallback state for `fsck` (generation `N-1` is deleted), so one
//! corrupted compaction never strands a project.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use schedule::WorkDays;
use simtools::vfs::{RealVfs, Vfs};

use crate::database::MetadataDb;
use crate::error::MetadataError;
use crate::export::LoadError;
use crate::framing::{self, Framing, SnapshotIssue, TailIssue};
use crate::ids::{DataObjectId, EntityInstanceId, PlanningSessionId, RunId, ScheduleInstanceId};
use crate::journal::Journal;

/// What kind of damage a [`CorruptionReport`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CorruptionKind {
    /// `CURRENT` exists but does not hold a sequence number.
    BadCurrent,
    /// A file `CURRENT` points at is missing (a dropped rename, manual
    /// deletion).
    MissingFile,
    /// A file is not UTF-8 text at all.
    NotText,
    /// A snapshot or tail header is unrecognized.
    BadHeader,
    /// A v2 snapshot's checksum does not match its body.
    ChecksumMismatch,
    /// An interior tail record failed its checksum or did not parse
    /// while later records exist.
    CorruptRecord,
    /// The snapshot body failed to load as a database dump.
    SnapshotLoad,
    /// The tail's ops do not apply onto the snapshot they accompany.
    TailReplay,
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorruptionKind::BadCurrent => "bad CURRENT",
            CorruptionKind::MissingFile => "missing file",
            CorruptionKind::NotText => "not UTF-8 text",
            CorruptionKind::BadHeader => "bad header",
            CorruptionKind::ChecksumMismatch => "checksum mismatch",
            CorruptionKind::CorruptRecord => "corrupt record",
            CorruptionKind::SnapshotLoad => "snapshot does not load",
            CorruptionKind::TailReplay => "tail does not replay",
        };
        f.write_str(s)
    }
}

/// A typed description of store damage: which file, what kind of
/// damage, and the details recovery or `fsck` needs to print. This is
/// what the open path surfaces *instead of* garbage state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionReport {
    /// The damaged file.
    pub path: PathBuf,
    /// The damage classification.
    pub kind: CorruptionKind,
    /// Human-readable specifics (line numbers, checksums).
    pub detail: String,
}

impl fmt::Display for CorruptionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}: {}",
            self.kind,
            self.path.display(),
            self.detail
        )
    }
}

/// Errors from store lifecycle operations (open, checkpoint, compact).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// A metadata-level failure (validation, injected crash, stale
    /// handle).
    Metadata(MetadataError),
    /// A snapshot or tail file failed to parse.
    Load(LoadError),
    /// Filesystem trouble; carries the failing path and the OS error.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
    /// The store's files are damaged beyond the self-healing torn-tail
    /// case: recovery refuses to guess and reports what it found. Run
    /// `herc fsck --repair` to rebuild from the best recoverable state.
    Corruption(CorruptionReport),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Metadata(e) => write!(f, "metadata error: {e}"),
            StoreError::Load(e) => write!(f, "corrupt store file: {e}"),
            StoreError::Io { path, message } => {
                write!(f, "store I/O error at {}: {message}", path.display())
            }
            StoreError::Corruption(report) => write!(f, "store corruption: {report}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<MetadataError> for StoreError {
    fn from(e: MetadataError) -> Self {
        StoreError::Metadata(e)
    }
}

impl From<LoadError> for StoreError {
    fn from(e: LoadError) -> Self {
        StoreError::Load(e)
    }
}

fn io_err(path: &Path, e: impl fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

fn corrupt(path: &Path, kind: CorruptionKind, detail: impl Into<String>) -> StoreError {
    StoreError::Corruption(CorruptionReport {
        path: path.to_path_buf(),
        kind,
        detail: detail.into(),
    })
}

/// What a [`compact`](Store::compact) accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Redo ops in the tail before compaction (folded into the new
    /// snapshot).
    pub tail_ops_before: usize,
    /// Redo ops in the tail afterwards (always 0 for the persistent
    /// store; the compacted journal length for the arena).
    pub tail_ops_after: usize,
    /// Bytes held by the engine before (snapshot + tail files, or the
    /// journal text for the arena).
    pub bytes_before: u64,
    /// Bytes held afterwards.
    pub bytes_after: u64,
    /// The store generation after compaction. Handles minted before it
    /// are now stale.
    pub generation: u32,
}

/// Typed CRUD over the metadata database — the storage-engine seam
/// between the flow manager and its Level-3 metadata.
///
/// Reads go through [`db`](Store::db) (the full [`MetadataDb`] query
/// surface); every mutation goes through a trait method so a backend
/// can interpose write-ahead persistence. Both backends pass the same
/// conformance suite (`tests/store_conformance.rs`).
pub trait Store: fmt::Debug + Send + Sync {
    /// The live database, for queries.
    fn db(&self) -> &MetadataDb;

    // -- typed mutations (mirroring `MetadataDb`) ----------------------

    /// [`MetadataDb::declare_entity_container`].
    fn declare_entity_container(&mut self, class: &str);

    /// [`MetadataDb::declare_schedule_container`].
    fn declare_schedule_container(&mut self, activity: &str, output_class: &str);

    /// [`MetadataDb::store_data`].
    fn store_data(&mut self, name: &str, content: Vec<u8>) -> DataObjectId;

    /// [`MetadataDb::begin_run`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::begin_run`].
    fn begin_run(
        &mut self,
        activity: &str,
        operator: &str,
        started_at: WorkDays,
    ) -> Result<RunId, MetadataError>;

    /// [`MetadataDb::finish_run`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::finish_run`].
    fn finish_run(
        &mut self,
        run: RunId,
        output_class: &str,
        data: DataObjectId,
        finished_at: WorkDays,
        inputs: &[EntityInstanceId],
    ) -> Result<EntityInstanceId, MetadataError>;

    /// [`MetadataDb::supply_input`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::supply_input`].
    fn supply_input(
        &mut self,
        class: &str,
        creator: &str,
        created_at: WorkDays,
        data: DataObjectId,
    ) -> Result<EntityInstanceId, MetadataError>;

    /// [`MetadataDb::begin_planning`].
    fn begin_planning(&mut self, at: WorkDays) -> PlanningSessionId;

    /// [`MetadataDb::plan_activity`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::plan_activity`].
    fn plan_activity(
        &mut self,
        session: PlanningSessionId,
        activity: &str,
        planned_start: WorkDays,
        planned_duration: WorkDays,
    ) -> Result<ScheduleInstanceId, MetadataError>;

    /// [`MetadataDb::assign`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::assign`].
    fn assign(&mut self, schedule: ScheduleInstanceId, designer: &str)
        -> Result<(), MetadataError>;

    /// [`MetadataDb::link_completion`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::link_completion`].
    fn link_completion(
        &mut self,
        schedule: ScheduleInstanceId,
        entity: EntityInstanceId,
    ) -> Result<(), MetadataError>;

    // -- journal & crash control ---------------------------------------

    /// Turns on write-ahead journaling ([`MetadataDb::enable_journal`]).
    /// No-op for the persistent store, which always journals.
    fn enable_journal(&mut self);

    /// Detaches the in-memory journal ([`MetadataDb::take_journal`]).
    /// The persistent store returns a *copy* of its tail and keeps
    /// journaling — its durability depends on it.
    fn take_journal(&mut self) -> Option<Journal>;

    /// Arms a simulated crash ([`MetadataDb::inject_crash_after`]).
    fn inject_crash_after(&mut self, after: u32);

    /// Disarms a pending injected crash ([`MetadataDb::disarm_crash`]).
    fn disarm_crash(&mut self);

    // -- lifecycle -----------------------------------------------------

    /// Replaces the entire database state (dump-loader plumbing). The
    /// persistent store treats this as a new epoch: it checkpoints a
    /// fresh snapshot of the replacement state.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if persisting the replacement fails.
    fn replace_db(&mut self, db: MetadataDb) -> Result<(), StoreError>;

    /// Forces buffered state to durable storage (no-op for the arena).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem trouble.
    fn checkpoint(&mut self) -> Result<(), StoreError>;

    /// Folds the journal tail into a fresh snapshot and **bumps the
    /// store generation** — handles minted before the call become
    /// stale. See the [module docs](self) for the crash-consistent
    /// swap protocol.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the store has crashed or persisting fails.
    fn compact(&mut self) -> Result<CompactionStats, StoreError>;

    /// An owned deep copy. Cloning a [`PersistentStore`] yields a
    /// *detached in-memory* [`ArenaStore`] over the same state — two
    /// live writers on one tail file would tear it — which is exactly
    /// the what-if-fork semantics the chaos suite's cloned sessions
    /// want.
    fn boxed_clone(&self) -> Box<dyn Store>;

    /// The on-disk directory, for persistent backends.
    fn path(&self) -> Option<&Path>;

    /// Why the store refuses writes, if it has wedged itself after a
    /// failed durability operation. `None` for healthy stores and for
    /// backends that never wedge (the arena).
    fn wedged_reason(&self) -> Option<&str> {
        None
    }
}

impl Clone for Box<dyn Store> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

// ----------------------------------------------------------------------
// Arena backend
// ----------------------------------------------------------------------

/// The in-memory backend: a plain [`MetadataDb`] arena. This is the
/// storage engine every pre-workspace `Hercules` session used, now
/// behind the [`Store`] seam.
#[derive(Debug, Clone, Default)]
pub struct ArenaStore {
    db: MetadataDb,
}

impl ArenaStore {
    /// Wraps an existing database.
    pub fn new(db: MetadataDb) -> Self {
        ArenaStore { db }
    }

    /// Consumes the store, yielding the database.
    pub fn into_db(self) -> MetadataDb {
        self.db
    }
}

impl Store for ArenaStore {
    fn db(&self) -> &MetadataDb {
        &self.db
    }

    fn declare_entity_container(&mut self, class: &str) {
        self.db.declare_entity_container(class);
    }

    fn declare_schedule_container(&mut self, activity: &str, output_class: &str) {
        self.db.declare_schedule_container(activity, output_class);
    }

    fn store_data(&mut self, name: &str, content: Vec<u8>) -> DataObjectId {
        self.db.store_data(name, content)
    }

    fn begin_run(
        &mut self,
        activity: &str,
        operator: &str,
        started_at: WorkDays,
    ) -> Result<RunId, MetadataError> {
        self.db.begin_run(activity, operator, started_at)
    }

    fn finish_run(
        &mut self,
        run: RunId,
        output_class: &str,
        data: DataObjectId,
        finished_at: WorkDays,
        inputs: &[EntityInstanceId],
    ) -> Result<EntityInstanceId, MetadataError> {
        self.db
            .finish_run(run, output_class, data, finished_at, inputs)
    }

    fn supply_input(
        &mut self,
        class: &str,
        creator: &str,
        created_at: WorkDays,
        data: DataObjectId,
    ) -> Result<EntityInstanceId, MetadataError> {
        self.db.supply_input(class, creator, created_at, data)
    }

    fn begin_planning(&mut self, at: WorkDays) -> PlanningSessionId {
        self.db.begin_planning(at)
    }

    fn plan_activity(
        &mut self,
        session: PlanningSessionId,
        activity: &str,
        planned_start: WorkDays,
        planned_duration: WorkDays,
    ) -> Result<ScheduleInstanceId, MetadataError> {
        self.db
            .plan_activity(session, activity, planned_start, planned_duration)
    }

    fn assign(
        &mut self,
        schedule: ScheduleInstanceId,
        designer: &str,
    ) -> Result<(), MetadataError> {
        self.db.assign(schedule, designer)
    }

    fn link_completion(
        &mut self,
        schedule: ScheduleInstanceId,
        entity: EntityInstanceId,
    ) -> Result<(), MetadataError> {
        self.db.link_completion(schedule, entity)
    }

    fn enable_journal(&mut self) {
        self.db.enable_journal();
    }

    fn take_journal(&mut self) -> Option<Journal> {
        self.db.take_journal()
    }

    fn inject_crash_after(&mut self, after: u32) {
        self.db.inject_crash_after(after);
    }

    fn disarm_crash(&mut self) {
        self.db.disarm_crash();
    }

    fn replace_db(&mut self, db: MetadataDb) -> Result<(), StoreError> {
        self.db = db;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn compact(&mut self) -> Result<CompactionStats, StoreError> {
        self.db.check_alive()?;
        let had_journal = self.db.journal().is_some();
        let (ops_before, bytes_before) = match self.db.journal() {
            Some(j) => (j.len(), j.to_text().len() as u64),
            None => (0, 0),
        };
        // Reload from our own dump at a bumped generation: slots are
        // preserved (dumps are allocation-ordered) but every handle
        // minted before this call is now stale.
        let generation = self.db.generation() + 1;
        let dump = self.db.dump();
        let mut fresh = MetadataDb::load_at(&dump, generation).map_err(StoreError::Load)?;
        let compacted = Journal::compacted_from(&fresh);
        let (ops_after, bytes_after) = if had_journal {
            let len = compacted.len();
            let bytes = compacted.to_text().len() as u64;
            fresh.journal = Some(compacted);
            (len, bytes)
        } else {
            (0, 0)
        };
        self.db = fresh;
        Ok(CompactionStats {
            tail_ops_before: ops_before,
            tail_ops_after: ops_after,
            bytes_before,
            bytes_after,
            generation,
        })
    }

    fn boxed_clone(&self) -> Box<dyn Store> {
        Box::new(self.clone())
    }

    fn path(&self) -> Option<&Path> {
        None
    }
}

// ----------------------------------------------------------------------
// Persistent backend
// ----------------------------------------------------------------------

pub(crate) const CURRENT: &str = "CURRENT";

pub(crate) fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq}.txt")
}

pub(crate) fn tail_name(seq: u64) -> String {
    format!("tail-{seq}.journal")
}

/// The snapshot + journal-tail backend. See the [module docs](self)
/// for the on-disk layout and protocols.
#[derive(Debug)]
pub struct PersistentStore {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    db: MetadataDb,
    /// Live sequence number (`CURRENT`'s content); also the store
    /// generation.
    seq: u64,
    /// How many of the in-memory journal's ops are already in the tail
    /// file.
    tail_ops: usize,
    /// The framing the live tail file uses for appends (v1 only when
    /// the store was opened from a pre-durability root).
    framing: Framing,
    /// When set, durability is lost (a tail append failed): every
    /// fallible mutation is refused with the stored reason.
    wedged: Option<String>,
}

impl PersistentStore {
    /// Creates a new store at `dir` (made if absent) holding `db` as
    /// its first snapshot, on the real filesystem. Fails if `dir`
    /// already contains a store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem trouble or an existing store.
    pub fn create(dir: impl Into<PathBuf>, db: MetadataDb) -> Result<PersistentStore, StoreError> {
        Self::create_on(RealVfs::arc(), dir, db)
    }

    /// [`create`](Self::create) over an explicit [`Vfs`] — the seam
    /// the chaos suite points at [`simtools::vfs::FaultVfs`].
    ///
    /// # Errors
    ///
    /// As [`create`](Self::create).
    pub fn create_on(
        vfs: Arc<dyn Vfs>,
        dir: impl Into<PathBuf>,
        db: MetadataDb,
    ) -> Result<PersistentStore, StoreError> {
        Self::create_with_framing(vfs, dir, db, Framing::V2)
    }

    /// [`create_on`](Self::create_on) pinned to a specific wire
    /// framing. v1 exists for compatibility fixtures and the B15
    /// checksum-overhead benchmark; production stores are v2.
    ///
    /// # Errors
    ///
    /// As [`create`](Self::create).
    pub fn create_with_framing(
        vfs: Arc<dyn Vfs>,
        dir: impl Into<PathBuf>,
        db: MetadataDb,
        framing: Framing,
    ) -> Result<PersistentStore, StoreError> {
        let dir = dir.into();
        vfs.create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let current = dir.join(CURRENT);
        if vfs.exists(&current) {
            return Err(io_err(&current, "store already exists"));
        }
        let mut db = db;
        // The persistent store always journals; the snapshot covers the
        // declares, so the tail starts truly empty (no re-declares).
        db.journal = Some(Journal::new());
        let seq = 0u64;
        write_atomic(
            &*vfs,
            &dir.join(snapshot_name(seq)),
            &framing.encode_snapshot(&db.dump()),
        )?;
        write_atomic(&*vfs, &dir.join(tail_name(seq)), &framing.empty_tail())?;
        write_atomic(&*vfs, &current, &format!("{seq}\n"))?;
        Ok(PersistentStore {
            vfs,
            dir,
            db,
            seq,
            tail_ops: 0,
            framing,
            wedged: None,
        })
    }

    /// Opens an existing store on the real filesystem: loads
    /// `snapshot-N` at generation `N`, replays the redo ops in
    /// `tail-N` (tolerating one torn trailing record from a mid-append
    /// death), and resumes appending.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory holds no store, or
    /// [`StoreError::Corruption`] if a file is damaged beyond the
    /// self-healing torn-tail case.
    pub fn open(dir: impl Into<PathBuf>) -> Result<PersistentStore, StoreError> {
        Self::open_on(RealVfs::arc(), dir)
    }

    /// [`open`](Self::open) over an explicit [`Vfs`].
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_on(
        vfs: Arc<dyn Vfs>,
        dir: impl Into<PathBuf>,
    ) -> Result<PersistentStore, StoreError> {
        let dir = dir.into();
        let mut span = obs::span!("store.open");
        let current = dir.join(CURRENT);
        let current_text = vfs
            .read_to_string(&current)
            .map_err(|e| io_err(&current, e))?;
        let seq: u64 = current_text.trim().parse().map_err(|_| {
            corrupt(
                &current,
                CorruptionKind::BadCurrent,
                format!("not a sequence number: {:?}", current_text.trim()),
            )
        })?;
        let snap_path = dir.join(snapshot_name(seq));
        let snapshot_raw = read_store_file(&*vfs, &snap_path)?;
        let body = decode_snapshot_file(&snap_path, &snapshot_raw)?;
        let generation = generation_of(seq);
        let mut db = MetadataDb::load_at(body, generation)
            .map_err(|e| corrupt(&snap_path, CorruptionKind::SnapshotLoad, e.to_string()))?;
        let tail_path = dir.join(tail_name(seq));
        let tail_text = read_store_file(&*vfs, &tail_path)?;
        let scan = framing::decode_tail(&tail_text);
        match &scan.issue {
            None => {}
            // A torn trailing record must be *truncated* on disk, not
            // merely skipped — otherwise the next append would splice
            // onto the partial record and corrupt the log for the next
            // open.
            Some(TailIssue::Torn { .. }) => {
                let mut kept = scan.framing.empty_tail();
                for op in scan.journal.ops() {
                    kept.push_str(&scan.framing.encode_tail_record(&op.to_line()));
                }
                write_atomic(&*vfs, &tail_path, &kept)?;
            }
            Some(TailIssue::BadHeader) => {
                return Err(corrupt(
                    &tail_path,
                    CorruptionKind::BadHeader,
                    "unrecognized tail header",
                ))
            }
            Some(issue @ TailIssue::Corrupt { .. }) => {
                return Err(corrupt(
                    &tail_path,
                    CorruptionKind::CorruptRecord,
                    issue.to_string(),
                ))
            }
        }
        db.apply_journal(&scan.journal)
            .map_err(|e| corrupt(&tail_path, CorruptionKind::TailReplay, e.to_string()))?;
        span.record("seq", seq);
        span.record("tail_ops", scan.journal.len());
        let tail_ops = scan.journal.len();
        let framing = scan.framing;
        db.journal = Some(scan.journal);
        Ok(PersistentStore {
            vfs,
            dir,
            db,
            seq,
            tail_ops,
            framing,
            wedged: None,
        })
    }

    /// The live sequence number (and store generation).
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    /// The framing new tail appends use (v1 only on a pre-durability
    /// root that has not compacted yet).
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Why the store is wedged, if it is — see the
    /// [module docs](self#wedging).
    pub fn wedged_reason(&self) -> Option<&str> {
        self.wedged.as_deref()
    }

    /// Refuses fallible work on a wedged store.
    fn check_wedged(&self) -> Result<(), MetadataError> {
        match &self.wedged {
            Some(reason) => Err(MetadataError::StorageFailed(reason.clone())),
            None => Ok(()),
        }
    }

    /// Flushes any journal ops not yet in the tail file. Runs after
    /// *every* mutation — including one torn by an injected crash,
    /// whose op was appended before the simulated death and therefore
    /// must reach disk, exactly like a real WAL. If the append fails,
    /// the store wedges (see the [module docs](self#wedging)) instead
    /// of panicking: durability is gone, so every further fallible
    /// mutation is refused with [`MetadataError::StorageFailed`].
    fn sync_tail(&mut self) {
        if self.wedged.is_some() {
            return;
        }
        let journal = self
            .db
            .journal
            .as_ref()
            .expect("persistent store always journals");
        let pending = &journal.ops()[self.tail_ops..];
        if pending.is_empty() {
            return;
        }
        let mut buf = String::new();
        for op in pending {
            buf.push_str(&self.framing.encode_tail_record(&op.to_line()));
        }
        let path = self.dir.join(tail_name(self.seq));
        match self.vfs.append(&path, buf.as_bytes()) {
            Ok(()) => self.tail_ops = journal.len(),
            Err(e) => {
                let reason = format!("tail append failed at {}: {e}", path.display());
                obs::event!("store.wedged", path = path.display().to_string());
                self.wedged = Some(reason);
            }
        }
    }

    fn file_size(&self, name: &str) -> u64 {
        self.vfs.file_size(&self.dir.join(name))
    }

    /// Best-effort removal of a generation's files.
    fn remove_generation(&self, seq: u64) {
        let _ = self.vfs.remove_file(&self.dir.join(snapshot_name(seq)));
        let _ = self.vfs.remove_file(&self.dir.join(tail_name(seq)));
    }
}

/// Sequence → generation. Sequences are u64 for on-disk headroom while
/// id stamps stay a compact u32; 2³² compactions of one project is
/// beyond plausible, but saturate rather than wrap if it happens.
pub(crate) fn generation_of(seq: u64) -> u32 {
    u32::try_from(seq).unwrap_or(u32::MAX)
}

/// Reads a store file, classifying a missing or non-text file as the
/// corruption it is (the file is named by `CURRENT`, so its absence is
/// damage, not a fresh directory).
pub(crate) fn read_store_file(vfs: &dyn Vfs, path: &Path) -> Result<String, StoreError> {
    vfs.read_to_string(path).map_err(|e| match e.kind() {
        std::io::ErrorKind::NotFound => corrupt(
            path,
            CorruptionKind::MissingFile,
            "referenced by CURRENT but absent",
        ),
        std::io::ErrorKind::InvalidData => {
            corrupt(path, CorruptionKind::NotText, "not valid UTF-8")
        }
        _ => io_err(path, e),
    })
}

/// Unwraps + checksum-verifies a snapshot file, mapping framing issues
/// to typed corruption.
pub(crate) fn decode_snapshot_file<'a>(path: &Path, raw: &'a str) -> Result<&'a str, StoreError> {
    match framing::decode_snapshot(raw) {
        Ok((_, body)) => Ok(body),
        Err(SnapshotIssue::BadHeader) => Err(corrupt(
            path,
            CorruptionKind::BadHeader,
            "unrecognized snapshot header",
        )),
        Err(issue @ SnapshotIssue::ChecksumMismatch { .. }) => Err(corrupt(
            path,
            CorruptionKind::ChecksumMismatch,
            issue.to_string(),
        )),
    }
}

/// Writes `content` crash-consistently *and durably*: temp file in the
/// same directory, fsync of the temp file, atomic rename over the
/// target, fsync of the parent directory (without which the rename is
/// not durable — the classic hole). The temp file is removed on any
/// failure.
pub(crate) fn write_atomic(vfs: &dyn Vfs, path: &Path, content: &str) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    let result = (|| {
        vfs.write(&tmp, content.as_bytes())
            .map_err(|e| io_err(&tmp, e))?;
        vfs.sync_file(&tmp).map_err(|e| io_err(&tmp, e))?;
        vfs.rename(&tmp, path).map_err(|e| io_err(path, e))?;
        if let Some(parent) = path.parent() {
            if parent != Path::new("") {
                vfs.sync_dir(parent).map_err(|e| io_err(parent, e))?;
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

impl Store for PersistentStore {
    fn db(&self) -> &MetadataDb {
        &self.db
    }

    fn declare_entity_container(&mut self, class: &str) {
        self.db.declare_entity_container(class);
        self.sync_tail();
    }

    fn declare_schedule_container(&mut self, activity: &str, output_class: &str) {
        self.db.declare_schedule_container(activity, output_class);
        self.sync_tail();
    }

    fn store_data(&mut self, name: &str, content: Vec<u8>) -> DataObjectId {
        let id = self.db.store_data(name, content);
        self.sync_tail();
        id
    }

    fn begin_run(
        &mut self,
        activity: &str,
        operator: &str,
        started_at: WorkDays,
    ) -> Result<RunId, MetadataError> {
        self.check_wedged()?;
        let r = self.db.begin_run(activity, operator, started_at);
        self.sync_tail();
        r
    }

    fn finish_run(
        &mut self,
        run: RunId,
        output_class: &str,
        data: DataObjectId,
        finished_at: WorkDays,
        inputs: &[EntityInstanceId],
    ) -> Result<EntityInstanceId, MetadataError> {
        self.check_wedged()?;
        let r = self
            .db
            .finish_run(run, output_class, data, finished_at, inputs);
        self.sync_tail();
        r
    }

    fn supply_input(
        &mut self,
        class: &str,
        creator: &str,
        created_at: WorkDays,
        data: DataObjectId,
    ) -> Result<EntityInstanceId, MetadataError> {
        self.check_wedged()?;
        let r = self.db.supply_input(class, creator, created_at, data);
        self.sync_tail();
        r
    }

    fn begin_planning(&mut self, at: WorkDays) -> PlanningSessionId {
        let id = self.db.begin_planning(at);
        self.sync_tail();
        id
    }

    fn plan_activity(
        &mut self,
        session: PlanningSessionId,
        activity: &str,
        planned_start: WorkDays,
        planned_duration: WorkDays,
    ) -> Result<ScheduleInstanceId, MetadataError> {
        self.check_wedged()?;
        let r = self
            .db
            .plan_activity(session, activity, planned_start, planned_duration);
        self.sync_tail();
        r
    }

    fn assign(
        &mut self,
        schedule: ScheduleInstanceId,
        designer: &str,
    ) -> Result<(), MetadataError> {
        self.check_wedged()?;
        let r = self.db.assign(schedule, designer);
        self.sync_tail();
        r
    }

    fn link_completion(
        &mut self,
        schedule: ScheduleInstanceId,
        entity: EntityInstanceId,
    ) -> Result<(), MetadataError> {
        self.check_wedged()?;
        let r = self.db.link_completion(schedule, entity);
        self.sync_tail();
        r
    }

    fn enable_journal(&mut self) {
        // Always on: the journal *is* the durability mechanism.
    }

    fn take_journal(&mut self) -> Option<Journal> {
        // Hand out a copy; detaching the live journal would silently
        // stop persisting.
        self.db.journal().cloned()
    }

    fn inject_crash_after(&mut self, after: u32) {
        self.db.inject_crash_after(after);
    }

    fn disarm_crash(&mut self) {
        self.db.disarm_crash();
    }

    fn replace_db(&mut self, db: MetadataDb) -> Result<(), StoreError> {
        self.check_wedged()?;
        // A wholesale state replacement starts a new epoch on disk,
        // always in the current framing (v2 upgrade point).
        let next = self.seq + 1;
        let mut db = db;
        db.generation = generation_of(next);
        db.journal = Some(Journal::new());
        let result = (|| {
            write_atomic(
                &*self.vfs,
                &self.dir.join(snapshot_name(next)),
                &Framing::V2.encode_snapshot(&db.dump()),
            )?;
            write_atomic(
                &*self.vfs,
                &self.dir.join(tail_name(next)),
                &Framing::V2.empty_tail(),
            )?;
            write_atomic(&*self.vfs, &self.dir.join(CURRENT), &format!("{next}\n"))
        })();
        if let Err(e) = result {
            // Leave the live epoch untouched; drop the half-written one.
            self.remove_generation(next);
            return Err(e);
        }
        // Keep the superseded epoch as the fsck fallback; drop the one
        // before it.
        if self.seq > 0 {
            self.remove_generation(self.seq - 1);
        }
        self.db = db;
        self.seq = next;
        self.tail_ops = 0;
        self.framing = Framing::V2;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<(), StoreError> {
        if let Some(reason) = &self.wedged {
            return Err(io_err(&self.dir.join(tail_name(self.seq)), reason));
        }
        self.vfs
            .sync_file(&self.dir.join(tail_name(self.seq)))
            .map_err(|e| io_err(&self.dir.join(tail_name(self.seq)), e))
    }

    fn wedged_reason(&self) -> Option<&str> {
        self.wedged.as_deref()
    }

    fn compact(&mut self) -> Result<CompactionStats, StoreError> {
        self.db.check_alive()?;
        self.check_wedged()?;
        let mut span = obs::span!("store.compact", seq = self.seq);
        let bytes_before =
            self.file_size(&snapshot_name(self.seq)) + self.file_size(&tail_name(self.seq));
        let tail_ops_before = self.tail_ops;

        // 1. Fresh snapshot + empty tail at the next sequence — always
        //    v2, which is how a v1 root upgrades.
        let next = self.seq + 1;
        let dump = self.db.dump();
        let result = (|| {
            write_atomic(
                &*self.vfs,
                &self.dir.join(snapshot_name(next)),
                &Framing::V2.encode_snapshot(&dump),
            )?;
            write_atomic(
                &*self.vfs,
                &self.dir.join(tail_name(next)),
                &Framing::V2.empty_tail(),
            )?;
            // 2. Commit point: CURRENT now names the new sequence. A
            //    crash on either side of this rename leaves a complete
            //    store.
            write_atomic(&*self.vfs, &self.dir.join(CURRENT), &format!("{next}\n"))
        })();
        if let Err(e) = result {
            // Failed before the commit point: the live epoch is intact.
            // Clean up whatever half of the next epoch was written
            // (write_atomic already removed its own temp file).
            self.remove_generation(next);
            return Err(e);
        }
        // 3. Keep the superseded epoch as the fsck fallback state;
        //    best-effort removal of the one before it.
        if self.seq > 0 {
            self.remove_generation(self.seq - 1);
        }

        // 4. Reload at the bumped generation: identical state, fresh
        //    handle stamps — ids from before this call are now stale.
        let generation = generation_of(next);
        let mut db = MetadataDb::load_at(&dump, generation)?;
        db.journal = Some(Journal::new());
        self.db = db;
        self.seq = next;
        self.tail_ops = 0;
        self.framing = Framing::V2;

        let bytes_after = self.file_size(&snapshot_name(next)) + self.file_size(&tail_name(next));
        span.record("tail_ops_folded", tail_ops_before);
        span.record("bytes_after", bytes_after);
        Ok(CompactionStats {
            tail_ops_before,
            tail_ops_after: 0,
            bytes_before,
            bytes_after,
            generation,
        })
    }

    fn boxed_clone(&self) -> Box<dyn Store> {
        // Detach: two writers on one tail file would interleave.
        let mut db = self.db.clone();
        db.crashed = false;
        db.crash_countdown = None;
        Box::new(ArenaStore::new(db))
    }

    fn path(&self) -> Option<&Path> {
        Some(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::vfs::{FaultVfs, MemVfs, VfsFaultPlan};
    use std::fs;
    use std::io::Write as _;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "schedflow-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed_db() -> MetadataDb {
        MetadataDb::for_schema(&examples::circuit_design())
    }

    fn mutate(store: &mut dyn Store) -> ScheduleInstanceId {
        let s = store.begin_planning(WorkDays::ZERO);
        let sc = store
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        store.assign(sc, "alice").unwrap();
        let data = store.store_data("v1.net", b"module".to_vec());
        let run = store.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let e = store
            .finish_run(run, "netlist", data, WorkDays::new(1.0), &[])
            .unwrap();
        store.link_completion(sc, e).unwrap();
        sc
    }

    #[test]
    fn persistent_roundtrip_reopen() {
        let dir = temp_dir("roundtrip");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        let dump = store.db().dump();
        drop(store);
        let reopened = PersistentStore::open(&dir).unwrap();
        assert_eq!(reopened.db().dump(), dump);
        reopened.db().check_invariants().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_line_is_dropped_on_open() {
        let dir = temp_dir("torn");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        let dump = store.db().dump();
        drop(store);
        // Simulate a process dying mid-append: a partial final line.
        let tail = dir.join(tail_name(0));
        let mut f = fs::OpenOptions::new().append(true).open(&tail).unwrap();
        f.write_all(b"0badc0de begin-run Create al").unwrap();
        drop(f);
        let mut reopened = PersistentStore::open(&dir).unwrap();
        assert_eq!(reopened.db().dump(), dump);
        // The torn line must be *truncated* on open, not merely
        // skipped: new appends would otherwise splice onto the partial
        // line and corrupt the log for the next open.
        reopened
            .begin_run("Simulate", "bob", WorkDays::ZERO)
            .unwrap();
        let dump = reopened.db().dump();
        drop(reopened);
        let again = PersistentStore::open(&dir).unwrap();
        assert_eq!(again.db().dump(), dump);
        again.db().check_invariants().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_op_survives_reopen() {
        let dir = temp_dir("crash");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        let runs_before = store.db().runs().len();
        store.inject_crash_after(0);
        let err = store
            .begin_run("Simulate", "bob", WorkDays::new(1.0))
            .unwrap_err();
        assert_eq!(err, MetadataError::InjectedCrash);
        drop(store);
        // The op was appended (write-ahead) before the simulated death,
        // so reopening redoes it.
        let reopened = PersistentStore::open(&dir).unwrap();
        assert_eq!(reopened.db().runs().len(), runs_before + 1);
        reopened.db().check_invariants().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_tail_and_staleness_bites() {
        let dir = temp_dir("compact");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        let sc = mutate(&mut store);
        let dump = store.db().dump();
        let stats = store.compact().unwrap();
        assert!(stats.tail_ops_before > 0);
        assert_eq!(stats.tail_ops_after, 0);
        assert_eq!(stats.generation, 1);
        assert_eq!(store.db().dump(), dump, "compaction must not change state");
        // Handles from before the compaction are stale now.
        assert!(matches!(
            store.assign(sc, "bob"),
            Err(MetadataError::StaleHandle(_))
        ));
        // Reopening the compacted store yields byte-identical state.
        drop(store);
        let reopened = PersistentStore::open(&dir).unwrap();
        assert_eq!(reopened.db().dump(), dump);
        assert_eq!(reopened.sequence(), 1);
        // And the store keeps working at the new generation.
        let mut reopened = reopened;
        let sc2 = reopened.db().schedule_container("Create").unwrap()[0];
        // Container handles were re-minted at generation 1 by load_at.
        reopened.assign(sc2, "bob").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_keeps_previous_generation_as_fallback() {
        let dir = temp_dir("fallback");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        store.compact().unwrap();
        // Generation 0 files survive as the fsck fallback...
        assert!(dir.join(snapshot_name(0)).exists());
        assert!(dir.join(snapshot_name(1)).exists());
        store.begin_planning(WorkDays::new(3.0));
        store.compact().unwrap();
        // ...and a further compaction retires them, keeping exactly one
        // generation back.
        assert!(!dir.join(snapshot_name(0)).exists());
        assert!(!dir.join(tail_name(0)).exists());
        assert!(dir.join(snapshot_name(1)).exists());
        assert!(dir.join(snapshot_name(2)).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arena_compact_shrinks_journal_and_bumps_generation() {
        let mut store = ArenaStore::new(seed_db());
        store.enable_journal();
        let sc = mutate(&mut store);
        // A torn op inflates the live journal relative to applied state.
        store.inject_crash_after(0);
        let _ = store.begin_run("Simulate", "bob", WorkDays::new(1.0));
        store.disarm_crash();
        // compact() on a crashed arena is refused...
        assert!(matches!(
            store.compact(),
            Err(StoreError::Metadata(MetadataError::InjectedCrash))
        ));
        // ...so recover first, as a real session would.
        let journal = store.take_journal().unwrap();
        let recovered = MetadataDb::recover(&journal).unwrap();
        let mut store = ArenaStore::new(recovered);
        store.enable_journal();
        let dump = store.db().dump();
        let stats = store.compact().unwrap();
        assert_eq!(store.db().dump(), dump);
        assert_eq!(store.db().generation(), stats.generation);
        assert!(store.db().journal().is_some());
        assert!(matches!(
            store.assign(sc, "bob"),
            Err(MetadataError::StaleHandle(_))
        ));
        // The compacted journal still recovers the same state.
        let j = store.db().journal().unwrap();
        assert_eq!(MetadataDb::recover(j).unwrap().dump(), dump);
    }

    #[test]
    fn boxed_clone_of_persistent_store_is_detached() {
        let dir = temp_dir("clone");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        let mut fork = store.boxed_clone();
        assert!(fork.path().is_none(), "clone must not share the tail file");
        fork.begin_planning(WorkDays::new(5.0));
        assert_ne!(fork.db().dump(), store.db().dump());
        fs::remove_dir_all(&dir).unwrap();
    }

    // -- durability-layer tests (Vfs seam, framing, wedging) -----------

    fn mem_store(dir: &str) -> (Arc<MemVfs>, PersistentStore) {
        let mem = MemVfs::new();
        let store =
            PersistentStore::create_on(mem.clone() as Arc<dyn Vfs>, dir, seed_db()).unwrap();
        (mem, store)
    }

    #[test]
    fn mem_vfs_roundtrip_matches_real_backend() {
        let (mem, mut store) = mem_store("/proj");
        mutate(&mut store);
        let dump = store.db().dump();
        drop(store);
        let reopened = PersistentStore::open_on(mem, "/proj").unwrap();
        assert_eq!(reopened.db().dump(), dump);
        reopened.db().check_invariants().unwrap();
    }

    #[test]
    fn tail_append_failure_wedges_instead_of_panicking() {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(mem.clone(), VfsFaultPlan::none());
        let mut store =
            PersistentStore::create_on(faulty.clone() as Arc<dyn Vfs>, "/proj", seed_db()).unwrap();
        let s = store.begin_planning(WorkDays::ZERO);
        store
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        let persisted_dump = store.db().dump();
        // Every write from here hits ENOSPC.
        faulty.arm_enospc_after(0);
        // The wedging op itself applied in memory before its append
        // failed, so it reports success — but the store is now wedged
        // and refuses every further fallible mutation.
        store.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        assert!(store.wedged_reason().is_some());
        faulty.disarm();
        let err = store
            .begin_run("Create", "alice", WorkDays::new(0.5))
            .unwrap_err();
        assert!(matches!(err, MetadataError::StorageFailed(_)));
        // checkpoint and compact are refused too.
        assert!(store.checkpoint().is_err());
        assert!(store.compact().is_err());
        // Reads still serve.
        assert_eq!(store.db().schedule_count(), 1);
        // Reopen resumes from the durable prefix.
        drop(store);
        let reopened = PersistentStore::open_on(mem, "/proj").unwrap();
        assert_eq!(reopened.db().dump(), persisted_dump);
        reopened.db().check_invariants().unwrap();
    }

    #[test]
    fn corrupt_interior_record_is_a_typed_report() {
        let (mem, mut store) = mem_store("/proj");
        mutate(&mut store);
        drop(store);
        // Flip bytes inside an interior tail record.
        let tail = Path::new("/proj").join(tail_name(0));
        let text = mem.read_to_string(&tail).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        assert!(lines.len() > 3, "need interior records");
        lines[2] = lines[2].chars().rev().collect();
        mem.write(&tail, (lines.join("\n") + "\n").as_bytes())
            .unwrap();
        let err = PersistentStore::open_on(mem, "/proj").unwrap_err();
        match err {
            StoreError::Corruption(report) => {
                assert_eq!(report.kind, CorruptionKind::CorruptRecord);
                assert_eq!(report.path, tail);
            }
            other => panic!("expected a corruption report, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_bitrot_is_a_typed_report() {
        let (mem, mut store) = mem_store("/proj");
        mutate(&mut store);
        drop(store);
        let snap = Path::new("/proj").join(snapshot_name(0));
        let text = mem.read_to_string(&snap).unwrap();
        mem.write(&snap, text.replace("netlist", "netlisX").as_bytes())
            .unwrap();
        let err = PersistentStore::open_on(mem, "/proj").unwrap_err();
        assert!(matches!(
            err,
            StoreError::Corruption(CorruptionReport {
                kind: CorruptionKind::ChecksumMismatch,
                ..
            })
        ));
    }

    #[test]
    fn missing_snapshot_is_a_typed_report() {
        let (mem, store) = mem_store("/proj");
        drop(store);
        mem.remove_file(&Path::new("/proj").join(snapshot_name(0)))
            .unwrap();
        let err = PersistentStore::open_on(mem, "/proj").unwrap_err();
        assert!(matches!(
            err,
            StoreError::Corruption(CorruptionReport {
                kind: CorruptionKind::MissingFile,
                ..
            })
        ));
    }

    #[test]
    fn v1_root_reads_compatibly_and_upgrades_on_compact() {
        let mem = MemVfs::new();
        let mut store = PersistentStore::create_with_framing(
            mem.clone() as Arc<dyn Vfs>,
            "/proj",
            seed_db(),
            Framing::V1,
        )
        .unwrap();
        mutate(&mut store);
        let dump = store.db().dump();
        drop(store);
        // The files really are v1 (no checksums).
        let tail_text = mem
            .read_to_string(&Path::new("/proj").join(tail_name(0)))
            .unwrap();
        assert!(tail_text.starts_with("metadata-journal v1\n"));
        let snap_text = mem
            .read_to_string(&Path::new("/proj").join(snapshot_name(0)))
            .unwrap();
        assert!(snap_text.starts_with("metadata-db v1"));
        // Open keeps appending v1 to the v1 tail...
        let mut reopened = PersistentStore::open_on(mem.clone() as Arc<dyn Vfs>, "/proj").unwrap();
        assert_eq!(reopened.framing(), Framing::V1);
        assert_eq!(reopened.db().dump(), dump);
        reopened.begin_planning(WorkDays::new(4.0));
        // ...and compact() rewrites everything checksummed.
        reopened.compact().unwrap();
        assert_eq!(reopened.framing(), Framing::V2);
        let dump2 = reopened.db().dump();
        drop(reopened);
        let snap_text = mem
            .read_to_string(&Path::new("/proj").join(snapshot_name(1)))
            .unwrap();
        assert!(snap_text.starts_with(framing::SNAPSHOT_MAGIC_V2));
        let again = PersistentStore::open_on(mem, "/proj").unwrap();
        assert_eq!(again.framing(), Framing::V2);
        assert_eq!(again.db().dump(), dump2);
    }

    #[test]
    fn failed_compact_leaves_no_temp_files_and_store_usable() {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(mem.clone(), VfsFaultPlan::none());
        let mut store =
            PersistentStore::create_on(faulty.clone() as Arc<dyn Vfs>, "/proj", seed_db()).unwrap();
        mutate(&mut store);
        let dump = store.db().dump();
        // First write of compact (the snapshot temp) hits ENOSPC.
        faulty.arm_enospc_after(0);
        let err = store.compact().unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err:?}");
        // No temp or next-generation files leaked.
        let files = mem.list_dir(Path::new("/proj")).unwrap();
        for f in &files {
            let name = f.file_name().unwrap().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp") && !name.contains("-1."),
                "leaked {name}"
            );
        }
        // The store still works and a reopen sees pre-compaction state.
        assert_eq!(store.db().dump(), dump);
        store.begin_planning(WorkDays::new(7.0));
        let dump_after = store.db().dump();
        drop(store);
        let reopened = PersistentStore::open_on(mem, "/proj").unwrap();
        assert_eq!(reopened.db().dump(), dump_after);
        assert_eq!(reopened.sequence(), 0);
    }
}
