//! Write-ahead journaling, crash injection, recovery, and invariant
//! checking for [`MetadataDb`].
//!
//! The original Hercules sat on the Odyssey framework's object store
//! and inherited its transaction semantics; our in-memory database gets
//! the equivalent through a **redo journal**: when journaling is
//! enabled, every mutating method *appends a replayable [`JournalOp`]
//! before it applies the change*. A crash between append and apply
//! (simulated with [`MetadataDb::inject_crash_after`]) therefore never
//! loses an acknowledged mutation: [`MetadataDb::recover`] replays the
//! journal into a fresh database and redoes the appended-but-unapplied
//! tail operation. Because every op is validated against the database
//! state *before* it is appended, replay of a journal produced by a
//! live database cannot fail.
//!
//! The journal has a line-oriented text form (one op per line, hex
//! payloads, millidays timestamps — the same conventions as
//! [`export`](crate::export)) so a journaled session is diffable and
//! can serve as a golden test artifact:
//!
//! ```text
//! metadata-journal v1
//! declare-entity <class>
//! declare-schedule <activity> <output-class>
//! store-data <name-hex> <content-hex>
//! begin-run <activity> <operator> <started-md>
//! finish-run <run-idx> <class> <data-idx> <finished-md> inputs <i,j|->
//! supply-input <class> <creator> <created-md> <data-idx>
//! begin-planning <at-md>
//! plan-activity <session-idx> <activity> <start-md> <duration-md>
//! assign <sched-idx> <designer>
//! link <sched-idx> <entity-idx>
//! ```
//!
//! [`MetadataDb::check_invariants`] is the companion consistency pass:
//! it audits dense-id bounds, container membership, link referential
//! integrity, and schedule↔run date monotonicity, and underpins the
//! chaos suite's "invariants hold after every injected crash + recover"
//! property.
//!
//! # Example
//!
//! ```
//! use metadata::{Journal, MetadataDb};
//! use schema::examples;
//! use schedule::WorkDays;
//!
//! # fn main() -> Result<(), metadata::MetadataError> {
//! let mut db = MetadataDb::for_schema(&examples::circuit_design());
//! db.enable_journal();
//! let run = db.begin_run("Create", "alice", WorkDays::ZERO)?;
//! let data = db.store_data("v1.net", b"module".to_vec());
//! db.finish_run(run, "netlist", data, WorkDays::new(1.0), &[])?;
//!
//! // The journal replays to an identical database.
//! let journal = db.journal().unwrap().clone();
//! let recovered = MetadataDb::recover(&journal)?;
//! assert_eq!(recovered.dump(), db.dump());
//! recovered.check_invariants().expect("recovered db is consistent");
//!
//! // And it round-trips through the text form.
//! let reparsed = Journal::parse(&journal.to_text()).unwrap();
//! assert_eq!(reparsed, journal);
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::database::MetadataDb;
use crate::error::MetadataError;
use crate::export::{hex_decode, hex_encode, LoadError};
use crate::ids::{DataObjectId, EntityInstanceId, PlanningSessionId, RunId, ScheduleInstanceId};
use crate::objects::{from_millidays, to_millidays};

/// One replayable mutation of a [`MetadataDb`] — the redo-log record
/// appended by the corresponding mutating method before it applies.
///
/// Timestamps are stored as integer milli-days (`*_md`), the same
/// representation the database itself stores, so replay is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// [`MetadataDb::declare_entity_container`].
    DeclareEntityContainer {
        /// The entity class declared.
        class: String,
    },
    /// [`MetadataDb::declare_schedule_container`].
    DeclareScheduleContainer {
        /// The activity declared.
        activity: String,
        /// The activity's output class.
        output_class: String,
    },
    /// [`MetadataDb::store_data`].
    StoreData {
        /// File-like name of the datum.
        name: String,
        /// Raw content bytes.
        content: Vec<u8>,
    },
    /// [`MetadataDb::begin_run`].
    BeginRun {
        /// The activity being run.
        activity: String,
        /// The designer operating the tool.
        operator: String,
        /// Start offset in milli-days.
        started_md: i64,
    },
    /// [`MetadataDb::finish_run`].
    FinishRun {
        /// The run being finished.
        run: RunId,
        /// The output entity class.
        output_class: String,
        /// The produced Level-4 data object.
        data: DataObjectId,
        /// Finish offset in milli-days.
        finished_md: i64,
        /// Input instances consumed by the run.
        inputs: Vec<EntityInstanceId>,
    },
    /// [`MetadataDb::supply_input`].
    SupplyInput {
        /// The entity class supplied.
        class: String,
        /// The supplying designer.
        creator: String,
        /// Creation offset in milli-days.
        created_md: i64,
        /// The supplied Level-4 data object.
        data: DataObjectId,
    },
    /// [`MetadataDb::begin_planning`].
    BeginPlanning {
        /// Session creation offset in milli-days.
        at_md: i64,
    },
    /// [`MetadataDb::plan_activity`].
    PlanActivity {
        /// The owning planning session.
        session: PlanningSessionId,
        /// The planned activity.
        activity: String,
        /// Planned start in milli-days.
        start_md: i64,
        /// Planned duration in milli-days.
        duration_md: i64,
    },
    /// [`MetadataDb::assign`].
    Assign {
        /// The schedule instance assigned.
        schedule: ScheduleInstanceId,
        /// The designer assigned.
        designer: String,
    },
    /// [`MetadataDb::link_completion`].
    LinkCompletion {
        /// The schedule instance completed.
        schedule: ScheduleInstanceId,
        /// The declared final entity instance.
        entity: EntityInstanceId,
    },
}

fn fmt_ids(ids: &[EntityInstanceId]) -> String {
    if ids.is_empty() {
        "-".to_owned()
    } else {
        ids.iter()
            .map(|i| i.index().to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Cached [`obs::Metrics`] handles for journal telemetry — registry
/// lookup once, relaxed atomic adds afterwards (the append path runs
/// inside every mutating database method).
struct JournalMetrics {
    appends: obs::Counter,
    recoveries: obs::Counter,
    replayed: obs::Counter,
}

fn journal_metrics() -> &'static JournalMetrics {
    static METRICS: std::sync::OnceLock<JournalMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| JournalMetrics {
        appends: obs::Metrics::counter("metadata.journal.appends"),
        recoveries: obs::Metrics::counter("metadata.journal.recoveries"),
        replayed: obs::Metrics::counter("metadata.journal.replayed_ops"),
    })
}

impl JournalOp {
    /// The op's stable kind tag — the first token of its text form,
    /// used by telemetry (`journal.append` events) and tooling.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalOp::DeclareEntityContainer { .. } => "declare-entity",
            JournalOp::DeclareScheduleContainer { .. } => "declare-schedule",
            JournalOp::StoreData { .. } => "store-data",
            JournalOp::BeginRun { .. } => "begin-run",
            JournalOp::FinishRun { .. } => "finish-run",
            JournalOp::SupplyInput { .. } => "supply-input",
            JournalOp::BeginPlanning { .. } => "begin-planning",
            JournalOp::PlanActivity { .. } => "plan-activity",
            JournalOp::Assign { .. } => "assign",
            JournalOp::LinkCompletion { .. } => "link-completion",
        }
    }

    /// Renders the op as one line of the journal text form — the unit
    /// the persistent store appends to its tail file.
    pub(crate) fn to_line(&self) -> String {
        match self {
            JournalOp::DeclareEntityContainer { class } => format!("declare-entity {class}"),
            JournalOp::DeclareScheduleContainer {
                activity,
                output_class,
            } => format!("declare-schedule {activity} {output_class}"),
            JournalOp::StoreData { name, content } => format!(
                "store-data {} {}",
                hex_encode(name.as_bytes()),
                hex_encode(content)
            ),
            JournalOp::BeginRun {
                activity,
                operator,
                started_md,
            } => format!("begin-run {activity} {operator} {started_md}"),
            JournalOp::FinishRun {
                run,
                output_class,
                data,
                finished_md,
                inputs,
            } => format!(
                "finish-run {} {output_class} {} {finished_md} inputs {}",
                run.index(),
                data.index(),
                fmt_ids(inputs)
            ),
            JournalOp::SupplyInput {
                class,
                creator,
                created_md,
                data,
            } => format!(
                "supply-input {class} {creator} {created_md} {}",
                data.index()
            ),
            JournalOp::BeginPlanning { at_md } => format!("begin-planning {at_md}"),
            JournalOp::PlanActivity {
                session,
                activity,
                start_md,
                duration_md,
            } => format!(
                "plan-activity {} {activity} {start_md} {duration_md}",
                session.index()
            ),
            JournalOp::Assign { schedule, designer } => {
                format!("assign {} {designer}", schedule.index())
            }
            JournalOp::LinkCompletion { schedule, entity } => {
                format!("link {} {}", schedule.index(), entity.index())
            }
        }
    }
}

/// An append-only redo log of [`JournalOp`]s — see the
/// [module docs](self) for the recovery protocol and text format.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    ops: Vec<JournalOp>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op (the write-ahead step of a mutation).
    pub(crate) fn record(&mut self, op: JournalOp) {
        self.ops.push(op);
    }

    /// All ops, oldest first.
    pub fn ops(&self) -> &[JournalOp] {
        &self.ops
    }

    /// Number of ops recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The first `n` ops as a new journal (saturating) — a simulated
    /// torn log, used by the prefix-replay recovery properties.
    pub fn prefix(&self, n: usize) -> Journal {
        Journal {
            ops: self.ops[..n.min(self.ops.len())].to_vec(),
        }
    }

    /// Serialises to the line-oriented text form.
    pub fn to_text(&self) -> String {
        let mut out = String::from("metadata-journal v1\n");
        for op in &self.ops {
            let _ = writeln!(out, "{}", op.to_line());
        }
        out
    }

    /// Synthesises the *minimal* redo journal whose replay reproduces
    /// `db` — the compaction emission. [`MetadataDb::recover`] of the
    /// returned journal yields a database whose
    /// [`dump`](MetadataDb::dump) is byte-identical to `db`'s.
    ///
    /// Compared to the journal a live session accumulated, the
    /// compacted form drops:
    ///
    /// * ops that were appended but never applied (the torn tail of
    ///   every injected crash in a chaos session), and
    /// * redundant container re-declarations.
    ///
    /// Emission order mirrors [`MetadataDb::dump`] (declares, data,
    /// sessions, then the execution and schedule spaces in allocation
    /// order) so replay re-allocates identical dense ids, versions,
    /// iteration counts, and provenance chains.
    pub fn compacted_from(db: &MetadataDb) -> Journal {
        let mut journal = Journal::new();
        // Declares — same order as `enable_journal`'s snapshot.
        for class in db.entity_containers.keys() {
            journal.record(JournalOp::DeclareEntityContainer {
                class: class.clone(),
            });
        }
        for activity in db.schedule_containers.keys() {
            let output_class = db
                .activity_outputs
                .get(activity)
                .cloned()
                .unwrap_or_else(|| "-".to_owned());
            journal.record(JournalOp::DeclareScheduleContainer {
                activity: activity.clone(),
                output_class,
            });
        }
        // Level-4 data, in allocation order.
        for d in &db.data {
            journal.record(JournalOp::StoreData {
                name: d.name().to_owned(),
                content: d.content().to_vec(),
            });
        }
        // Planning sessions, in allocation order (instances re-attach
        // themselves via the PlanActivity ops below).
        for session in &db.sessions {
            journal.record(JournalOp::BeginPlanning {
                at_md: to_millidays(session.created_at()),
            });
        }
        // Execution space. Entities must be created in allocation order
        // (dense ids, container versions) and runs begun in allocation
        // order (iteration counts); a run may finish *after* a
        // later-begun run finished, so walk entities and begin every
        // run up to each entity's producer on demand.
        let begin_run = |journal: &mut Journal, run: &crate::objects::Run| {
            journal.record(JournalOp::BeginRun {
                activity: run.activity().to_owned(),
                operator: run.operator().to_owned(),
                started_md: to_millidays(run.started_at()),
            });
        };
        let mut runs_begun = 0usize; // runs [0, runs_begun) already emitted
        for e in &db.entities {
            match e.produced_by() {
                Some(run_id) => {
                    while runs_begun <= run_id.index() {
                        begin_run(&mut journal, &db.runs[runs_begun]);
                        runs_begun += 1;
                    }
                    let run = &db.runs[run_id.index()];
                    journal.record(JournalOp::FinishRun {
                        run: run_id,
                        output_class: e.class().to_owned(),
                        data: e.data(),
                        finished_md: to_millidays(run.finished_at().unwrap_or(e.created_at())),
                        inputs: e.depends_on().to_vec(),
                    });
                }
                None => {
                    journal.record(JournalOp::SupplyInput {
                        class: e.class().to_owned(),
                        creator: e.creator().to_owned(),
                        created_md: to_millidays(e.created_at()),
                        data: e.data(),
                    });
                }
            }
        }
        // Runs that never finished (no output entity walked them in).
        while runs_begun < db.runs.len() {
            begin_run(&mut journal, &db.runs[runs_begun]);
            runs_begun += 1;
        }
        // Schedule space: instances in allocation order reproduce
        // per-container versions and `derived_from` chains; assignments
        // and completion links once everything they reference exists.
        for sc in &db.schedules {
            journal.record(JournalOp::PlanActivity {
                session: sc.session(),
                activity: sc.activity().to_owned(),
                start_md: to_millidays(sc.planned_start()),
                duration_md: to_millidays(sc.planned_duration()),
            });
        }
        for sc in &db.schedules {
            for designer in sc.assignees() {
                journal.record(JournalOp::Assign {
                    schedule: sc.id(),
                    designer: designer.clone(),
                });
            }
        }
        for sc in &db.schedules {
            if let Some(entity) = sc.linked_entity() {
                journal.record(JournalOp::LinkCompletion {
                    schedule: sc.id(),
                    entity,
                });
            }
        }
        journal
    }

    /// Wraps pre-parsed ops (the framing decoder's constructor).
    pub(crate) fn from_ops(ops: Vec<JournalOp>) -> Journal {
        Journal { ops }
    }

    /// Parses the text form produced by [`to_text`](Journal::to_text).
    ///
    /// # Errors
    ///
    /// [`LoadError`] on a missing header or malformed line.
    pub fn parse(text: &str) -> Result<Journal, LoadError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "metadata-journal v1")) => {}
            _ => return Err(LoadError::BadHeader),
        }
        let mut ops = Vec::new();
        for (lineno, line) in lines {
            if let Some(op) = parse_op_line(lineno, line)? {
                ops.push(op);
            }
        }
        Ok(Journal { ops })
    }
}

/// Parses one op line of the journal text form. `lineno` is the
/// 0-based line index (errors report 1-based, matching
/// [`LoadError::BadLine`]); returns `Ok(None)` for a blank line. This
/// is the per-record parser the checksummed framing layer
/// ([`crate::framing`]) shares with [`Journal::parse`].
pub(crate) fn parse_op_line(lineno: usize, line: &str) -> Result<Option<JournalOp>, LoadError> {
    let bad = |line: usize, message: &str| LoadError::BadLine {
        line: line + 1,
        message: message.to_owned(),
    };
    let parse_md = |line: usize, s: &str| -> Result<i64, LoadError> {
        s.parse()
            .map_err(|_| bad(line, &format!("bad milli-day timestamp {s:?}")))
    };
    let parse_idx = |line: usize, s: &str| -> Result<u32, LoadError> {
        s.parse()
            .map_err(|_| bad(line, &format!("bad index {s:?}")))
    };
    let mut fields = line.split_whitespace();
    let Some(kind) = fields.next() else {
        return Ok(None); // blank line
    };
    let rest: Vec<&str> = fields.collect();
    let op = match kind {
        "declare-entity" => match rest.as_slice() {
            [class] => JournalOp::DeclareEntityContainer {
                class: (*class).to_owned(),
            },
            _ => return Err(bad(lineno, "malformed declare-entity line")),
        },
        "declare-schedule" => match rest.as_slice() {
            [activity, output] => JournalOp::DeclareScheduleContainer {
                activity: (*activity).to_owned(),
                output_class: (*output).to_owned(),
            },
            _ => return Err(bad(lineno, "malformed declare-schedule line")),
        },
        "store-data" => match rest.as_slice() {
            [name, content] => {
                let name = String::from_utf8(hex_decode(name).map_err(|m| bad(lineno, &m))?)
                    .map_err(|_| bad(lineno, "data name is not UTF-8"))?;
                let content = hex_decode(content).map_err(|m| bad(lineno, &m))?;
                JournalOp::StoreData { name, content }
            }
            _ => return Err(bad(lineno, "malformed store-data line")),
        },
        "begin-run" => match rest.as_slice() {
            [activity, operator, started] => JournalOp::BeginRun {
                activity: (*activity).to_owned(),
                operator: (*operator).to_owned(),
                started_md: parse_md(lineno, started)?,
            },
            _ => return Err(bad(lineno, "malformed begin-run line")),
        },
        "finish-run" => match rest.as_slice() {
            [run, class, data, finished, "inputs", list] => {
                let mut inputs = Vec::new();
                if *list != "-" {
                    for part in list.split(',') {
                        inputs.push(EntityInstanceId::new(parse_idx(lineno, part)?, 0));
                    }
                }
                JournalOp::FinishRun {
                    run: RunId::new(parse_idx(lineno, run)?, 0),
                    output_class: (*class).to_owned(),
                    data: DataObjectId::new(parse_idx(lineno, data)?, 0),
                    finished_md: parse_md(lineno, finished)?,
                    inputs,
                }
            }
            _ => return Err(bad(lineno, "malformed finish-run line")),
        },
        "supply-input" => match rest.as_slice() {
            [class, creator, created, data] => JournalOp::SupplyInput {
                class: (*class).to_owned(),
                creator: (*creator).to_owned(),
                created_md: parse_md(lineno, created)?,
                data: DataObjectId::new(parse_idx(lineno, data)?, 0),
            },
            _ => return Err(bad(lineno, "malformed supply-input line")),
        },
        "begin-planning" => match rest.as_slice() {
            [at] => JournalOp::BeginPlanning {
                at_md: parse_md(lineno, at)?,
            },
            _ => return Err(bad(lineno, "malformed begin-planning line")),
        },
        "plan-activity" => match rest.as_slice() {
            [session, activity, start, duration] => JournalOp::PlanActivity {
                session: PlanningSessionId::new(parse_idx(lineno, session)?, 0),
                activity: (*activity).to_owned(),
                start_md: parse_md(lineno, start)?,
                duration_md: parse_md(lineno, duration)?,
            },
            _ => return Err(bad(lineno, "malformed plan-activity line")),
        },
        "assign" => match rest.as_slice() {
            [schedule, designer] => JournalOp::Assign {
                schedule: ScheduleInstanceId::new(parse_idx(lineno, schedule)?, 0),
                designer: (*designer).to_owned(),
            },
            _ => return Err(bad(lineno, "malformed assign line")),
        },
        "link" => match rest.as_slice() {
            [schedule, entity] => JournalOp::LinkCompletion {
                schedule: ScheduleInstanceId::new(parse_idx(lineno, schedule)?, 0),
                entity: EntityInstanceId::new(parse_idx(lineno, entity)?, 0),
            },
            _ => return Err(bad(lineno, "malformed link line")),
        },
        other => return Err(bad(lineno, &format!("unknown op kind {other:?}"))),
    };
    Ok(Some(op))
}

impl MetadataDb {
    /// Turns on write-ahead journaling: from now on every mutating
    /// method appends a [`JournalOp`] before applying.
    ///
    /// The current container declarations are snapshotted into the
    /// journal so replay starts from an empty database; any *instances*
    /// already present are **not** captured — enable journaling right
    /// after [`MetadataDb::for_schema`], before the first mutation.
    /// Re-enabling replaces the existing journal.
    pub fn enable_journal(&mut self) {
        let mut journal = Journal::new();
        for class in self.entity_containers.keys() {
            journal.record(JournalOp::DeclareEntityContainer {
                class: class.clone(),
            });
        }
        for activity in self.schedule_containers.keys() {
            let output_class = self
                .activity_outputs
                .get(activity)
                .cloned()
                .unwrap_or_else(|| "-".to_owned());
            journal.record(JournalOp::DeclareScheduleContainer {
                activity: activity.clone(),
                output_class,
            });
        }
        self.journal = Some(journal);
    }

    /// The write-ahead journal, if journaling is enabled.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Detaches and returns the journal, disabling journaling.
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.journal.take()
    }

    /// Appends `op` to the journal when journaling is enabled. The
    /// closure defers construction so the fault-free path pays nothing.
    pub(crate) fn journal_op(&mut self, op: impl FnOnce() -> JournalOp) {
        if let Some(journal) = self.journal.as_mut() {
            let op = op();
            obs::event!("journal.append", kind = op.kind());
            journal_metrics().appends.inc();
            journal.record(op);
        }
    }

    /// Arms a simulated crash: the `after`-th subsequent *fallible*
    /// mutation (0 = the very next one) fails with
    /// [`MetadataError::InjectedCrash`] **after** its journal append
    /// and **before** its apply — the worst-case torn write. Once the
    /// crash fires the database refuses all further fallible mutations,
    /// simulating a dead process whose journal survives on disk.
    pub fn inject_crash_after(&mut self, after: u32) {
        self.crash_countdown = Some(after);
    }

    /// Disarms a pending [`inject_crash_after`](Self::inject_crash_after).
    pub fn disarm_crash(&mut self) {
        self.crash_countdown = None;
    }

    /// Whether an injected crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.crashed
    }

    /// Fails fast if the database already crashed.
    pub(crate) fn check_alive(&self) -> Result<(), MetadataError> {
        if self.crashed {
            Err(MetadataError::InjectedCrash)
        } else {
            Ok(())
        }
    }

    /// The crash point between journal append and apply.
    pub(crate) fn crash_point(&mut self) -> Result<(), MetadataError> {
        if let Some(countdown) = self.crash_countdown.as_mut() {
            if *countdown == 0 {
                self.crashed = true;
                return Err(MetadataError::InjectedCrash);
            }
            *countdown -= 1;
        }
        Ok(())
    }

    /// Reconstructs a database by replaying `journal` from scratch
    /// (redo recovery). The recovered database has journaling disabled;
    /// call [`enable_journal`](Self::enable_journal) to resume.
    ///
    /// Ops are validated against the live database *before* they are
    /// appended, so replaying a journal produced by a live database —
    /// including one whose last op crashed between append and apply —
    /// always succeeds and yields a database at least as complete as
    /// the crashed one.
    ///
    /// # Errors
    ///
    /// [`MetadataError`] if an op does not apply cleanly (a corrupted
    /// or hand-edited journal).
    pub fn recover(journal: &Journal) -> Result<MetadataDb, MetadataError> {
        let mut span = obs::span!("journal.recover", ops = journal.len());
        journal_metrics().recoveries.inc();
        let mut db = MetadataDb::new();
        let mut applied = 0usize;
        for op in journal.ops() {
            db.apply_op(op)?;
            applied += 1;
        }
        journal_metrics().replayed.add(applied as u64);
        span.record("applied", applied);
        Ok(db)
    }

    /// Replays `journal`'s ops onto this database in order — the
    /// *tail-replay* half of snapshot + journal-tail recovery: open the
    /// last snapshot with [`load_at`](Self::load_at), then redo the
    /// tail. Ids embedded in the ops are restamped at this database's
    /// current generation before applying (journal text carries no
    /// generation), so a tail written under any prior generation
    /// replays cleanly.
    ///
    /// Returns the number of ops applied.
    ///
    /// # Errors
    ///
    /// [`MetadataError`] if an op does not apply cleanly (a tail that
    /// does not belong to this snapshot).
    pub fn apply_journal(&mut self, journal: &Journal) -> Result<usize, MetadataError> {
        let mut span = obs::span!("journal.tail_replay", ops = journal.len());
        let mut applied = 0usize;
        for op in journal.ops() {
            self.apply_op(op)?;
            applied += 1;
        }
        journal_metrics().replayed.add(applied as u64);
        span.record("applied", applied);
        Ok(applied)
    }

    fn apply_op(&mut self, op: &JournalOp) -> Result<(), MetadataError> {
        // Journal text carries slots, not generations: restamp every
        // embedded id at the database's current generation so replay
        // works regardless of how many compactions preceded the tail.
        let g = self.generation;
        match op {
            JournalOp::DeclareEntityContainer { class } => {
                self.declare_entity_container(class);
            }
            JournalOp::DeclareScheduleContainer {
                activity,
                output_class,
            } => {
                self.declare_schedule_container(activity, output_class);
            }
            JournalOp::StoreData { name, content } => {
                self.store_data(name.clone(), content.clone());
            }
            JournalOp::BeginRun {
                activity,
                operator,
                started_md,
            } => {
                self.begin_run(activity, operator, from_millidays(*started_md))?;
            }
            JournalOp::FinishRun {
                run,
                output_class,
                data,
                finished_md,
                inputs,
            } => {
                let inputs: Vec<EntityInstanceId> = inputs.iter().map(|i| i.with_gen(g)).collect();
                self.finish_run(
                    run.with_gen(g),
                    output_class,
                    data.with_gen(g),
                    from_millidays(*finished_md),
                    &inputs,
                )?;
            }
            JournalOp::SupplyInput {
                class,
                creator,
                created_md,
                data,
            } => {
                self.supply_input(
                    class,
                    creator,
                    from_millidays(*created_md),
                    data.with_gen(g),
                )?;
            }
            JournalOp::BeginPlanning { at_md } => {
                self.begin_planning(from_millidays(*at_md));
            }
            JournalOp::PlanActivity {
                session,
                activity,
                start_md,
                duration_md,
            } => {
                self.plan_activity(
                    session.with_gen(g),
                    activity,
                    from_millidays(*start_md),
                    from_millidays(*duration_md),
                )?;
            }
            JournalOp::Assign { schedule, designer } => {
                self.assign(schedule.with_gen(g), designer)?;
            }
            JournalOp::LinkCompletion { schedule, entity } => {
                self.link_completion(schedule.with_gen(g), entity.with_gen(g))?;
            }
        }
        Ok(())
    }

    /// Audits the database's structural invariants, returning every
    /// violation found (empty ⇒ consistent):
    ///
    /// * **Dense-id bounds** — every stored id points inside its vector.
    /// * **Container membership** — each entity/schedule instance sits
    ///   in exactly one container, under its own class/activity, with
    ///   version = position + 1; schedule provenance (`derived_from`)
    ///   chains to the previous container element.
    /// * **Link referential integrity** — run ↔ output entity are
    ///   mutually consistent; a completion link's entity was produced
    ///   by a run of the linked activity with the declared output
    ///   class; sessions and their instances point at each other.
    /// * **Date monotonicity** — runs finish no earlier than they
    ///   start, dependencies are created no later than their
    ///   dependents, and a completed activity's actual finish is no
    ///   earlier than its actual start.
    ///
    /// # Errors
    ///
    /// The list of human-readable violations.
    pub fn check_invariants(&self) -> Result<(), Vec<String>> {
        let mut violations: Vec<String> = Vec::new();
        let n_entities = self.entities.len();
        let n_schedules = self.schedules.len();
        let n_runs = self.runs.len();
        let n_data = self.data.len();
        let n_sessions = self.sessions.len();

        // Container membership: entities.
        let mut entity_refs = vec![0usize; n_entities];
        for (class, ids) in &self.entity_containers {
            for (pos, id) in ids.iter().enumerate() {
                if id.index() >= n_entities {
                    violations.push(format!(
                        "entity container {class:?} holds out-of-range {id}"
                    ));
                    continue;
                }
                entity_refs[id.index()] += 1;
                let e = &self.entities[id.index()];
                if e.class() != class {
                    violations.push(format!(
                        "{id} is in container {class:?} but has class {:?}",
                        e.class()
                    ));
                }
                if e.version() as usize != pos + 1 {
                    violations.push(format!(
                        "{id} at container position {pos} has version {}",
                        e.version()
                    ));
                }
            }
        }
        for (idx, count) in entity_refs.iter().enumerate() {
            if *count != 1 {
                violations.push(format!(
                    "entity{idx} appears in {count} containers (expected exactly 1)"
                ));
            }
        }

        // Container membership: schedules, including provenance chains.
        let mut schedule_refs = vec![0usize; n_schedules];
        for (activity, ids) in &self.schedule_containers {
            for (pos, id) in ids.iter().enumerate() {
                if id.index() >= n_schedules {
                    violations.push(format!(
                        "schedule container {activity:?} holds out-of-range {id}"
                    ));
                    continue;
                }
                schedule_refs[id.index()] += 1;
                let sc = &self.schedules[id.index()];
                if sc.activity() != activity {
                    violations.push(format!(
                        "{id} is in container {activity:?} but plans {:?}",
                        sc.activity()
                    ));
                }
                if sc.version() as usize != pos + 1 {
                    violations.push(format!(
                        "{id} at container position {pos} has version {}",
                        sc.version()
                    ));
                }
                let expected_prev = if pos == 0 { None } else { Some(ids[pos - 1]) };
                if sc.derived_from() != expected_prev {
                    violations.push(format!(
                        "{id} derived_from {:?} but the container predecessor is {expected_prev:?}",
                        sc.derived_from()
                    ));
                }
            }
        }
        for (idx, count) in schedule_refs.iter().enumerate() {
            if *count != 1 {
                violations.push(format!(
                    "sched{idx} appears in {count} containers (expected exactly 1)"
                ));
            }
        }

        // Entities: provenance, dependencies, data.
        for e in &self.entities {
            if let Some(run_id) = e.produced_by() {
                if run_id.index() >= n_runs {
                    violations.push(format!("{} produced_by out-of-range {run_id}", e.id()));
                } else {
                    let run = &self.runs[run_id.index()];
                    if run.output() != Some(e.id()) {
                        violations.push(format!(
                            "{} produced_by {run_id} but that run's output is {:?}",
                            e.id(),
                            run.output()
                        ));
                    }
                    if let Some(expected) = self.activity_outputs.get(run.activity()) {
                        if expected != e.class() {
                            violations.push(format!(
                                "{} has class {:?} but its producing activity {:?} outputs {expected:?}",
                                e.id(),
                                e.class(),
                                run.activity()
                            ));
                        }
                    }
                }
            }
            for dep in e.depends_on() {
                if dep.index() >= n_entities {
                    violations.push(format!("{} depends on out-of-range {dep}", e.id()));
                } else if self.entities[dep.index()].created_at().days() > e.created_at().days() {
                    violations.push(format!(
                        "{} depends on {dep}, which was created later",
                        e.id()
                    ));
                }
            }
            if e.data().index() >= n_data {
                violations.push(format!("{} references out-of-range {}", e.id(), e.data()));
            }
        }

        // Runs: activity known, timestamps ordered, output mutual.
        for run in &self.runs {
            if !self.schedule_containers.contains_key(run.activity()) {
                violations.push(format!(
                    "{} executes undeclared activity {:?}",
                    run.id(),
                    run.activity()
                ));
            }
            match (run.finished_at(), run.output()) {
                (Some(finished), Some(output)) => {
                    if finished.days() < run.started_at().days() {
                        violations.push(format!("{} finished before it started", run.id()));
                    }
                    if output.index() >= n_entities {
                        violations.push(format!("{} output is out-of-range {output}", run.id()));
                    } else if self.entities[output.index()].produced_by() != Some(run.id()) {
                        violations.push(format!(
                            "{} claims output {output}, which was not produced by it",
                            run.id()
                        ));
                    }
                }
                (Some(_), None) => {
                    violations.push(format!("{} finished without an output instance", run.id()));
                }
                (None, Some(_)) => {
                    violations.push(format!("{} has an output but never finished", run.id()));
                }
                (None, None) => {}
            }
        }

        // Schedules: session membership, completion links.
        for sc in &self.schedules {
            if sc.session().index() >= n_sessions {
                violations.push(format!(
                    "{} belongs to out-of-range {}",
                    sc.id(),
                    sc.session()
                ));
            } else if !self.sessions[sc.session().index()]
                .instances()
                .contains(&sc.id())
            {
                violations.push(format!(
                    "{} belongs to {} but the session does not list it",
                    sc.id(),
                    sc.session()
                ));
            }
            if let Some(entity) = sc.linked_entity() {
                if entity.index() >= n_entities {
                    violations.push(format!("{} links out-of-range {entity}", sc.id()));
                    continue;
                }
                let e = &self.entities[entity.index()];
                if let Some(expected) = self.activity_outputs.get(sc.activity()) {
                    if expected != e.class() {
                        violations.push(format!(
                            "{} completes {:?} with a {:?} instance (expected {expected:?})",
                            sc.id(),
                            sc.activity(),
                            e.class()
                        ));
                    }
                }
                match e.produced_by() {
                    Some(run_id) if run_id.index() < n_runs => {
                        if self.runs[run_id.index()].activity() != sc.activity() {
                            violations.push(format!(
                                "{} links {entity}, produced by a different activity",
                                sc.id()
                            ));
                        }
                    }
                    _ => violations.push(format!(
                        "{} links {entity}, which has no producing run",
                        sc.id()
                    )),
                }
            }
        }

        // Sessions point back at their instances.
        for session in &self.sessions {
            for id in session.instances() {
                if id.index() >= n_schedules {
                    violations.push(format!("{} lists out-of-range {id}", session.id()));
                } else if self.schedules[id.index()].session() != session.id() {
                    violations.push(format!(
                        "{} lists {id}, which belongs to {}",
                        session.id(),
                        self.schedules[id.index()].session()
                    ));
                }
            }
        }

        // Schedule ↔ run date monotonicity per activity.
        for activity in self.schedule_containers.keys() {
            if let (Some(start), Some(finish)) =
                (self.actual_start(activity), self.actual_finish(activity))
            {
                if finish.days() < start.days() {
                    violations.push(format!(
                        "activity {activity:?} actually finished before it started"
                    ));
                }
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedule::WorkDays;
    use schema::examples;

    fn journaled_session() -> MetadataDb {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        db.enable_journal();
        let session = db.begin_planning(WorkDays::ZERO);
        let sc = db
            .plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        db.assign(sc, "alice").unwrap();
        let stim = db.store_data("vec.stim", b"0101".to_vec());
        db.supply_input("stimuli", "bob", WorkDays::ZERO, stim)
            .unwrap();
        let run = db.begin_run("Create", "alice", WorkDays::new(0.5)).unwrap();
        let data = db.store_data("v1.net", b"module".to_vec());
        let e = db
            .finish_run(run, "netlist", data, WorkDays::new(1.5), &[])
            .unwrap();
        db.link_completion(sc, e).unwrap();
        db
    }

    #[test]
    fn replay_reproduces_live_database() {
        let db = journaled_session();
        let journal = db.journal().unwrap().clone();
        let recovered = MetadataDb::recover(&journal).unwrap();
        assert_eq!(recovered.dump(), db.dump());
        recovered.check_invariants().unwrap();
        db.check_invariants().unwrap();
    }

    #[test]
    fn text_roundtrip() {
        let db = journaled_session();
        let journal = db.journal().unwrap();
        let text = journal.to_text();
        assert!(text.starts_with("metadata-journal v1\n"));
        let reparsed = Journal::parse(&text).unwrap();
        assert_eq!(&reparsed, journal);
        // And the reparsed journal still recovers the same database.
        assert_eq!(MetadataDb::recover(&reparsed).unwrap().dump(), db.dump());
    }

    #[test]
    fn every_prefix_recovers_consistently() {
        let db = journaled_session();
        let journal = db.journal().unwrap();
        for n in 0..=journal.len() {
            let recovered = MetadataDb::recover(&journal.prefix(n)).unwrap();
            recovered.check_invariants().unwrap_or_else(|violations| {
                panic!("prefix {n} violates invariants: {violations:?}")
            });
        }
    }

    #[test]
    fn crash_between_append_and_apply_is_recoverable() {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        db.enable_journal();
        let session = db.begin_planning(WorkDays::ZERO);
        db.plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        // Crash on the next fallible mutation: append happens, apply
        // does not.
        db.inject_crash_after(0);
        let schedules_before = db.schedule_count();
        let err = db
            .plan_activity(session, "Simulate", WorkDays::new(2.0), WorkDays::new(3.0))
            .unwrap_err();
        assert_eq!(err, MetadataError::InjectedCrash);
        assert!(db.has_crashed());
        assert_eq!(db.schedule_count(), schedules_before); // not applied
                                                           // The dead process refuses further work.
        assert_eq!(
            db.begin_run("Create", "alice", WorkDays::ZERO).unwrap_err(),
            MetadataError::InjectedCrash
        );
        // Recovery redoes the appended-but-unapplied op.
        let recovered = MetadataDb::recover(db.journal().unwrap()).unwrap();
        recovered.check_invariants().unwrap();
        assert_eq!(recovered.schedule_count(), schedules_before + 1);
        assert!(recovered.current_plan("Simulate").is_some());
    }

    #[test]
    fn crash_countdown_and_disarm() {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        db.enable_journal();
        db.inject_crash_after(1);
        let session = db.begin_planning(WorkDays::ZERO); // infallible: no crash point
        db.plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(1.0))
            .unwrap(); // countdown 1 -> 0
        db.disarm_crash();
        db.plan_activity(session, "Simulate", WorkDays::ZERO, WorkDays::new(1.0))
            .unwrap(); // disarmed: no crash
        assert!(!db.has_crashed());
    }

    #[test]
    fn validation_failures_are_not_journaled() {
        let mut db = MetadataDb::for_schema(&examples::circuit_design());
        db.enable_journal();
        let before = db.journal().unwrap().len();
        assert!(db.begin_run("Fabricate", "alice", WorkDays::ZERO).is_err());
        assert_eq!(db.journal().unwrap().len(), before);
    }

    #[test]
    fn take_journal_disables_journaling() {
        let mut db = journaled_session();
        let journal = db.take_journal().unwrap();
        assert!(db.journal().is_none());
        assert!(!journal.is_empty());
        db.begin_planning(WorkDays::new(9.0)); // no journal to append to
        assert!(db.journal().is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Journal::parse("").unwrap_err(), LoadError::BadHeader);
        assert!(matches!(
            Journal::parse("metadata-journal v1\nwat 1 2\n").unwrap_err(),
            LoadError::BadLine { line: 2, .. }
        ));
        assert!(matches!(
            Journal::parse("metadata-journal v1\nbegin-run a b zz\n").unwrap_err(),
            LoadError::BadLine { .. }
        ));
    }

    #[test]
    fn compacted_journal_recovers_identical_dump() {
        let db = journaled_session();
        let compacted = Journal::compacted_from(&db);
        let recovered = MetadataDb::recover(&compacted).unwrap();
        assert_eq!(recovered.dump(), db.dump());
        recovered.check_invariants().unwrap();
        // Never longer than the live journal (declares + one op per
        // mutation), and it round-trips through text.
        assert!(compacted.len() <= db.journal().unwrap().len() + 7); // +7 declares
        let reparsed = Journal::parse(&compacted.to_text()).unwrap();
        assert_eq!(MetadataDb::recover(&reparsed).unwrap().dump(), db.dump());
    }

    #[test]
    fn compaction_drops_torn_tail_ops() {
        let mut db = journaled_session();
        db.inject_crash_after(0);
        let err = db
            .begin_run("Simulate", "bob", WorkDays::new(2.0))
            .unwrap_err();
        assert_eq!(err, MetadataError::InjectedCrash);
        let live = db.journal().unwrap();
        let compacted = Journal::compacted_from(&db);
        // The torn `begin-run` was appended to the live journal but is
        // absent from the compacted form, which reflects applied state.
        assert!(compacted.len() < live.len() + 7);
        let recovered = MetadataDb::recover(&compacted).unwrap();
        assert_eq!(recovered.dump(), db.dump());
    }

    #[test]
    fn tail_replay_onto_snapshot_matches_full_replay() {
        let db = journaled_session();
        let journal = db.journal().unwrap();
        for split in 0..=journal.len() {
            // Snapshot the first `split` ops as a dump, replay the rest
            // as a tail.
            let snap_db = MetadataDb::recover(&journal.prefix(split)).unwrap();
            let mut reopened = MetadataDb::load_at(&snap_db.dump(), 1).unwrap();
            let tail = Journal {
                ops: journal.ops()[split..].to_vec(),
            };
            reopened.apply_journal(&tail).unwrap();
            assert_eq!(
                reopened.dump(),
                db.dump(),
                "split at {split} diverged from full replay"
            );
            assert_eq!(reopened.generation(), 1);
        }
    }

    #[test]
    fn check_invariants_flags_tampering() {
        let mut db = journaled_session();
        // Corrupt a completion link by pointing a schedule at an entity
        // of the wrong activity (reach through the crate-public field).
        let stim_container = db.entity_container("stimuli").unwrap().to_vec();
        let sched = db.schedule_container("Create").unwrap()[0];
        db.schedules[sched.index()].set_link(stim_container[0]);
        let violations = db.check_invariants().unwrap_err();
        assert!(!violations.is_empty());
    }
}
