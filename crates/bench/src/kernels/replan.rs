//! B5 — slip propagation vs full replan (the DESIGN.md ablation for
//! versioned incremental updates).
//!
//! Expected shape: incremental propagation touches only the downstream
//! cone and is cheaper than a full replanning pass; both stay fast
//! enough for automatic updates on every completion event.

use harness::bench::Record;
use hercules::Hercules;

use crate::pipeline_manager;

/// A pipeline mid-execution: the front third complete (so a slip has
/// somewhere to propagate from), the rest open.
fn mid_project(stages: usize) -> (Hercules, String) {
    let mut h = pipeline_manager(stages, 4, 1);
    let target = format!("d{stages}");
    h.plan(&target).expect("plannable");
    let front = format!("d{}", stages / 3);
    h.execute(&front).expect("executable");
    (h, target)
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("replan", quick);
    let sizes: &[usize] = if quick { &[30] } else { &[30, 90] };
    for &stages in sizes {
        let slipped = format!("Stage{}", stages / 3);
        suite.bench_with_setup(
            &format!("propagate_slip/{stages}"),
            Some(stages as u64),
            || mid_project(stages),
            |(mut h, _)| h.propagate_slip(&slipped).expect("planned"),
        );
        suite.bench_with_setup(
            &format!("full_replan/{stages}"),
            Some(stages as u64),
            || mid_project(stages),
            |(mut h, target)| h.replan(&target).expect("plannable"),
        );
    }
    suite.into_records()
}
