//! Property-based tests for the civil-date math and work calendars (on
//! the in-repo `harness` framework — offline, seeded, shrinking).

use harness::prelude::*;
use schedule::{CalDate, Calendar, Weekday};

harness::props! {
    fn epoch_roundtrip(days in -2_000_000i64..2_000_000) {
        let date = CalDate::from_epoch_days(days);
        let rebuilt = CalDate::new(date.year(), date.month(), date.day());
        prop_assert_eq!(rebuilt, date);
        prop_assert_eq!(rebuilt.epoch_days(), days);
    }

    fn succ_advances_one_day(days in -500_000i64..500_000) {
        let date = CalDate::from_epoch_days(days);
        let next = date.succ();
        prop_assert_eq!(next.days_since(date), 1);
        // Weekday cycles with period 7.
        prop_assert_eq!(date.plus_days(7).weekday(), date.weekday());
        prop_assert!(date.weekday() != next.weekday());
    }

    fn date_components_valid(days in -1_000_000i64..1_000_000) {
        let date = CalDate::from_epoch_days(days);
        prop_assert!((1..=12).contains(&date.month()));
        prop_assert!((1..=31).contains(&date.day()));
    }

    fn five_day_offset_roundtrip(start_days in 0i64..100_000, offset in 0u32..2000) {
        let cal = Calendar::five_day(CalDate::from_epoch_days(start_days));
        let offset = f64::from(offset);
        let date = cal.date_of(offset);
        // The produced date is always a working day.
        prop_assert!(cal.is_working(date));
        prop_assert!(!matches!(date.weekday(), Weekday::Saturday | Weekday::Sunday));
        // offset_of inverts date_of for whole working-day offsets.
        prop_assert_eq!(cal.offset_of(date), offset);
    }

    fn holidays_only_delay(start_days in 0i64..50_000, offset in 1u32..200) {
        let start = CalDate::from_epoch_days(start_days);
        let plain = Calendar::five_day(start);
        // Make the first working day after start a holiday.
        let holiday = plain.date_of(1.0);
        let with_holiday = Calendar::five_day(start).with_holiday(holiday);
        let offset = f64::from(offset);
        let a = plain.date_of(offset);
        let b = with_holiday.date_of(offset);
        prop_assert!(b >= a, "holiday moved {offset} earlier: {b} < {a}");
        prop_assert!(b.days_since(a) <= 4, "one holiday delays at most a long weekend");
    }

    fn seven_day_calendar_is_identity_on_offsets(start_days in 0i64..50_000, offset in 0u32..1000) {
        let start = CalDate::from_epoch_days(start_days);
        let cal = Calendar::seven_day(start);
        let date = cal.date_of(f64::from(offset));
        prop_assert_eq!(date.days_since(start), i64::from(offset));
    }
}
