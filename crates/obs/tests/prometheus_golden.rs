//! Golden test pinning the Prometheus text exposition byte-for-byte:
//! family grouping, stable `(name, labels)` ordering, name mangling,
//! label-value escaping, and cumulative histogram buckets. Runs in its
//! own process, so the registry contains exactly what this file
//! registers.

use obs::Metrics;

#[test]
fn exposition_output_is_pinned() {
    Metrics::counter("app.requests").add(3);
    Metrics::gauge_with("serve.inflight", &[("tenant", "t1")]).set(5);
    let h = Metrics::histogram_with("serve.latency", &[0.25, 1.0], &[("endpoint", "plan")]);
    h.observe(0.5);
    h.observe(2.0);
    // Label order at registration must not matter, and hostile label
    // values must be escaped.
    Metrics::counter_with(
        "serve.requests",
        &[("tenant", "a\"b\\c"), ("endpoint", "plan")],
    )
    .add(2);
    Metrics::counter_with("serve.requests", &[("endpoint", "run")]).inc();

    let text = Metrics::to_prometheus();
    obs::export::validate_prometheus(&text).expect("exposition must self-validate");

    let expected = "\
# TYPE app_requests counter
app_requests 3
# TYPE serve_inflight gauge
serve_inflight{tenant=\"t1\"} 5
# TYPE serve_latency histogram
serve_latency_bucket{endpoint=\"plan\",le=\"0.25\"} 0
serve_latency_bucket{endpoint=\"plan\",le=\"1\"} 1
serve_latency_bucket{endpoint=\"plan\",le=\"+Inf\"} 2
serve_latency_sum{endpoint=\"plan\"} 2.5
serve_latency_count{endpoint=\"plan\"} 2
# TYPE serve_requests counter
serve_requests{endpoint=\"plan\",tenant=\"a\\\"b\\\\c\"} 2
serve_requests{endpoint=\"run\"} 1
";
    assert_eq!(text, expected, "exposition drifted:\n{text}");

    // The JSON and table renderings key the same labeled series (one
    // test fn: a parallel test registering metrics would unpin the
    // golden above).
    let json = Metrics::to_json();
    obs::export::validate_json(&json).unwrap();
    assert!(
        json.contains("\"serve.latency{endpoint=\\\"plan\\\"}\""),
        "{json}"
    );
    assert!(Metrics::render().contains("serve.inflight{tenant=\"t1\"}"));
}
