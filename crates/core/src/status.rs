use std::fmt;

use schedule::gantt::{self, GanttOptions, GanttRow};
use schedule::variance::{self, ActivityStatus, VarianceSummary};
use schedule::WorkDays;

use crate::manager::Hercules;

/// Lifecycle state of an activity, derived from the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityState {
    /// No schedule instance exists yet.
    Unplanned,
    /// Planned, no runs yet.
    Planned,
    /// Runs exist, completion not yet declared.
    InProgress,
    /// The latest plan is linked to final design data.
    Complete,
    /// The activity exhausted the execution engine's retry policy
    /// under injected faults and was replanned around — see
    /// [`Hercules::blocked_activities`].
    Blocked,
}

impl fmt::Display for ActivityState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActivityState::Unplanned => "unplanned",
            ActivityState::Planned => "planned",
            ActivityState::InProgress => "in progress",
            ActivityState::Complete => "complete",
            ActivityState::Blocked => "blocked",
        };
        write!(f, "{s}")
    }
}

/// One activity's row in a status report.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusRow {
    /// The activity.
    pub activity: String,
    /// Lifecycle state.
    pub state: ActivityState,
    /// Proposed dates from the latest plan, if planned.
    pub planned: Option<(WorkDays, WorkDays)>,
    /// Actual start (first run).
    pub actual_start: Option<WorkDays>,
    /// Actual finish (linked completion).
    pub actual_finish: Option<WorkDays>,
    /// Assigned designers from the latest plan.
    pub assignees: Vec<String>,
    /// Finish slip in days against the latest plan, once complete.
    pub slip: Option<f64>,
}

/// A point-in-time comparison of "the status of the execution of a task
/// with the schedule plan" (§IV-B), consumable as a Gantt chart, a
/// variance summary, or rows.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReport {
    rows: Vec<StatusRow>,
    status_date: WorkDays,
}

impl StatusReport {
    /// Per-activity rows, in schema activity order.
    pub fn rows(&self) -> &[StatusRow] {
        &self.rows
    }

    /// The row for `activity`, if present.
    pub fn row(&self, activity: &str) -> Option<&StatusRow> {
        self.rows.iter().find(|r| r.activity == activity)
    }

    /// The project clock when the report was taken.
    pub fn status_date(&self) -> WorkDays {
        self.status_date
    }

    /// Number of complete activities.
    pub fn complete_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.state == ActivityState::Complete)
            .count()
    }

    /// Number of activities that finished late against their latest
    /// plan.
    pub fn slipped_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.slip.is_some_and(|s| s > 1e-9))
            .count()
    }

    /// Renders the Fig. 8 style Gantt chart: planned bars with
    /// accomplished bars overlaid.
    pub fn gantt(&self, options: &GanttOptions) -> String {
        let rows: Vec<GanttRow> = self
            .rows
            .iter()
            .filter(|r| r.planned.is_some() || r.actual_start.is_some())
            .map(|r| {
                let (ps, pf) = r.planned.unwrap_or((
                    r.actual_start.unwrap_or(WorkDays::ZERO),
                    r.actual_finish.or(r.actual_start).unwrap_or(WorkDays::ZERO),
                ));
                let mut row = GanttRow::planned(r.activity.clone(), ps, pf);
                if let Some(start) = r.actual_start {
                    let end = r.actual_finish.unwrap_or(self.status_date);
                    row = row.with_actual(start, end, r.state == ActivityState::Complete);
                }
                row
            })
            .collect();
        gantt::render(&rows, options)
    }

    /// Earned-value style summary at the report's status date.
    pub fn variance(&self) -> VarianceSummary {
        self.variance_at(self.status_date)
    }

    /// Earned-value summary evaluated at an arbitrary status date —
    /// usually a *past* date, for reconstructing how SPI evolved.
    pub fn variance_at(&self, date: WorkDays) -> VarianceSummary {
        let statuses: Vec<ActivityStatus> = self
            .rows
            .iter()
            .filter_map(|r| {
                let (ps, pf) = r.planned?;
                Some(ActivityStatus {
                    name: r.activity.clone(),
                    planned_start: ps,
                    planned_finish: pf,
                    actual_start: r.actual_start,
                    actual_finish: r.actual_finish,
                })
            })
            .collect();
        variance::summarize(&statuses, date)
    }

    /// The earned-value trajectory: one [`VarianceSummary`] per sample
    /// date from day 0 to the status date, inclusive. `samples >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2`.
    pub fn variance_series(&self, samples: usize) -> Vec<(WorkDays, VarianceSummary)> {
        assert!(samples >= 2, "a series needs at least two samples");
        let end = self.status_date.days();
        (0..samples)
            .map(|i| {
                let t = WorkDays::new(end * i as f64 / (samples - 1) as f64);
                (t, self.variance_at(t))
            })
            .collect()
    }
}

impl fmt::Display for StatusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "status at day {}:", self.status_date)?;
        for row in &self.rows {
            write!(f, "  {:<16} {:<12}", row.activity, row.state.to_string())?;
            if let Some((ps, pf)) = row.planned {
                write!(f, " plan [{ps} .. {pf}]")?;
            }
            if let (Some(s), Some(e)) = (row.actual_start, row.actual_finish) {
                write!(f, " actual [{s} .. {e}]")?;
            }
            if let Some(slip) = row.slip {
                write!(f, " slip {slip:+.2}d")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Hercules {
    /// Takes a status report at the current project clock: every
    /// activity of the schema with its plan, actuals, and slip.
    ///
    /// This is the automatic update the paper's intro promises: no
    /// designer reports status to a project manager; the flow manager
    /// *is* the source of truth.
    pub fn status(&self) -> StatusReport {
        let rows = self
            .schema
            .rules()
            .iter()
            .map(|rule| {
                let activity = rule.activity().to_owned();
                let plan = self.store.db().current_plan(&activity);
                let planned = plan.map(|p| (p.planned_start(), p.planned_finish()));
                let assignees = plan.map(|p| p.assignees().to_vec()).unwrap_or_default();
                let actual_start = self.store.db().actual_start(&activity);
                let actual_finish = self.store.db().actual_finish(&activity);
                let complete = plan.is_some_and(|p| p.is_complete());
                let state = if !complete && self.blocked.contains(&activity) {
                    ActivityState::Blocked
                } else {
                    match (plan, actual_start, actual_finish) {
                        (None, None, _) => ActivityState::Unplanned,
                        (None, Some(_), _) => ActivityState::InProgress,
                        (Some(_), _, _) if complete => ActivityState::Complete,
                        (Some(_), Some(_), _) => ActivityState::InProgress,
                        (Some(_), None, _) => ActivityState::Planned,
                    }
                };
                let slip = self.store.db().finish_slip(&activity);
                StatusRow {
                    activity,
                    state,
                    planned,
                    actual_start,
                    actual_finish,
                    assignees,
                    slip,
                }
            })
            .collect();
        StatusReport {
            rows,
            status_date: self.clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn manager() -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            42,
        )
    }

    #[test]
    fn unplanned_project_status() {
        let h = manager();
        let status = h.status();
        assert_eq!(status.rows().len(), 2);
        assert!(status
            .rows()
            .iter()
            .all(|r| r.state == ActivityState::Unplanned));
        assert_eq!(status.complete_count(), 0);
    }

    #[test]
    fn planned_then_executed_states() {
        let mut h = manager();
        h.plan("performance").unwrap();
        let status = h.status();
        assert!(status
            .rows()
            .iter()
            .all(|r| r.state == ActivityState::Planned));
        h.execute("performance").unwrap();
        let status = h.status();
        assert_eq!(status.complete_count(), 2);
        let row = status.row("Create").unwrap();
        assert!(row.actual_finish.is_some());
        assert!(row.slip.is_some());
    }

    #[test]
    fn gantt_renders_planned_and_actual() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.execute("performance").unwrap();
        let chart = h.status().gantt(&GanttOptions {
            ascii: true,
            ..GanttOptions::default()
        });
        assert!(chart.contains("Create"));
        assert!(chart.contains("Simulate"));
        assert!(chart.contains('#'));
        assert!(chart.contains("[done]"));
    }

    #[test]
    fn variance_after_execution() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.execute("performance").unwrap();
        let v = h.status().variance();
        // Everything is finished by the status date, so EV covers all
        // planned work that was scheduled by then.
        assert!(v.earned_value > 0.0);
    }

    #[test]
    fn variance_series_is_monotone_in_pv() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.execute("performance").unwrap();
        let series = h.status().variance_series(6);
        assert_eq!(series.len(), 6);
        assert_eq!(series[0].0, schedule::WorkDays::ZERO);
        for w in series.windows(2) {
            // PV and EV both accumulate over time.
            assert!(w[1].1.planned_value >= w[0].1.planned_value - 1e-9);
            assert!(w[1].1.earned_value >= w[0].1.earned_value - 1e-9);
        }
        // At the end, everything completed is earned.
        let last = &series.last().unwrap().1;
        assert!(last.earned_value > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn variance_series_needs_two_samples() {
        let h = manager();
        let _ = h.status().variance_series(1);
    }

    #[test]
    fn display_lists_every_activity() {
        let mut h = manager();
        h.plan("performance").unwrap();
        let text = h.status().to_string();
        assert!(text.contains("Create"));
        assert!(text.contains("planned"));
    }

    #[test]
    fn state_display() {
        assert_eq!(ActivityState::InProgress.to_string(), "in progress");
        assert_eq!(ActivityState::Complete.to_string(), "complete");
        assert_eq!(ActivityState::Blocked.to_string(), "blocked");
    }

    #[test]
    fn blocked_activity_surfaces_in_status() {
        let mut h = manager();
        h.plan("performance").unwrap();
        h.set_fault_plan(simtools::FaultPlan::breaking_tool("netlist_editor"));
        h.execute("performance").unwrap();
        let status = h.status();
        assert_eq!(status.row("Create").unwrap().state, ActivityState::Blocked);
        // Simulate was merely skipped, not blocked: it stays planned.
        assert_eq!(
            status.row("Simulate").unwrap().state,
            ActivityState::Planned
        );
        assert!(h.status().to_string().contains("blocked"));
    }
}
