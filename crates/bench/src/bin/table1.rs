//! Regenerates **Table I**: the six surveyed systems mapped onto the
//! four-level flow-management architecture.

fn main() {
    let systems = survey::surveyed_systems();
    print!("{}", survey::render_table(&systems));
    println!("Sources:");
    for s in &systems {
        println!("  {:<14} {}", s.name(), s.reference());
    }
}
