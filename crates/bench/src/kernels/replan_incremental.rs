//! B9 — dirty-region incremental CPM vs full recompute.
//!
//! The replan engine's claim: when a slip touches one activity, the
//! work to refresh the schedule should be proportional to the slip's
//! cone of influence, not the network size. This kernel measures both
//! paths on layered DAGs (width 10, every activity wired to two
//! predecessors in the previous layer) for two slip shapes:
//!
//! * `*_leaf/{n}` — one final-layer activity's duration toggles
//!   between 1.0 and 2.5 working days while its sibling sinks hold
//!   5.0, so the slip is **absorbed by slack** — the common case the
//!   paper's automatic updates hit. The early-cutoff worklists stop
//!   at the slipped activity itself.
//! * `*_front/{n}` — every activity in the first 10 % of layers
//!   toggles by ±0.5 days (a broad re-estimation sweep): the
//!   worst case, where the dirty cone really is most of the graph.
//!
//! Expected shape: `inc_leaf` beats `full_leaf` by ≥10× at 10 000
//! activities (in practice by orders of magnitude — the update
//! touches O(1) nodes); `inc_front` still wins, but only ~2×, since
//! nearly every downstream value genuinely changes and must be
//! recomputed by any correct engine.

use harness::bench::Record;
use schedule::{ActivityId, ScheduleNetwork, WorkDays};

const WIDTH: usize = 10;

/// A layered DAG with `activities / WIDTH` layers; node `w` of each
/// layer depends on nodes `w` and `(w + 1) % WIDTH` of the previous
/// layer, so every non-final activity has successors and the critical
/// path threads the full depth. Durations are dyadic (multiples of
/// 0.5), keeping incremental and full CPM bit-identical.
fn layered(activities: usize) -> (ScheduleNetwork, Vec<Vec<ActivityId>>) {
    let layers = (activities / WIDTH).max(1);
    let mut net = ScheduleNetwork::new();
    let mut all: Vec<Vec<ActivityId>> = Vec::with_capacity(layers);
    for l in 0..layers {
        let mut this = Vec::with_capacity(WIDTH);
        for w in 0..WIDTH {
            let id = net
                .add_activity(
                    format!("l{l}w{w}"),
                    WorkDays::new(1.0 + (w % 4) as f64 * 0.5),
                )
                .expect("unique names");
            if let Some(prev) = all.last() {
                net.add_precedence(prev[w], id).expect("forward edge");
                net.add_precedence(prev[(w + 1) % WIDTH], id)
                    .expect("forward edge");
            }
            this.push(id);
        }
        all.push(this);
    }
    (net, all)
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("replan_incremental", quick);
    let sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    for &n in sizes {
        let (mut net, layers) = layered(n);
        // Final layer: heavy sibling sinks (5.0 d) around the slipping
        // leaf, so its 1.0↔2.5 toggle stays inside slack — neither the
        // project finish nor any predecessor's longest tail moves.
        let last = layers.last().expect("non-empty").clone();
        for &id in &last {
            net.set_duration(id, WorkDays::new(5.0)).expect("known id");
        }
        let leaf = last[WIDTH / 2];
        net.set_duration(leaf, WorkDays::new(1.0))
            .expect("known id");
        let front: Vec<ActivityId> = layers
            .iter()
            .take((layers.len() / 10).max(1))
            .flatten()
            .copied()
            .collect();
        let front_base: Vec<f64> = front.iter().map(|&id| net.duration(id).days()).collect();

        // -- single-leaf slip -------------------------------------------------
        let mut flip = false;
        suite.bench(&format!("full_leaf/{n}"), Some(n as u64), || {
            flip = !flip;
            let d = if flip { 2.5 } else { 1.0 };
            net.set_duration(leaf, WorkDays::new(d)).expect("known id");
            net.analyze().expect("acyclic").project_duration()
        });
        let mut inc = net.analyze_incremental().expect("acyclic");
        let mut flip = false;
        suite.bench(&format!("inc_leaf/{n}"), Some(n as u64), || {
            flip = !flip;
            let d = if flip { 2.5 } else { 1.0 };
            net.set_duration(leaf, WorkDays::new(d)).expect("known id");
            inc.update(&net, &[leaf]).expect("known dirty set");
            inc.project_duration()
        });

        // -- 10 %-front re-estimation ----------------------------------------
        let mut flip = false;
        suite.bench(&format!("full_front/{n}"), Some(n as u64), || {
            flip = !flip;
            let delta = if flip { 0.5 } else { 0.0 };
            for (&id, &base) in front.iter().zip(&front_base) {
                net.set_duration(id, WorkDays::new(base + delta))
                    .expect("known id");
            }
            net.analyze().expect("acyclic").project_duration()
        });
        let mut inc = net.analyze_incremental().expect("acyclic");
        let mut flip = false;
        suite.bench(&format!("inc_front/{n}"), Some(n as u64), || {
            flip = !flip;
            let delta = if flip { 0.5 } else { 0.0 };
            for (&id, &base) in front.iter().zip(&front_base) {
                net.set_duration(id, WorkDays::new(base + delta))
                    .expect("known id");
            }
            inc.update(&net, &front).expect("known dirty set");
            inc.project_duration()
        });
    }
    suite.into_records()
}
