//! The workspace's micro-benchmark kernels (B1–B14 in DESIGN.md),
//! ported from Criterion onto `harness::bench` so they run offline and
//! emit machine-readable results.
//!
//! Each kernel module exposes `run(quick) -> Vec<Record>`; the
//! `benchmarks` bin aggregates all of them into
//! `BENCH_schedflow.json` at the workspace root. `quick = true`
//! selects the smoke-test sampling plan used by `tests/bench_smoke.rs`
//! and `scripts/check.sh`.

use harness::bench::Record;

pub mod baseline_compare;
pub mod calibrate;
pub mod cpm;
pub mod cpm_scale;
pub mod exec_policies;
pub mod execution;
pub mod gantt;
pub mod obs_live;
pub mod planning;
pub mod prediction;
pub mod queries;
pub mod recover_journal;
pub mod replan;
pub mod replan_incremental;
pub mod serve_load;
pub mod store_durability;
pub mod trace_overhead;
pub mod workspace_concurrent;

/// All kernels in DESIGN.md order (B0 calibration first, then
/// B1–B17). The calibration spin must run first: it warms the CPU for
/// everything after it, and `bench_compare` uses its median to
/// normalize away host-speed differences between runs.
pub const KERNELS: [&str; 18] = [
    "calibrate",
    "cpm",
    "planning",
    "execution",
    "queries",
    "replan",
    "baseline_compare",
    "prediction",
    "gantt",
    "replan_incremental",
    "recover_journal",
    "trace_overhead",
    "workspace_concurrent",
    "serve_load",
    "cpm_scale",
    "store_durability",
    "obs_live",
    "exec_policies",
];

/// Runs every kernel whose name contains `filter` (all when `None`).
pub fn run_all(quick: bool, filter: Option<&str>) -> Vec<Record> {
    let wanted = |name: &str| filter.is_none_or(|f| name.contains(f));
    let mut records = Vec::new();
    if wanted("calibrate") {
        records.extend(calibrate::run(quick));
    }
    if wanted("cpm") {
        records.extend(cpm::run(quick));
    }
    if wanted("planning") {
        records.extend(planning::run(quick));
    }
    if wanted("execution") {
        records.extend(execution::run(quick));
    }
    if wanted("queries") {
        records.extend(queries::run(quick));
    }
    if wanted("replan") {
        records.extend(replan::run(quick));
    }
    if wanted("baseline_compare") {
        records.extend(baseline_compare::run(quick));
    }
    if wanted("prediction") {
        records.extend(prediction::run(quick));
    }
    if wanted("gantt") {
        records.extend(gantt::run(quick));
    }
    if wanted("replan_incremental") {
        records.extend(replan_incremental::run(quick));
    }
    if wanted("recover_journal") {
        records.extend(recover_journal::run(quick));
    }
    if wanted("trace_overhead") {
        records.extend(trace_overhead::run(quick));
    }
    if wanted("workspace_concurrent") {
        records.extend(workspace_concurrent::run(quick));
    }
    if wanted("serve_load") {
        records.extend(serve_load::run(quick));
    }
    if wanted("cpm_scale") {
        records.extend(cpm_scale::run(quick));
    }
    if wanted("store_durability") {
        records.extend(store_durability::run(quick));
    }
    if wanted("obs_live") {
        records.extend(obs_live::run(quick));
    }
    if wanted("exec_policies") {
        records.extend(exec_policies::run(quick));
    }
    records
}

/// A suite preconfigured for `kernel` under the given mode.
pub(crate) fn suite(kernel: &str, quick: bool) -> harness::bench::Suite {
    if quick {
        harness::bench::Suite::quick(kernel)
    } else {
        harness::bench::Suite::new(kernel)
    }
}
