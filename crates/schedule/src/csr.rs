//! Flat CSR (structure-of-arrays) view of a [`ScheduleNetwork`].
//!
//! The public network API keeps its object-graph ergonomics (names,
//! per-activity lookups, DOT export); this module is what the hot CPM
//! paths actually run on. [`CsrTopology`] freezes the precedence
//! topology into contiguous `u32` arrays:
//!
//! - a **levelized topological order** (`order`/`pos`): positions are
//!   grouped by level (longest-path depth) and sorted by activity id
//!   within each level, so every level is one contiguous position range
//!   (`level_off`) and within-level order equals insertion order;
//! - **position-space predecessor/successor CSR** (`pred_off`/`preds`,
//!   `succ_off`/`succs`), adjacency kept in edge-insertion order so
//!   tie-breaking (critical-path walks, free-slack folds) matches the
//!   original per-node iteration exactly;
//! - the sink positions (`sink_pos`) the project duration folds over.
//!
//! On top of that layout the forward/backward passes become flat array
//! sweeps, and each level can be computed in parallel with plain
//! `split_at_mut` borrows (predecessors of level *l* live strictly
//! before the level's first position; successors strictly after its
//! last), so no `unsafe` and no locks are needed — matching this
//! crate's `#![forbid(unsafe_code)]`.
//!
//! [`DirtyBits`] is the companion worklist for the incremental engine:
//! a position-indexed bitset drained in position order (ascending for
//! forward sweeps, descending for backward), replacing the old
//! `BinaryHeap` + generation-stamp scheme with two words of state per
//! 64 activities.

use flowgraph::NodeId;

use crate::cpm::ActivityTimes;
use crate::network::{ActivityId, ScheduleNetwork, WorkDays};

/// Tolerance for "same date" float comparisons (criticality chaining).
pub(crate) const EPS: f64 = 1e-9;

/// Minimum level width before a level is split across threads: narrow
/// levels are cheaper to sweep serially than to spawn for.
#[cfg(not(test))]
const MIN_PAR_LEVEL: usize = 8192;
/// Unit tests drop the threshold so the scoped-thread chunking path is
/// exercised on small graphs.
#[cfg(test)]
const MIN_PAR_LEVEL: usize = 8;

/// Minimum activities per worker thread for a whole analysis, mirroring
/// `montecarlo::MIN_SAMPLES_PER_THREAD`'s role: small graphs never pay
/// spawn cost.
const MIN_NODES_PER_THREAD: usize = 16 * 1024;

/// Default worker count for one full CPM analysis over `n` activities.
///
/// The hardware probe is cached: `available_parallelism` re-reads
/// cgroup quota files on Linux, which costs ~10 µs — more than an
/// entire small-graph analysis.
pub(crate) fn default_threads(n: usize) -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let hw = *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    hw.min(n / MIN_NODES_PER_THREAD).max(1)
}

/// Frozen flat topology of one structural revision of a network.
#[derive(Debug)]
pub(crate) struct CsrTopology {
    /// The [`ScheduleNetwork::structure_revision`] this was built from.
    pub(crate) structure_rev: u64,
    /// Position → activity id (dense index).
    pub(crate) order: Vec<u32>,
    /// Activity id (dense index) → position.
    pub(crate) pos: Vec<u32>,
    /// Level `l` occupies positions `level_off[l]..level_off[l + 1]`.
    pub(crate) level_off: Vec<u32>,
    /// CSR offsets into `preds` (position space, length `n + 1`).
    pub(crate) pred_off: Vec<u32>,
    /// Predecessor positions, in edge-insertion order per node.
    pub(crate) preds: Vec<u32>,
    /// CSR offsets into `succs` (position space, length `n + 1`).
    pub(crate) succ_off: Vec<u32>,
    /// Successor positions, in edge-insertion order per node.
    pub(crate) succs: Vec<u32>,
    /// Positions with no successors.
    pub(crate) sink_pos: Vec<u32>,
}

impl CsrTopology {
    /// Flattens the network's current topology.
    pub(crate) fn build(network: &ScheduleNetwork) -> CsrTopology {
        let n = network.activity_count();
        let m = network.precedence_count();
        let dag = &network.dag;
        // In-degrees drive the level-synchronous Kahn sweep.
        let mut indeg = vec![0u32; n];
        for (i, d) in indeg.iter_mut().enumerate() {
            *d = dag.predecessors(NodeId::from_index(i)).count() as u32;
        }
        let mut order = Vec::with_capacity(n);
        let mut pos = vec![0u32; n];
        let mut level_off = vec![0u32];
        let mut frontier: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut next = Vec::new();
        while !frontier.is_empty() {
            for &id in &frontier {
                pos[id as usize] = order.len() as u32;
                order.push(id);
            }
            level_off.push(order.len() as u32);
            for &id in &frontier {
                for s in dag.successors(NodeId::from_index(id as usize)) {
                    let si = s.index();
                    indeg[si] -= 1;
                    if indeg[si] == 0 {
                        next.push(si as u32);
                    }
                }
            }
            // Ascending ids keep within-level order == insertion order.
            next.sort_unstable();
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        debug_assert_eq!(order.len(), n, "networks are DAGs by construction");
        // Position-space adjacency, edge-insertion order preserved.
        let mut pred_off = Vec::with_capacity(n + 1);
        let mut preds = Vec::with_capacity(m);
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succs = Vec::with_capacity(m);
        let mut sink_pos = Vec::new();
        pred_off.push(0);
        succ_off.push(0);
        for (p, &node) in order.iter().enumerate() {
            let id = NodeId::from_index(node as usize);
            for q in dag.predecessors(id) {
                preds.push(pos[q.index()]);
            }
            pred_off.push(preds.len() as u32);
            let before = succs.len();
            for q in dag.successors(id) {
                succs.push(pos[q.index()]);
            }
            succ_off.push(succs.len() as u32);
            if succs.len() == before {
                sink_pos.push(p as u32);
            }
        }
        CsrTopology {
            structure_rev: network.structure_revision(),
            order,
            pos,
            level_off,
            pred_off,
            preds,
            succ_off,
            succs,
            sink_pos,
        }
    }

    /// Number of activities.
    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    /// The [`ActivityId`] at position `p`.
    pub(crate) fn activity_id(&self, p: usize) -> ActivityId {
        ActivityId(NodeId::from_index(self.order[p] as usize))
    }

    /// Gathers an id-indexed array into position order.
    pub(crate) fn gather(&self, by_id: &[f64]) -> Vec<f64> {
        self.order.iter().map(|&id| by_id[id as usize]).collect()
    }

    /// Predecessor positions of position `p`.
    pub(crate) fn preds_of(&self, p: usize) -> &[u32] {
        &self.preds[self.pred_off[p] as usize..self.pred_off[p + 1] as usize]
    }

    /// Successor positions of position `p`.
    pub(crate) fn succs_of(&self, p: usize) -> &[u32] {
        &self.succs[self.succ_off[p] as usize..self.succ_off[p + 1] as usize]
    }

    /// Forward pass over position-space durations: earliest start and
    /// finish per position. Levels wider than the parallel threshold
    /// are chunked across `threads` scoped workers; results are
    /// bit-identical for any thread count because every position's
    /// value is a pure fold over already-finished earlier levels, in
    /// fixed CSR order.
    pub(crate) fn forward(&self, dur: &[f64], threads: usize) -> (Vec<f64>, Vec<f64>) {
        let n = self.len();
        let mut es = vec![0.0f64; n];
        let mut ef = vec![0.0f64; n];
        if threads <= 1 {
            // Positions are topologically sorted: one flat sweep.
            for p in 0..n {
                let mut start = 0.0f64;
                for &q in self.preds_of(p) {
                    start = start.max(ef[q as usize]);
                }
                es[p] = start;
                ef[p] = start + dur[p];
            }
            return (es, ef);
        }
        for lvl in 0..self.level_off.len() - 1 {
            let a = self.level_off[lvl] as usize;
            let b = self.level_off[lvl + 1] as usize;
            let width = b - a;
            if width < MIN_PAR_LEVEL {
                for p in a..b {
                    let mut start = 0.0f64;
                    for &q in self.preds_of(p) {
                        start = start.max(ef[q as usize]);
                    }
                    es[p] = start;
                    ef[p] = start + dur[p];
                }
                continue;
            }
            // All predecessors of this level live strictly before `a`,
            // so the finished prefix and the level being written are
            // disjoint borrows.
            let (ef_done, ef_rest) = ef.split_at_mut(a);
            let ef_cur = &mut ef_rest[..width];
            let es_cur = &mut es[a..b];
            let chunk = width.div_ceil(threads);
            let ef_done: &[f64] = ef_done;
            std::thread::scope(|scope| {
                for (k, (es_chunk, ef_chunk)) in es_cur
                    .chunks_mut(chunk)
                    .zip(ef_cur.chunks_mut(chunk))
                    .enumerate()
                {
                    let base = a + k * chunk;
                    scope.spawn(move || {
                        for i in 0..es_chunk.len() {
                            let p = base + i;
                            let lo = self.pred_off[p] as usize;
                            let hi = self.pred_off[p + 1] as usize;
                            let mut start = 0.0f64;
                            for &q in &self.preds[lo..hi] {
                                start = start.max(ef_done[q as usize]);
                            }
                            es_chunk[i] = start;
                            ef_chunk[i] = start + dur[p];
                        }
                    });
                }
            });
        }
        (es, ef)
    }

    /// Backward pass over position-space durations: per position, the
    /// longest duration path from its start to the project end
    /// (`tail[p] = dur[p] + max tail[succ]`). Late dates fall out as
    /// `late_start = project - tail`, `late_finish = late_start + dur`.
    pub(crate) fn backward(&self, dur: &[f64], threads: usize) -> Vec<f64> {
        let n = self.len();
        let mut tail = vec![0.0f64; n];
        if threads <= 1 {
            for p in (0..n).rev() {
                let mut t = 0.0f64;
                for &q in self.succs_of(p) {
                    t = t.max(tail[q as usize]);
                }
                tail[p] = t + dur[p];
            }
            return tail;
        }
        for lvl in (0..self.level_off.len() - 1).rev() {
            let a = self.level_off[lvl] as usize;
            let b = self.level_off[lvl + 1] as usize;
            let width = b - a;
            if width < MIN_PAR_LEVEL {
                for p in (a..b).rev() {
                    let mut t = 0.0f64;
                    for &q in self.succs_of(p) {
                        t = t.max(tail[q as usize]);
                    }
                    tail[p] = t + dur[p];
                }
                continue;
            }
            // Successors of this level live strictly at or after `b`.
            let (head, tail_done) = tail.split_at_mut(b);
            let cur = &mut head[a..b];
            let chunk = width.div_ceil(threads);
            let tail_done: &[f64] = tail_done;
            std::thread::scope(|scope| {
                for (k, cur_chunk) in cur.chunks_mut(chunk).enumerate() {
                    let base = a + k * chunk;
                    scope.spawn(move || {
                        for (i, slot) in cur_chunk.iter_mut().enumerate() {
                            let p = base + i;
                            let lo = self.succ_off[p] as usize;
                            let hi = self.succ_off[p + 1] as usize;
                            let mut t = 0.0f64;
                            for &q in &self.succs[lo..hi] {
                                t = t.max(tail_done[q as usize - b]);
                            }
                            *slot = t + dur[p];
                        }
                    });
                }
            });
        }
        tail
    }

    /// Project duration: max earliest finish over sinks (0 if empty).
    pub(crate) fn project(&self, ef: &[f64]) -> f64 {
        self.sink_pos
            .iter()
            .map(|&p| ef[p as usize])
            .fold(0.0f64, f64::max)
    }

    /// Assembles the public per-activity dates (id order) from the
    /// position-space pass outputs, with the same clamping and
    /// free-slack fold as the original per-node assembly.
    pub(crate) fn assemble_times(
        &self,
        dur: &[f64],
        es: &[f64],
        ef: &[f64],
        tail: &[f64],
        project: f64,
    ) -> Vec<ActivityTimes> {
        let n = self.len();
        let zero = ActivityTimes {
            early_start: WorkDays::ZERO,
            early_finish: WorkDays::ZERO,
            late_start: WorkDays::ZERO,
            late_finish: WorkDays::ZERO,
            total_slack: WorkDays::ZERO,
            free_slack: WorkDays::ZERO,
        };
        let mut times = vec![zero; n];
        for p in 0..n {
            let late_start = project - tail[p];
            let late_finish = late_start + dur[p];
            let succs = self.succs_of(p);
            let free = if succs.is_empty() {
                project - ef[p]
            } else {
                succs
                    .iter()
                    .map(|&q| es[q as usize])
                    .fold(f64::INFINITY, f64::min)
                    - ef[p]
            };
            times[self.order[p] as usize] = ActivityTimes {
                early_start: WorkDays::new(es[p].max(0.0)),
                early_finish: WorkDays::new(ef[p].max(0.0)),
                late_start: WorkDays::new(late_start.max(0.0)),
                late_finish: WorkDays::new(late_finish.max(0.0)),
                total_slack: WorkDays::new((late_start - es[p]).max(0.0)),
                free_slack: WorkDays::new(free.max(0.0)),
            };
        }
        times
    }

    /// Walks one critical path in position space: from the first
    /// critical source (level 0 is sorted by id, so "first" matches
    /// insertion order), always stepping to the first critical
    /// successor whose early start equals our early finish — the same
    /// deterministic tie-breaking the object-graph walk used.
    pub(crate) fn walk_critical(
        &self,
        es: &[f64],
        ef: &[f64],
        tail: &[f64],
        project: f64,
    ) -> Vec<ActivityId> {
        let is_crit = |p: usize| ((project - tail[p]) - es[p]).abs() < EPS;
        let mut critical = Vec::new();
        let sources = self.level_off.get(1).copied().unwrap_or(0) as usize;
        let mut cur = (0..sources).find(|&p| is_crit(p));
        while let Some(p) = cur {
            critical.push(self.activity_id(p));
            cur = self
                .succs_of(p)
                .iter()
                .map(|&q| q as usize)
                .find(|&q| is_crit(q) && (es[q] - ef[p]).abs() < EPS);
        }
        critical
    }
}

/// Position-indexed dirty worklist: one bit per activity position, with
/// word-range bounds so sparse drains never scan the whole bitset.
///
/// Bits self-clear as they are drained, so a fully drained set is
/// immediately reusable with no O(n) reset — the property the
/// incremental engine relies on between `update` calls.
#[derive(Debug, Clone)]
pub(crate) struct DirtyBits {
    words: Vec<u64>,
    pending: usize,
    /// Lowest word index that may hold a set bit.
    lo: usize,
    /// Highest word index that may hold a set bit.
    hi: usize,
}

impl DirtyBits {
    /// An empty set over `n` positions.
    pub(crate) fn new(n: usize) -> Self {
        DirtyBits {
            words: vec![0u64; n.div_ceil(64)],
            pending: 0,
            lo: usize::MAX,
            hi: 0,
        }
    }

    /// Resizes for `n` positions, clearing all bits.
    pub(crate) fn reset(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
        self.pending = 0;
        self.lo = usize::MAX;
        self.hi = 0;
    }

    /// Marks position `p`; returns `true` if it was newly set.
    pub(crate) fn insert(&mut self, p: usize) -> bool {
        let w = p / 64;
        let bit = 1u64 << (p % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.pending += 1;
        self.lo = self.lo.min(w);
        self.hi = self.hi.max(w);
        true
    }

    /// Number of set bits.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.pending
    }

    /// Whether no bits are set.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Removes and returns the lowest set position. During an ascending
    /// drain new insertions only land at higher positions (forward
    /// sweeps enqueue successors), so the cursor never moves backwards.
    pub(crate) fn pop_lowest(&mut self) -> Option<usize> {
        if self.pending == 0 {
            return None;
        }
        let mut w = self.lo;
        loop {
            // Re-read each iteration: draining can set bits in the
            // same word (a successor 3 positions ahead, say).
            let word = self.words[w];
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                self.words[w] = word & (word - 1);
                self.pending -= 1;
                self.lo = w;
                return Some(w * 64 + bit);
            }
            w += 1;
        }
    }

    /// Removes and returns the highest set position (descending twin of
    /// [`pop_lowest`](DirtyBits::pop_lowest), for backward sweeps).
    pub(crate) fn pop_highest(&mut self) -> Option<usize> {
        if self.pending == 0 {
            return None;
        }
        let mut w = self.hi;
        loop {
            let word = self.words[w];
            if word != 0 {
                let bit = 63 - word.leading_zeros() as usize;
                self.words[w] = word & !(1u64 << bit);
                self.pending -= 1;
                self.hi = w;
                return Some(w * 64 + bit);
            }
            w -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_bits_ascending_drain() {
        let mut bits = DirtyBits::new(200);
        for p in [5, 199, 64, 5, 0] {
            bits.insert(p);
        }
        assert_eq!(bits.len(), 4); // 5 inserted twice
        let mut seen = Vec::new();
        while let Some(p) = bits.pop_lowest() {
            seen.push(p);
        }
        assert_eq!(seen, [0, 5, 64, 199]);
        assert!(bits.is_empty());
        // Drained set is immediately reusable.
        bits.insert(7);
        assert_eq!(bits.pop_lowest(), Some(7));
    }

    #[test]
    fn dirty_bits_descending_drain() {
        let mut bits = DirtyBits::new(300);
        for p in [130, 0, 299, 64] {
            bits.insert(p);
        }
        let mut seen = Vec::new();
        while let Some(p) = bits.pop_highest() {
            seen.push(p);
        }
        assert_eq!(seen, [299, 130, 64, 0]);
        assert!(bits.is_empty());
    }

    #[test]
    fn dirty_bits_insert_during_ascending_drain() {
        let mut bits = DirtyBits::new(128);
        bits.insert(3);
        assert_eq!(bits.pop_lowest(), Some(3));
        // Forward-sweep pattern: enqueue a later position mid-drain,
        // including one in the same word.
        bits.insert(10);
        bits.insert(100);
        assert_eq!(bits.pop_lowest(), Some(10));
        assert_eq!(bits.pop_lowest(), Some(100));
        assert_eq!(bits.pop_lowest(), None);
    }

    #[test]
    fn levelized_order_groups_levels_contiguously() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("a", WorkDays::new(1.0)).unwrap();
        let b = net.add_activity("b", WorkDays::new(1.0)).unwrap();
        let c = net.add_activity("c", WorkDays::new(1.0)).unwrap();
        let d = net.add_activity("d", WorkDays::new(1.0)).unwrap();
        net.add_precedence(a, c).unwrap();
        net.add_precedence(b, c).unwrap();
        net.add_precedence(c, d).unwrap();
        let csr = CsrTopology::build(&net);
        // Levels: {a, b}, {c}, {d}.
        assert_eq!(csr.level_off, [0, 2, 3, 4]);
        assert_eq!(csr.order, [0, 1, 2, 3]);
        assert_eq!(csr.sink_pos, [3]);
        assert_eq!(csr.preds_of(2), [0, 1]);
        assert_eq!(csr.succs_of(2), [3]);
    }

    #[test]
    fn forward_backward_match_any_thread_count() {
        // 25-wide layers exceed the test-mode MIN_PAR_LEVEL, so the
        // threads=4 run takes the scoped-thread chunking path and must
        // produce bit-identical output to the serial sweep.
        let mut net = ScheduleNetwork::new();
        let mut prev: Vec<ActivityId> = Vec::new();
        for layer in 0..20 {
            let mut cur = Vec::new();
            for w in 0..25 {
                let id = net
                    .add_activity(
                        format!("n{layer}_{w}"),
                        WorkDays::new(1.0 + f64::from(w % 4) * 0.5),
                    )
                    .unwrap();
                if let Some(&p) = prev.get(w as usize) {
                    net.add_precedence(p, id).unwrap();
                }
                if !prev.is_empty() {
                    let q = prev[(w as usize + 1) % prev.len()];
                    net.add_precedence(q, id).unwrap();
                }
                cur.push(id);
            }
            prev = cur;
        }
        let csr = net.csr();
        let dur = csr.gather(net.durations_raw());
        let (es1, ef1) = csr.forward(&dur, 1);
        let (es4, ef4) = csr.forward(&dur, 4);
        assert_eq!(es1, es4);
        assert_eq!(ef1, ef4);
        let t1 = csr.backward(&dur, 1);
        let t4 = csr.backward(&dur, 4);
        assert_eq!(t1, t4);
    }
}
