//! B7 — prediction accuracy: history-based estimators vs designer
//! intuition on synthetic duration histories (flat-noisy and trending).
//!
//! Expected shape: once a few observations exist, every history-based
//! estimator beats a 2x-off intuition guess; the trend estimator wins
//! on growing activities, smoothing estimators win on noisy-flat ones.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use predict::{evaluate, Ewma, Intuition, LastValue, LinearTrend, MeanOfAll, Predictor};
use simtools::workload::duration_history;

fn estimators() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(Intuition::new(10.0)), // designer guess, 2x off base 5
        Box::new(LastValue),
        Box::new(MeanOfAll),
        Box::new(Ewma::new(0.3)),
        Box::new(LinearTrend),
    ]
}

fn bench_prediction(c: &mut Criterion) {
    let flat = duration_history(5.0, 0.0, 0.25, 60, 17);
    let trending = duration_history(5.0, 0.04, 0.10, 60, 23);

    // One-shot accuracy table (captured by EXPERIMENTS.md).
    for (name, history) in [("flat-noisy", &flat), ("trending", &trending)] {
        println!("\nprediction accuracy on {name} history:");
        for est in estimators() {
            if let Some(report) = evaluate(est.as_ref(), history, 3) {
                println!("  {report}");
            }
        }
    }

    c.bench_function("predict_rolling_eval_60pts", |b| {
        b.iter(|| {
            for est in estimators() {
                let _ = evaluate(est.as_ref(), std::hint::black_box(&flat), 3);
            }
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_prediction
}
criterion_main!(benches);
