//! Regenerates **Fig. 6**: the Hercules database during the execution
//! phase — entity instances accumulate per iteration (the paper's
//! N1/N2 netlist versions) while schedule instances await their
//! completion links.

use bench::{circuit_manager, render_db_state};

fn main() {
    // Find a seed where Create iterates, matching the figure's two
    // netlist versions.
    let seed = (0..200)
        .find(|&s| {
            let mut h = circuit_manager(2, s);
            h.plan("performance").expect("plannable");
            let r = h.execute("netlist").expect("executable");
            r.activity("Create").map(|a| a.iterations) == Some(2)
        })
        .expect("some seed gives two iterations");
    let mut h = circuit_manager(2, seed);
    h.plan("performance").expect("plannable");
    // Execute only the Create task so Simulate is still open, like the
    // figure's mid-execution snapshot.
    let report = h.execute("netlist").expect("executable");
    println!(
        "Mid-execution snapshot (seed {seed}; Create took {} iterations):\n",
        report.activity("Create").expect("executed").iterations
    );
    print!("{}", render_db_state(h.db()));

    println!("\nRuns recorded so far:");
    for run in h.db().runs() {
        println!("  {run}");
    }
}
