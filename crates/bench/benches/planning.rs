//! B2 — schedule planning throughput: the simulated-execution
//! traversal (schedule-instance creation + CPM + levelling) vs flow
//! size.
//!
//! Expected shape: planning cost grows roughly linearly with the task
//! tree; planning a 100-activity flow stays well under a second, so
//! "the schedule plan can be updated at any time" is practical.

use std::time::Duration;

use bench::pipeline_manager;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_pipeline");
    for &stages in &[10usize, 50, 100] {
        group.throughput(criterion::Throughput::Elements(stages as u64));
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, &stages| {
            b.iter_batched(
                || pipeline_manager(stages, 4, 1),
                |mut h| h.plan(&format!("d{stages}")).expect("plannable"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_planning
}
criterion_main!(benches);
