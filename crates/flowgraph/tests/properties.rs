//! Property-based tests for the graph substrate (on the in-repo
//! `harness` framework — offline, seeded, shrinking).

use std::collections::{HashMap, HashSet};

use flowgraph::builder::generate;
use flowgraph::{Dag, NodeId};
use harness::prelude::*;

/// Build a random DAG by only ever adding edges from a lower-indexed
/// node to a higher-indexed one, which is acyclic by construction and
/// therefore must never be rejected.
fn arb_dag() -> impl Strategy<Value = Dag<u32, ()>> {
    (2usize..40, vec((any_u16(), any_u16()), 0..120)).prop_map(|(n, pairs)| {
        let mut g = Dag::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(i as u32)).collect();
        for (a, b) in pairs {
            let i = (a as usize) % n;
            let j = (b as usize) % n;
            if i < j {
                g.add_edge(ids[i], ids[j], ())
                    .expect("forward edges never cycle");
            }
        }
        g
    })
}

harness::props! {
    fn topological_order_is_consistent(g in arb_dag()) {
        let order = g.topological_order().expect("constructed acyclic");
        prop_assert_eq!(order.len(), g.node_count());
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for e in g.edges() {
            prop_assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    fn post_order_respects_dependencies(g in arb_dag()) {
        let sinks = g.sinks();
        let order = g.post_order(&sinks);
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        // Every visited node's predecessors are visited, and earlier.
        for &v in &order {
            for p in g.predecessors(v) {
                prop_assert!(pos.contains_key(&p));
                prop_assert!(pos[&p] < pos[&v]);
            }
        }
        // From all sinks, the whole graph is covered.
        prop_assert_eq!(order.len(), g.node_count());
    }

    fn cones_are_duals(g in arb_dag()) {
        for v in g.node_ids() {
            let input = g.input_cone(&[v]);
            for &u in &input {
                // If u is in v's input cone, v is in u's output cone.
                prop_assert!(g.output_cone(&[u]).contains(&v));
            }
        }
    }

    fn reaches_matches_cone(g in arb_dag()) {
        for v in g.node_ids().take(10) {
            let out = g.output_cone(&[v]);
            for u in g.node_ids() {
                prop_assert_eq!(g.reaches(v, u), out.contains(&u));
            }
        }
    }

    fn transitive_reduction_preserves_reachability(g in arb_dag()) {
        let kept = g.transitive_reduction().expect("acyclic");
        let mut reduced: Dag<u32, ()> = Dag::new();
        let ids: Vec<NodeId> = g.node_ids().map(|v| {
            reduced.add_node(*g.node_weight(v).expect("exists"))
        }).collect();
        for (f, t) in &kept {
            reduced
                .add_edge(ids[f.index()], ids[t.index()], ())
                .expect("reduction of a DAG is a DAG");
        }
        for v in g.node_ids().take(10) {
            let orig: HashSet<usize> =
                g.output_cone(&[v]).into_iter().map(|n| n.index()).collect();
            let red: HashSet<usize> = reduced
                .output_cone(&[ids[v.index()]])
                .into_iter()
                .map(|n| n.index())
                .collect();
            prop_assert_eq!(&orig, &red);
        }
        prop_assert!(kept.len() <= g.edge_count());
    }

    fn longest_path_is_maximal_chain(g in arb_dag()) {
        if let Some(path) = g.longest_path_by(|&w| w as f64 + 1.0).expect("acyclic") {
            // The path is a real chain.
            for w in path.nodes.windows(2) {
                prop_assert!(g.reaches(w[0], w[1]));
            }
            // Its length equals the sum of its node weights.
            let sum: f64 = path
                .nodes
                .iter()
                .map(|&v| *g.node_weight(v).expect("exists") as f64 + 1.0)
                .sum();
            prop_assert!((sum - path.length).abs() < 1e-9);
        }
    }

    fn levels_are_edge_monotonic(g in arb_dag()) {
        let levels = g.levels().expect("acyclic");
        for e in g.edges() {
            prop_assert!(levels[e.from.index()] < levels[e.to.index()]);
        }
    }
}

#[test]
fn generators_are_acyclic_and_connected_enough() {
    for g in [
        generate::pipeline(50),
        generate::layered(6, 8, 3),
        generate::reduction_tree(5),
    ] {
        g.topological_order().expect("generator output is a DAG");
        assert!(g.edge_count() > 0);
    }
}
