//! Assertions pinning the paper's artifacts: each test corresponds to
//! a table or figure and checks the property the figure illustrates
//! (see EXPERIMENTS.md for the mapping).

use hercules::Hercules;
use schedule::gantt::GanttOptions;
use schema::{examples, SchemaGraph};
use simtools::{workload::Team, ToolLibrary};
use survey::{render_table, surveyed_systems, Level};

fn circuit(seed: u64) -> Hercules {
    Hercules::new(
        examples::circuit_design(),
        ToolLibrary::standard(),
        Team::of_size(2),
        seed,
    )
}

/// Table I: six systems, four levels each, Hercules Level 3 carries
/// the schedule objects the paper added.
#[test]
fn table1_six_systems_four_levels() {
    let systems = surveyed_systems();
    assert_eq!(systems.len(), 6);
    for s in &systems {
        for level in Level::ALL {
            assert!(!s.objects_at(level).is_empty());
        }
    }
    let table = render_table(&systems);
    for name in [
        "RoadMap Model",
        "ELSIS",
        "Hercules",
        "History Model",
        "Hilda",
        "VOV",
    ] {
        assert!(table.contains(name));
    }
    assert!(table.contains("Schedule"));
}

/// Fig. 1: planning (simulation) and execution both create Level-3
/// data; the link connects them.
#[test]
fn fig1_schedule_and_execution_share_level3() {
    let mut h = circuit(42);
    let plan = h.plan("performance").expect("plannable");
    assert_eq!(h.db().schedule_count(), 2);
    assert_eq!(h.db().entity_count(), 0); // simulation created no design data
    h.execute("performance").expect("executable");
    assert!(h.db().entity_count() >= 3); // stimuli + netlist(s) + performance
    for pa in plan.activities() {
        assert!(h
            .db()
            .schedule_instance(pa.schedule)
            .linked_entity()
            .is_some());
    }
}

/// Fig. 2/3: the schedule space mirrors the execution space —
/// planning sessions ↔ runs, schedule instances ↔ entity instances.
#[test]
fn fig3_spaces_mirror() {
    let mut h = circuit(42);
    let plan = h.plan("performance").expect("plannable");
    let report = h.execute("performance").expect("executable");
    // One planning session (the schedule-space "Run").
    assert_eq!(h.db().planning_sessions().len(), 1);
    assert_eq!(h.db().planning_session(plan.session()).instances().len(), 2);
    // Every completed schedule instance mirrors exactly one entity
    // instance of the activity's output class.
    for pa in plan.activities() {
        let sc = h.db().schedule_instance(pa.schedule);
        let e = sc.linked_entity().expect("complete");
        let inst = h.db().entity_instance(e);
        assert_eq!(
            inst.class(),
            h.db()
                .output_class_of(sc.activity())
                .expect("declared output")
        );
    }
    let _ = report;
}

/// Fig. 4: the example schema parses to exactly the paper's two rules.
#[test]
fn fig4_example_schema() {
    let schema = examples::circuit_design();
    let create = schema.rule("Create").expect("declared");
    assert_eq!(create.output(), "netlist");
    assert_eq!(create.tool(), "netlist_editor");
    assert!(create.inputs().is_empty());
    let simulate = schema.rule("Simulate").expect("declared");
    assert_eq!(simulate.output(), "performance");
    assert_eq!(simulate.tool(), "simulator");
    assert_eq!(simulate.inputs(), ["netlist", "stimuli"]);
    // The graph orders Create before Simulate.
    assert_eq!(
        SchemaGraph::for_schema(&schema).activity_order(),
        vec!["Create", "Simulate"]
    );
}

/// Fig. 5: planning twice yields versioned schedule instances with
/// provenance — SC1/SC2, CC1/CC2.
#[test]
fn fig5_plan_versions() {
    let mut h = circuit(42);
    let p1 = h.plan("performance").expect("plannable");
    let p2 = h.plan("performance").expect("plannable");
    for activity in ["Create", "Simulate"] {
        let container = h.db().schedule_container(activity).expect("exists");
        assert_eq!(container.len(), 2);
        let v2 = h.db().schedule_instance(container[1]);
        assert_eq!(v2.version(), 2);
        assert_eq!(v2.derived_from(), Some(container[0]));
    }
    let _ = (p1, p2);
}

/// Fig. 6: iterations create multiple entity instances in one
/// container; each run records its iteration number.
#[test]
fn fig6_iterations_accumulate() {
    // Find a seed where Create iterates.
    let seed = (0..100)
        .find(|&s| {
            let mut h = circuit(s);
            let r = h.execute("netlist").expect("executable");
            r.activity("Create").expect("ran").iterations >= 2
        })
        .expect("an iterating seed exists");
    let mut h = circuit(seed);
    let report = h.execute("netlist").expect("executable");
    let iters = report.activity("Create").expect("ran").iterations;
    assert_eq!(
        h.db().entity_container("netlist").expect("exists").len(),
        iters as usize
    );
    let runs = h.db().runs_of("Create");
    assert_eq!(runs.len(), iters as usize);
    for (i, run) in runs.iter().enumerate() {
        assert_eq!(run.iteration() as usize, i + 1);
    }
}

/// Fig. 7: at completion every schedule instance links to the final
/// version, and actual dates become queryable.
#[test]
fn fig7_completion_links() {
    let mut h = circuit(42);
    h.plan("performance").expect("plannable");
    h.execute("performance").expect("executable");
    for activity in ["Create", "Simulate"] {
        let sc = h.db().current_plan(activity).expect("planned");
        assert!(sc.is_complete());
        assert!(h.db().actual_start(activity).is_some());
        assert!(h.db().actual_finish(activity).is_some());
        assert!(h.db().finish_slip(activity).is_some());
    }
}

/// Fig. 8: the Gantt chart shows planned and accomplished bars and a
/// status legend.
#[test]
fn fig8_gantt_contents() {
    let mut h = circuit(42);
    h.plan("performance").expect("plannable");
    h.execute("performance").expect("executable");
    let chart = h.status().gantt(&GanttOptions {
        ascii: true,
        ..GanttOptions::default()
    });
    assert!(chart.contains("Create"));
    assert!(chart.contains("Simulate"));
    assert!(chart.contains('#'), "accomplished bars missing");
    assert!(chart.contains("[done]"));
    assert!(chart.lines().next().expect("header").starts_with("day"));
}
