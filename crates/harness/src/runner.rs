//! The property runner: seeded case loop, failure detection via
//! `catch_unwind`, greedy shrinking over the failing case's tree, and
//! a reproduction-seed report.
//!
//! Reproducibility contract: every case runs from a `u64` seed derived
//! deterministically from the property name and the case index, so a
//! failure report's seed replays **exactly** the same input via the
//! `HARNESS_SEED` environment variable — no corpus files, no network,
//! no global state.
//!
//! Environment knobs:
//!
//! * `HARNESS_SEED=<u64>` — prepend this case seed (run it first).
//! * `HARNESS_CASES=<u32>` — override the per-property case count.
//! * `HARNESS_BASE_SEED=<u64>` — shift the whole deterministic stream.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::OnceLock;

use simtools::rng::{hash_str, mix, SplitMix64};

use crate::strategy::Strategy;
use crate::tree::Tree;

/// Default number of cases per property (proptest's default is 256;
/// these are integration-heavy properties, so we default lower and let
/// `props!(config(cases = N); ...)` raise it).
pub const DEFAULT_CASES: u32 = 32;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on test executions spent shrinking a failure.
    pub max_shrink_evals: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: env_u64("HARNESS_CASES").map_or(DEFAULT_CASES, |v| v as u32),
            max_shrink_evals: 2_000,
            max_rejects: 4_096,
        }
    }
}

/// Panic payload used by `prop_assume!` to discard a case without
/// counting it as a failure.
#[derive(Debug, Clone, Copy)]
pub struct AssumeReject;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

enum CaseResult {
    Pass,
    Reject,
    Fail(String),
}

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

type Hook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>;
static ORIGINAL_HOOK: OnceLock<Hook> = OnceLock::new();

/// Installs (once, process-wide) a panic hook that stays silent while
/// the current thread is inside a harness case, so thousands of shrink
/// attempts don't spam the captured test output.
fn install_quiet_hook() {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let original = panic::take_hook();
        ORIGINAL_HOOK.set(original).ok();
        panic::set_hook(Box::new(|info| {
            if SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                return;
            }
            if let Some(orig) = ORIGINAL_HOOK.get() {
                orig(info);
            }
        }));
    });
}

fn run_case<V>(test: &impl Fn(V), value: V) -> CaseResult {
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| test(value)));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    match outcome {
        Ok(()) => CaseResult::Pass,
        Err(payload) => {
            if payload.downcast_ref::<AssumeReject>().is_some() {
                CaseResult::Reject
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                CaseResult::Fail((*s).to_owned())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                CaseResult::Fail(s.clone())
            } else {
                CaseResult::Fail("non-string panic payload".to_owned())
            }
        }
    }
}

/// Greedily descends into the first still-failing child until a local
/// minimum (or the evaluation budget) is reached. Returns the minimal
/// tree, its failure message, and (shrink steps, evaluations).
fn shrink<V: Clone + 'static>(
    failing: Tree<V>,
    first_message: String,
    test: &impl Fn(V),
    budget: u32,
) -> (Tree<V>, String, u32, u32) {
    let mut current = failing;
    let mut message = first_message;
    let mut steps = 0u32;
    let mut evals = 0u32;
    'descend: loop {
        for child in current.children() {
            if evals >= budget {
                break 'descend;
            }
            evals += 1;
            if let CaseResult::Fail(msg) = run_case(test, child.value().clone()) {
                current = child;
                message = msg;
                steps += 1;
                continue 'descend;
            }
        }
        break; // no child fails: local minimum
    }
    (current, message, steps, evals)
}

/// Checks `property` against `cases` seeded inputs drawn from
/// `strategy`; on failure, shrinks and panics with a report containing
/// the minimal input and its reproduction seed.
pub fn check<S: Strategy>(name: &str, config: &Config, strategy: &S, property: impl Fn(S::Value)) {
    install_quiet_hook();
    let base = env_u64("HARNESS_BASE_SEED").unwrap_or(0x5EED_CAFE_F00D_D00D) ^ hash_str(name);
    let mut seeds: Vec<u64> = Vec::with_capacity(config.cases as usize + 1);
    if let Some(repro) = env_u64("HARNESS_SEED") {
        seeds.push(repro);
    }
    seeds.extend((0..u64::from(config.cases)).map(|i| mix(&[base, i])));

    let mut executed = 0u32;
    let mut rejects = 0u32;
    for (index, &seed) in seeds.iter().enumerate() {
        let mut rng = SplitMix64::new(seed);
        let tree = strategy.tree(&mut rng);
        match run_case(&property, tree.value().clone()) {
            CaseResult::Pass => {
                executed += 1;
            }
            CaseResult::Reject => {
                rejects += 1;
                assert!(
                    rejects <= config.max_rejects,
                    "property '{name}': too many prop_assume! rejections \
                     ({rejects}); loosen the assumption or the generator"
                );
            }
            CaseResult::Fail(message) => {
                let original = format!("{:?}", tree.value());
                let (minimal, min_message, steps, evals) =
                    shrink(tree, message.clone(), &property, config.max_shrink_evals);
                panic!(
                    "\n[harness] property '{name}' falsified (case {case} of {total}, \
                     after {executed} passing case(s))\n\
                     [harness]   reproduce : HARNESS_SEED={seed} cargo test {name}\n\
                     [harness]   original  : {original}\n\
                     [harness]   original panic: {message}\n\
                     [harness]   minimal   : {minimal:?}  ({steps} shrink step(s), {evals} eval(s))\n\
                     [harness]   minimal panic : {min_message}\n",
                    case = index + 1,
                    total = seeds.len(),
                    minimal = minimal.value(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{vec, StrategyExt};

    #[test]
    fn passing_property_runs_all_cases() {
        let config = Config {
            cases: 40,
            ..Config::default()
        };
        check("always_true", &config, &(0u64..100), |_v| {});
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Property fails for v >= 13: minimal counterexample is 13.
        let config = Config::default();
        let result = panic::catch_unwind(|| {
            check("fails_at_13", &config, &(0u64..1_000_000), |v| {
                assert!(v < 13, "too big: {v}");
            });
        });
        let message = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(message.contains("minimal   : 13"), "{message}");
        assert!(message.contains("HARNESS_SEED="), "{message}");
    }

    #[test]
    fn vec_failures_shrink_to_shortest() {
        // Fails whenever the vec contains an element >= 5; minimal is [5].
        let config = Config::default();
        let result = panic::catch_unwind(|| {
            check("vec_min", &config, &vec(0u32..100, 0..30), |v: Vec<u32>| {
                assert!(v.iter().all(|&x| x < 5), "bad vec");
            });
        });
        let message = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(message.contains("minimal   : [5]"), "{message}");
    }

    #[test]
    fn mapped_failures_shrink_through_map() {
        let strat = (1u64..10_000).prop_map(|v| v * 2);
        let config = Config::default();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check("map_min", &config, &strat, |v| {
                assert!(v < 50, "big even: {v}");
            });
        }));
        let message = *result.expect_err("must fail").downcast::<String>().unwrap();
        // Minimal even failing value is 50.
        assert!(message.contains("minimal   : 50"), "{message}");
    }

    #[test]
    fn assume_rejections_are_not_failures() {
        let config = Config {
            cases: 16,
            ..Config::default()
        };
        check("assume_ok", &config, &(0u64..100), |v| {
            if v % 2 == 1 {
                panic::panic_any(AssumeReject);
            }
            assert!(v % 2 == 0);
        });
    }

    #[test]
    fn deterministic_failure_seed() {
        // The same property fails with the same reported seed each run.
        let grab = || {
            let result = panic::catch_unwind(|| {
                check("det_seed", &Config::default(), &(0u64..1000), |v| {
                    assert!(v < 1, "nonzero");
                });
            });
            *result.expect_err("fails").downcast::<String>().unwrap()
        };
        let a = grab();
        let b = grab();
        let seed_of = |m: &str| {
            m.split("HARNESS_SEED=")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .to_owned()
        };
        assert_eq!(seed_of(&a), seed_of(&b));
    }
}
