use std::error::Error;
use std::fmt;

/// Errors produced by the workflow manager — either its own validation
/// or a wrapped error from one of the substrate layers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HerculesError {
    /// The requested target names no data class or activity of the
    /// schema.
    UnknownTarget(String),
    /// The named activity is not part of the schema.
    UnknownActivity(String),
    /// An operation needed a plan, but the activity has never been
    /// planned.
    NotPlanned(String),
    /// An activity's tool kept producing non-converged results until
    /// the execution engine's hard iteration cap — a pathological tool
    /// model rather than an injected fault (injected persistent faults
    /// surface as *blocked* activities instead, see
    /// [`ExecutionReport::blocked`](crate::ExecutionReport::blocked)).
    IterationLimit {
        /// The activity that hit the cap.
        activity: String,
        /// The cap it hit.
        cap: u32,
    },
    /// An error from the metadata database.
    Metadata(metadata::MetadataError),
    /// An error from the storage engine beneath the metadata database
    /// (snapshot, journal tail, or compaction).
    Store(metadata::StoreError),
    /// An error from the schedule engine.
    Schedule(schedule::ScheduleError),
    /// An error from schema handling.
    Schema(schema::SchemaError),
}

impl fmt::Display for HerculesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HerculesError::UnknownTarget(t) => {
                write!(
                    f,
                    "target {t:?} names no data class or activity in the schema"
                )
            }
            HerculesError::UnknownActivity(a) => {
                write!(f, "activity {a:?} is not part of the schema")
            }
            HerculesError::NotPlanned(a) => {
                write!(f, "activity {a:?} has no schedule plan yet")
            }
            HerculesError::IterationLimit { activity, cap } => {
                write!(
                    f,
                    "activity {activity:?} did not converge within {cap} iterations"
                )
            }
            HerculesError::Metadata(e) => write!(f, "metadata: {e}"),
            HerculesError::Store(e) => write!(f, "store: {e}"),
            HerculesError::Schedule(e) => write!(f, "schedule: {e}"),
            HerculesError::Schema(e) => write!(f, "schema: {e}"),
        }
    }
}

impl Error for HerculesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HerculesError::Metadata(e) => Some(e),
            HerculesError::Store(e) => Some(e),
            HerculesError::Schedule(e) => Some(e),
            HerculesError::Schema(e) => Some(e),
            _ => None,
        }
    }
}

impl From<metadata::MetadataError> for HerculesError {
    fn from(e: metadata::MetadataError) -> Self {
        HerculesError::Metadata(e)
    }
}

impl From<metadata::StoreError> for HerculesError {
    fn from(e: metadata::StoreError) -> Self {
        HerculesError::Store(e)
    }
}

impl From<schedule::ScheduleError> for HerculesError {
    fn from(e: schedule::ScheduleError) -> Self {
        HerculesError::Schedule(e)
    }
}

impl From<schema::SchemaError> for HerculesError {
    fn from(e: schema::SchemaError) -> Self {
        HerculesError::Schema(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_preserves_source() {
        let inner = metadata::MetadataError::UnknownActivity("X".into());
        let outer: HerculesError = inner.clone().into();
        assert_eq!(outer, HerculesError::Metadata(inner));
        assert!(outer.source().is_some());
        assert!(outer.to_string().starts_with("metadata:"));
    }

    #[test]
    fn iteration_limit_message_names_activity_and_cap() {
        let e = HerculesError::IterationLimit {
            activity: "Create".into(),
            cap: 16,
        };
        let s = e.to_string();
        assert!(s.contains("Create") && s.contains("16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HerculesError>();
    }
}
