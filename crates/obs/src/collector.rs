//! The global collector: per-thread buffers behind a single runtime
//! on/off switch, RAII span guards, and exclusive tracing sessions.
//!
//! Design constraints (see DESIGN.md §9):
//!
//! * **Free when off.** [`Collector::is_enabled`] is one relaxed atomic
//!   load; the `span!`/`event!` macros check it *before* building any
//!   argument vectors, so disabled instrumentation costs a predictable
//!   branch. The `compile-off` cargo feature turns the check into a
//!   constant `false` the optimizer strips entirely.
//! * **No contention when on.** Each thread records into its own
//!   buffer (a `thread_local` slot registered once with the global
//!   registry); the only cross-thread synchronization on the hot path
//!   is the thread's own uncontended mutex.
//! * **Deterministic merge.** [`Collector::drain`] orders thread
//!   buffers by `(lane, registration index)`. Threads doing
//!   deterministic work under explicit lanes (e.g. Monte Carlo chunk
//!   workers calling [`Collector::set_lane`]) therefore produce the
//!   same [`Trace`] regardless of OS scheduling or thread count.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::flight::{self, FlightDump, FlightKind, FlightRecord, FlightRing, FlightThread};
use crate::metrics::{Counter, Metrics};
use crate::trace::{Arg, ThreadTrace, Trace, TraceItem};

/// Runtime switch. Relaxed is sufficient: enabling/disabling only
/// needs to become visible eventually, and [`Collector::drain`] locks
/// every slot mutex, which orders buffered items with the drain.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Epoch for the monotonic timestamp domain, fixed at first use so all
/// `mono_ns` values share one origin.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// All thread slots ever registered, in registration order. Slots are
/// kept alive by the `Arc` even after their thread exits so a drain
/// never loses items recorded by short-lived worker threads.
static REGISTRY: Mutex<Vec<Arc<ThreadSlot>>> = Mutex::new(Vec::new());

/// Serializes tracing sessions (see [`Collector::session`]).
static SESSION: Mutex<()> = Mutex::new(());

/// Lane value meaning "never explicitly assigned": such threads merge
/// after all explicitly-laned threads, in registration order.
const UNASSIGNED_LANE: u64 = u64::MAX;

/// One thread's recording state.
struct ThreadSlot {
    /// Position in the registry — the merge tiebreak within a lane.
    reg: usize,
    /// Deterministic merge key ([`Collector::set_lane`]).
    lane: AtomicU64,
    /// Simulated clock last published on this thread (milli-days;
    /// `i64::MIN` = none).
    sim_md: AtomicI64,
    /// Request trace id active on this thread (0 = none). Stamped into
    /// flight records; set via [`Collector::trace_scope`].
    trace_id: AtomicU64,
    /// The buffer. Uncontended in steady state — only the owning
    /// thread and a drain ever lock it.
    items: Mutex<Vec<TraceItem>>,
    /// The flight-recorder ring (see [`crate::flight`]). Same locking
    /// discipline as `items`: the owning thread and dumps only.
    flight: Mutex<FlightRing>,
}

const NO_SIM: i64 = i64::MIN;

thread_local! {
    static SLOT: Arc<ThreadSlot> = register_slot();
}

fn register_slot() -> Arc<ThreadSlot> {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let slot = Arc::new(ThreadSlot {
        reg: reg.len(),
        lane: AtomicU64::new(UNASSIGNED_LANE),
        sim_md: AtomicI64::new(NO_SIM),
        trace_id: AtomicU64::new(0),
        items: Mutex::new(Vec::new()),
        flight: Mutex::new(FlightRing::default()),
    });
    reg.push(Arc::clone(&slot));
    slot
}

fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn with_slot<R>(f: impl FnOnce(&ThreadSlot) -> R) -> R {
    SLOT.with(|s| f(s))
}

fn push_item(item: TraceItem) {
    with_slot(|slot| {
        slot.items
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(item);
    });
}

/// Appends one record to this thread's flight ring (no-op while the
/// recorder is disabled). The hot path after warmup: one thread-local
/// access, one uncontended mutex, one slot write — no allocation.
fn flight_record(kind: FlightKind, name: &'static str) {
    let cap = flight::cap();
    if cap == 0 {
        return;
    }
    let mono_ns = now_ns();
    with_slot(|slot| {
        let trace_id = slot.trace_id.load(Ordering::Relaxed);
        slot.flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(
                cap,
                FlightRecord {
                    kind,
                    name,
                    mono_ns,
                    trace_id,
                },
            );
    });
}

/// Items discarded at session start because a predecessor never
/// drained (see `Collector::session`).
fn discarded_counter() -> &'static Counter {
    static DISCARDED: OnceLock<Counter> = OnceLock::new();
    DISCARDED.get_or_init(|| Metrics::counter("obs.session.discarded"))
}

/// The process-wide trace collector. All methods are associated
/// functions — there is exactly one collector per process.
pub struct Collector;

impl Collector {
    /// Whether tracing is currently recording. One relaxed atomic load
    /// (a constant `false` under the `compile-off` feature); the
    /// macros call this before doing any other work.
    #[inline]
    pub fn is_enabled() -> bool {
        #[cfg(feature = "compile-off")]
        {
            false
        }
        #[cfg(not(feature = "compile-off"))]
        {
            ENABLED.load(Ordering::Relaxed)
        }
    }

    /// Begins an **exclusive** tracing session: enables recording and
    /// returns a guard whose [`finish`](Session::finish) disables it
    /// and drains the trace. Sessions serialize on a process-wide lock
    /// so concurrent tests (or a test and a CLI run in the same
    /// process) never pollute each other's traces; any items left over
    /// from a panicked predecessor are discarded at session start.
    pub fn session() -> Session {
        let guard = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        // Discard leftovers from sessions that never drained — counted
        // into `obs.session.discarded` so leakage is visible, not
        // silent.
        let leftovers = Self::drain_items();
        let discarded: usize = leftovers.threads.iter().map(|t| t.items.len()).sum();
        if discarded > 0 {
            discarded_counter().add(discarded as u64);
        }
        // The thread opening the session is the orchestrator: lane 0
        // by convention (workers take 1+; see `set_lane`).
        Self::set_lane(0);
        ENABLED.store(true, Ordering::Relaxed);
        Session {
            _guard: Some(guard),
        }
    }

    /// Stops recording and removes every buffered item, merged
    /// deterministically by `(lane, registration order)`. Threads that
    /// never called [`set_lane`](Collector::set_lane) merge last.
    pub fn drain() -> Trace {
        ENABLED.store(false, Ordering::Relaxed);
        Self::drain_items()
    }

    fn drain_items() -> Trace {
        let slots: Vec<Arc<ThreadSlot>> = {
            let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            reg.iter().map(Arc::clone).collect()
        };
        let mut threads: Vec<(u64, usize, Vec<TraceItem>)> = Vec::new();
        for slot in &slots {
            let items: Vec<TraceItem> = {
                let mut buf = slot.items.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *buf)
            };
            if items.is_empty() {
                continue;
            }
            threads.push((slot.lane.load(Ordering::Relaxed), slot.reg, items));
        }
        threads.sort_by_key(|(lane, reg, _)| (*lane, *reg));
        Trace {
            threads: threads
                .into_iter()
                .map(|(lane, _, items)| ThreadTrace { lane, items })
                .collect(),
        }
    }

    /// Assigns this thread's **lane** — its deterministic merge key.
    /// Worker pools should set a lane derived from the work partition
    /// (e.g. the Monte Carlo chunk index), not the OS thread, so the
    /// merged trace is invariant to scheduling and thread count.
    pub fn set_lane(lane: u64) {
        with_slot(|slot| slot.lane.store(lane, Ordering::Relaxed));
    }

    /// Publishes the simulated clock (milli-days) for this thread.
    /// Subsequent items carry it as their `sim_md` timestamp.
    pub fn set_sim_md(md: i64) {
        with_slot(|slot| slot.sim_md.store(md, Ordering::Relaxed));
    }

    /// Publishes the simulated clock from fractional WorkDays
    /// (converted to milli-days, the metadata crate's convention).
    pub fn set_sim_days(days: f64) {
        Self::set_sim_md((days * 1000.0).round() as i64);
    }

    /// Records a point event. Prefer the
    /// [`event!`](crate::event) macro, which skips argument
    /// construction when tracing is off.
    pub fn event(name: &'static str, args: Vec<Arg>) {
        flight_event(name);
        if !Self::is_enabled() {
            return;
        }
        let sim_md = current_sim_md();
        push_item(TraceItem::Event {
            name,
            mono_ns: now_ns(),
            sim_md,
            args,
        });
    }

    // --- flight recorder -------------------------------------------

    /// Whether the flight recorder is on. Like [`is_enabled`]
    /// (`Collector::is_enabled`): one relaxed load, constant `false`
    /// under `compile-off`.
    #[inline]
    pub fn flight_enabled() -> bool {
        flight::cap() > 0
    }

    /// Turns the flight recorder on with `cap` records per thread
    /// (clamped to ≥ 16). Unlike sessions this is not exclusive: it
    /// simply starts retaining the most recent spans/events on every
    /// thread until [`disable_flight`](Collector::disable_flight).
    pub fn enable_flight(cap: usize) {
        flight::set_cap(cap.max(16));
    }

    /// Turns the recorder off. Rings keep their contents (a dump after
    /// disable still shows the final window) until re-enable re-arms
    /// them.
    pub fn disable_flight() {
        flight::set_cap(0);
    }

    /// Empties every thread's flight ring and drop counter. For tests
    /// and benchmarks that need a clean window.
    pub fn flight_clear() {
        let slots: Vec<Arc<ThreadSlot>> = {
            let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            reg.iter().map(Arc::clone).collect()
        };
        for slot in &slots {
            slot.flight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
        }
    }

    /// Merges every thread's flight ring into one snapshot, ordered by
    /// `(lane, registration)` like a session drain. Rings are *copied*,
    /// not drained — recording continues, and a second dump sees the
    /// same (plus newer) records.
    pub fn flight_dump() -> FlightDump {
        let slots: Vec<Arc<ThreadSlot>> = {
            let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            reg.iter().map(Arc::clone).collect()
        };
        let mut threads: Vec<(u64, usize, FlightThread)> = Vec::new();
        for slot in &slots {
            let (records, dropped) = slot
                .flight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain_ordered();
            if records.is_empty() && dropped == 0 {
                continue;
            }
            let lane = slot.lane.load(Ordering::Relaxed);
            threads.push((
                lane,
                slot.reg,
                FlightThread {
                    lane,
                    dropped,
                    records,
                },
            ));
        }
        threads.sort_by_key(|(lane, reg, _)| (*lane, *reg));
        FlightDump {
            threads: threads.into_iter().map(|(_, _, t)| t).collect(),
        }
    }

    // --- request trace ids -----------------------------------------

    /// Installs `trace_id` as this thread's current request id for the
    /// returned guard's lifetime; flight records written meanwhile are
    /// stamped with it. Nested scopes restore the outer id on drop.
    /// Id 0 means "no trace" and is never stamped.
    pub fn trace_scope(trace_id: u64) -> TraceScope {
        let previous = with_slot(|slot| slot.trace_id.swap(trace_id, Ordering::Relaxed));
        TraceScope { previous }
    }

    /// This thread's current request trace id (0 = none).
    pub fn current_trace_id() -> u64 {
        with_slot(|slot| slot.trace_id.load(Ordering::Relaxed))
    }
}

/// Records a flight-only event: no argument vector is ever built.
/// Used by `event!` when only the flight recorder is on (and by
/// [`Collector::event`] so sessions and the recorder see the same
/// stream).
pub fn flight_event(name: &'static str) {
    flight_record(FlightKind::Event, name);
}

/// RAII guard restoring the thread's previous trace id
/// (see [`Collector::trace_scope`]).
#[must_use = "the trace id is cleared when this guard drops"]
pub struct TraceScope {
    previous: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        with_slot(|slot| slot.trace_id.store(self.previous, Ordering::Relaxed));
    }
}

fn current_sim_md() -> Option<i64> {
    with_slot(|slot| {
        let md = slot.sim_md.load(Ordering::Relaxed);
        (md != NO_SIM).then_some(md)
    })
}

/// An exclusive tracing session (see [`Collector::session`]).
///
/// Dropping the session without calling [`finish`](Session::finish)
/// disables recording but leaves buffered items for the next session
/// to discard — fine for panicking tests.
pub struct Session {
    _guard: Option<MutexGuard<'static, ()>>,
}

impl Session {
    /// Ends the session: disables recording and returns the merged
    /// trace. The drain happens while the session lock is still held,
    /// so a successor session can never observe this session's items.
    pub fn finish(self) -> Trace {
        let trace = Collector::drain();
        drop(self); // releases the session lock (Drop re-disables, harmlessly)
        trace
    }

    /// Drains the trace **without** ending the session — used by
    /// overhead benches that measure export cost in a loop. Recording
    /// stays enabled.
    pub fn drain_partial(&self) -> Trace {
        Collector::drain_items()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// RAII guard for one span: records `Enter` on creation (when active)
/// and the matching `Exit` on drop. Create via the
/// [`span!`](crate::span) macro.
#[must_use = "a span guard measures the scope it lives in; dropping it immediately closes the span"]
pub struct SpanGuard {
    active: bool,
    /// Whether the exit must also be written to the flight ring.
    flight: bool,
    /// The span name, kept for the flight exit record.
    name: &'static str,
    /// Annotations recorded during the span, attached to the exit.
    exit_args: Vec<Arg>,
}

impl SpanGuard {
    /// Opens a span now. Callers should check
    /// [`Collector::is_enabled`] first (the macro does) — an enter
    /// recorded here is unconditional. The flight ring gets the same
    /// enter when the recorder is on, so a session never blinds it.
    pub fn enter(name: &'static str, args: Vec<Arg>) -> Self {
        let flight = Collector::flight_enabled();
        if flight {
            flight_record(FlightKind::Enter, name);
        }
        let sim_md = current_sim_md();
        push_item(TraceItem::Enter {
            name,
            mono_ns: now_ns(),
            sim_md,
            args,
        });
        SpanGuard {
            active: true,
            flight,
            name,
            exit_args: Vec::new(),
        }
    }

    /// Opens a flight-only span: no session item, no argument vector —
    /// the zero-alloc path the `span!` macro takes when only the
    /// recorder is on.
    pub fn enter_flight(name: &'static str) -> Self {
        flight_record(FlightKind::Enter, name);
        SpanGuard {
            active: false,
            flight: true,
            name,
            exit_args: Vec::new(),
        }
    }

    /// A no-op guard for the disabled path.
    pub fn inactive() -> Self {
        SpanGuard {
            active: false,
            flight: false,
            name: "",
            exit_args: Vec::new(),
        }
    }

    /// Whether this guard records anything.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Attaches an annotation to the span's exit — for results only
    /// known at the end (e.g. a dirty-set size computed inside the
    /// span). No-op on inactive guards.
    pub fn record(&mut self, key: &'static str, value: impl Into<crate::trace::ArgValue>) {
        if self.active {
            self.exit_args.push(Arg::new(key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.flight {
            flight_record(FlightKind::Exit, self.name);
        }
        if !self.active {
            return;
        }
        let sim_md = current_sim_md();
        push_item(TraceItem::Exit {
            mono_ns: now_ns(),
            sim_md,
            args: std::mem::take(&mut self.exit_args),
        });
    }
}

#[cfg(all(test, not(feature = "compile-off")))]
mod tests {
    use super::*;

    #[test]
    fn session_records_spans_events_and_sim_time() {
        let session = Collector::session();
        Collector::set_lane(0);
        Collector::set_sim_days(1.5);
        {
            let mut g = SpanGuard::enter("outer", vec![Arg::new("k", 7u64)]);
            Collector::event("ping", Vec::new());
            g.record("result", true);
        }
        let trace = session.finish();
        trace.validate().unwrap();
        assert_eq!(trace.span_count(), 1);
        assert_eq!(trace.event_count(), 1);
        let s = trace.first_span("outer").unwrap();
        assert_eq!(s.sim_start_md, Some(1500));
        assert_eq!(s.arg("k"), Some(&crate::trace::ArgValue::U64(7)));
        assert_eq!(s.arg("result"), Some(&crate::trace::ArgValue::Bool(true)));
        assert!(trace.has_event("ping"));
        // Recording is off again and the buffers are empty.
        assert!(!Collector::is_enabled());
        let empty = Collector::session().finish();
        assert!(empty.is_empty());
    }

    #[test]
    fn disabled_records_nothing() {
        // No session: is_enabled is false, guards are inert.
        assert!(!Collector::is_enabled());
        Collector::event("dropped", Vec::new());
        let g = SpanGuard::inactive();
        assert!(!g.is_active());
        drop(g);
        let trace = Collector::session().finish();
        assert!(trace.is_empty(), "leftovers: {trace:?}");
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        std::thread::spawn(|| {
            assert_eq!(Collector::current_trace_id(), 0);
            let outer = Collector::trace_scope(7);
            assert_eq!(Collector::current_trace_id(), 7);
            {
                let inner = Collector::trace_scope(9);
                assert_eq!(Collector::current_trace_id(), 9);
                drop(inner);
            }
            assert_eq!(Collector::current_trace_id(), 7);
            drop(outer);
            assert_eq!(Collector::current_trace_id(), 0);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn flight_recorder_captures_without_a_session() {
        Collector::enable_flight(64);
        {
            let _scope = Collector::trace_scope(0xf11f);
            let _g = SpanGuard::enter_flight("flight.test.span");
            flight_event("flight.test.event");
        }
        // No session needed: the flight ring holds the stamped window.
        let dump = Collector::flight_dump().filter_trace(0xf11f);
        assert_eq!(dump.total_records(), 3, "{dump:?}");
        let kinds: Vec<FlightKind> = dump.threads[0].records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![FlightKind::Enter, FlightKind::Event, FlightKind::Exit]
        );
        assert_eq!(dump.threads[0].records[0].name, "flight.test.span");
        // Dumps copy, not drain: the window is still there.
        assert_eq!(
            Collector::flight_dump()
                .filter_trace(0xf11f)
                .total_records(),
            3
        );
    }

    #[test]
    fn session_discarded_leftovers_are_counted() {
        let counter = Metrics::counter("obs.session.discarded");
        let before = counter.get();
        {
            let session = Collector::session();
            Collector::event("leak.one", Vec::new());
            Collector::event("leak.two", Vec::new());
            drop(session); // never drained: items stay buffered
        }
        let session = Collector::session(); // discards and counts them
        drop(session.finish());
        assert!(
            counter.get() >= before + 2,
            "discards went uncounted: {} -> {}",
            before,
            counter.get()
        );
    }

    #[test]
    fn threads_merge_by_lane_not_schedule() {
        let session = Collector::session();
        Collector::set_lane(100); // main thread merges last
        std::thread::scope(|scope| {
            for lane in (0..4u64).rev() {
                scope.spawn(move || {
                    Collector::set_lane(lane);
                    let _g = SpanGuard::enter("work", vec![Arg::new("lane", lane)]);
                    Collector::event("tick", Vec::new());
                });
            }
        });
        let trace = session.finish();
        trace.validate().unwrap();
        let lanes: Vec<u64> = trace.threads.iter().map(|t| t.lane).collect();
        assert_eq!(lanes, vec![0, 1, 2, 3]);
        assert_eq!(trace.span_count(), 4);
    }
}
