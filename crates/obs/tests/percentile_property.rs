//! Property tests for `Histogram::percentile`: monotone in `q`, and
//! the estimate always lands in the bucket containing the true sample
//! quantile (so error is bounded by bucket width).

use harness::strategy::{any_u16, vec};
use harness::{prop_assert, props};
use obs::Histogram;

/// Bucket upper edges used throughout; u16 samples above 16384 land in
/// the overflow bucket, exercising the clamp-to-last-bound path.
const BOUNDS: [f64; 6] = [16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0];

/// `[lower, upper]` edges of the bucket a sample falls into, mirroring
/// the histogram's "first bound >= sample" rule.
fn bucket_range(v: f64) -> (f64, f64) {
    let mut lower = 0.0f64.min(BOUNDS[0]);
    for &b in &BOUNDS {
        if v <= b {
            return (lower, b);
        }
        lower = b;
    }
    (lower, f64::INFINITY)
}

/// Nearest-rank sample quantile: the `max(ceil(q*n), 1)`-th smallest.
fn true_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

props! {
    fn percentile_is_monotone_in_q(raw in vec(any_u16(), 1..300)) {
        let h = Histogram::with_bounds(&BOUNDS);
        for v in &raw {
            h.observe(f64::from(*v));
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=40 {
            let q = i as f64 / 40.0;
            let est = h.percentile(q);
            prop_assert!(
                est >= prev - 1e-9,
                "percentile({q}) = {est} < percentile(prev) = {prev}"
            );
            prev = est;
        }
    }

    fn percentile_brackets_the_true_sample_quantile(raw in vec(any_u16(), 1..300)) {
        let h = Histogram::with_bounds(&BOUNDS);
        let mut sorted: Vec<f64> = raw.iter().map(|v| f64::from(*v)).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for v in &sorted {
            h.observe(*v);
        }
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = h.percentile(q);
            let truth = true_quantile(&sorted, q);
            let (lower, upper) = bucket_range(truth);
            if upper.is_finite() {
                prop_assert!(
                    (lower - 1e-9..=upper + 1e-9).contains(&est),
                    "percentile({q}) = {est} outside true-quantile bucket [{lower}, {upper}] \
                     (truth = {truth}, n = {})",
                    sorted.len()
                );
            } else {
                // Overflow bucket: the histogram cannot see past its
                // largest finite bound and must say so, not guess.
                prop_assert!(
                    est == *BOUNDS.last().unwrap(),
                    "overflow quantile must clamp to the last bound, got {est}"
                );
            }
        }
    }
}
