//! The shared `Store` conformance suite: every behavioural check runs
//! identically against all backends — [`ArenaStore`],
//! [`PersistentStore`] on the real filesystem, and [`PersistentStore`]
//! behind a no-fault [`FaultVfs`] — so the persistent engine cannot
//! drift from the in-memory semantics the rest of the workspace is
//! tested against, and the fault-injection seam is proven
//! behaviour-identical when no faults are planned.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use metadata::{ArenaStore, MetadataDb, MetadataError, PersistentStore, Store};
use schedule::WorkDays;
use schema::examples;
use simtools::vfs::{FaultVfs, MemVfs, RealVfs, Vfs, VfsFaultPlan};

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

/// A scratch directory unique per process + call, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "schedflow-conformance-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn seed_db() -> MetadataDb {
    MetadataDb::for_schema(&examples::circuit_design())
}

/// Runs `check` once per backend. The persistent backends get their
/// own scratch directories; all start from the same schema-initialised
/// database with journaling on. The third backend routes every I/O
/// call through a [`FaultVfs`] with an empty fault plan: with no
/// faults, the seam must be invisible.
fn for_each_backend(tag: &str, check: impl Fn(&mut dyn Store)) {
    let mut arena = ArenaStore::new(seed_db());
    arena.enable_journal();
    check(&mut arena);

    let scratch = ScratchDir::new(tag);
    let mut persistent = PersistentStore::create(&scratch.0, seed_db()).unwrap();
    check(&mut persistent);

    let scratch = ScratchDir::new(&format!("{tag}-faultvfs"));
    let faulty = FaultVfs::new(RealVfs::arc(), VfsFaultPlan::none());
    let mut seamed =
        PersistentStore::create_on(faulty.clone() as Arc<dyn Vfs>, &scratch.0, seed_db()).unwrap();
    check(&mut seamed);
    assert_eq!(faulty.injected(), 0, "a no-fault plan must inject nothing");
}

/// One planned + executed + completed activity; returns nothing so the
/// same closure body type-checks for both backends.
fn lifecycle(store: &mut dyn Store) {
    let s = store.begin_planning(WorkDays::ZERO);
    let sc = store
        .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
        .unwrap();
    store.assign(sc, "alice").unwrap();
    let stim = store.store_data("vec.stim", b"0101".to_vec());
    store
        .supply_input("stimuli", "bob", WorkDays::ZERO, stim)
        .unwrap();
    let run = store
        .begin_run("Create", "alice", WorkDays::new(0.5))
        .unwrap();
    let data = store.store_data("v1.net", b"module".to_vec());
    let e = store
        .finish_run(run, "netlist", data, WorkDays::new(1.5), &[])
        .unwrap();
    store.link_completion(sc, e).unwrap();
}

#[test]
fn conformance_lifecycle_state() {
    for_each_backend("lifecycle", |store| {
        lifecycle(store);
        let db = store.db();
        assert_eq!(db.entity_count(), 2);
        assert_eq!(db.schedule_count(), 1);
        assert_eq!(db.runs().len(), 1);
        assert_eq!(db.data_count(), 2);
        assert!(db.current_plan("Create").unwrap().is_complete());
        assert_eq!(db.actual_start("Create"), Some(WorkDays::new(0.5)));
        assert_eq!(db.actual_finish("Create"), Some(WorkDays::new(1.5)));
        db.check_invariants().unwrap();
    });
}

#[test]
fn conformance_validation_errors() {
    for_each_backend("validation", |store| {
        assert!(matches!(
            store.begin_run("Fabricate", "alice", WorkDays::ZERO),
            Err(MetadataError::UnknownActivity(_))
        ));
        let s = store.begin_planning(WorkDays::ZERO);
        assert!(store
            .plan_activity(s, "ghost", WorkDays::ZERO, WorkDays::ZERO)
            .is_err());
        let data = store.store_data("x", vec![]);
        let run = store
            .begin_run("Create", "alice", WorkDays::new(1.0))
            .unwrap();
        assert!(matches!(
            store.finish_run(run, "performance", data, WorkDays::new(2.0), &[]),
            Err(MetadataError::WrongOutputClass { .. })
        ));
        assert!(matches!(
            store.finish_run(run, "netlist", data, WorkDays::ZERO, &[]),
            Err(MetadataError::InvalidTimestamps { .. })
        ));
    });
}

#[test]
fn conformance_journal_replays_to_identical_state() {
    for_each_backend("journal", |store| {
        lifecycle(store);
        let journal = store.take_journal().expect("journaling is on");
        // The arena journal replays from empty; the persistent tail
        // replays onto the snapshot. Both equal the live state.
        match store.path() {
            None => {
                let recovered = MetadataDb::recover(&journal).unwrap();
                assert_eq!(recovered.dump(), store.db().dump());
            }
            Some(dir) => {
                let current: u64 = fs::read_to_string(dir.join("CURRENT"))
                    .unwrap()
                    .trim()
                    .parse()
                    .unwrap();
                let snapshot =
                    fs::read_to_string(dir.join(format!("snapshot-{current}.txt"))).unwrap();
                let (_, body) = metadata::framing::decode_snapshot(&snapshot).unwrap();
                let mut db = MetadataDb::load_at(body, current as u32).unwrap();
                db.apply_journal(&journal).unwrap();
                assert_eq!(db.dump(), store.db().dump());
            }
        }
    });
}

#[test]
fn conformance_injected_crash_keeps_op_in_journal() {
    for_each_backend("crash", |store| {
        lifecycle(store);
        let ops_before = store.db().journal().unwrap().len();
        let runs_before = store.db().runs().len();
        store.inject_crash_after(0);
        assert!(matches!(
            store.begin_run("Simulate", "bob", WorkDays::new(2.0)),
            Err(MetadataError::InjectedCrash)
        ));
        // Append-before-apply: the journal holds the torn op, the
        // database state does not.
        assert_eq!(store.db().journal().unwrap().len(), ops_before + 1);
        assert_eq!(store.db().runs().len(), runs_before);
        assert!(store.db().has_crashed());
    });
}

#[test]
fn conformance_compaction_preserves_state_and_stales_handles() {
    for_each_backend("compact", |store| {
        let s = store.begin_planning(WorkDays::ZERO);
        let sc = store
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        let dump = store.db().dump();
        let gen_before = store.db().generation();
        let stats = store.compact().unwrap();
        assert_eq!(store.db().dump(), dump, "compaction must not change state");
        assert_eq!(stats.generation, store.db().generation());
        assert!(store.db().generation() > gen_before);
        // Old handles are stale; re-queried handles are fresh.
        assert!(matches!(
            store.assign(sc, "bob"),
            Err(MetadataError::StaleHandle(_))
        ));
        let fresh = store.db().schedule_container("Create").unwrap()[0];
        store.assign(fresh, "bob").unwrap();
        store.db().check_invariants().unwrap();
    });
}

#[test]
fn conformance_clone_is_independent() {
    for_each_backend("clone", |store| {
        lifecycle(store);
        let mut fork = store.boxed_clone();
        let before = store.db().dump();
        fork.begin_planning(WorkDays::new(9.0));
        assert_eq!(store.db().dump(), before, "fork writes must not leak back");
        assert_ne!(fork.db().dump(), before);
    });
}

#[test]
fn conformance_replace_db_swaps_state() {
    for_each_backend("replace", |store| {
        lifecycle(store);
        let mut other = seed_db();
        other.begin_planning(WorkDays::new(3.0));
        let expected = other.dump();
        store.replace_db(other).unwrap();
        assert_eq!(store.db().dump(), expected);
        store.checkpoint().unwrap();
    });
}

/// Property: ENOSPC at *every* write during `compact()` — first write,
/// second, ... until the compaction finally succeeds — leaves the
/// store usable in memory and reopenable from disk with its full
/// pre-compaction contents. The commit protocol has no point of no
/// return short of the `CURRENT` swap.
#[test]
fn conformance_compact_survives_enospc_at_every_injection_point() {
    let mut k = 0u64;
    loop {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(mem.clone(), VfsFaultPlan::none());
        let mut store =
            PersistentStore::create_on(faulty.clone() as Arc<dyn Vfs>, "/p", seed_db()).unwrap();
        lifecycle(&mut store);
        let dump = store.db().dump();
        faulty.arm_enospc_after(k);
        let result = store.compact();
        faulty.disarm();
        let succeeded = result.is_ok();
        if !succeeded {
            assert!(
                matches!(result, Err(metadata::StoreError::Io { .. })),
                "ENOSPC must surface as a typed I/O error: {result:?}"
            );
        }
        // Either way: live state unchanged, disk state reopenable and
        // byte-identical.
        assert_eq!(store.db().dump(), dump);
        drop(store);
        let reopened = PersistentStore::open_on(mem as Arc<dyn Vfs>, "/p").unwrap();
        assert_eq!(reopened.db().dump(), dump);
        if succeeded {
            assert_eq!(reopened.sequence(), 1, "compaction committed");
            break;
        }
        assert_eq!(
            reopened.sequence(),
            0,
            "failed compaction left the old epoch"
        );
        k += 1;
        assert!(k < 64, "compaction should need far fewer than 64 writes");
    }
    assert!(k >= 2, "the sweep must actually exercise failing writes");
}
