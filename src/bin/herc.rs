//! `herc` — a command-line front end to the integrated workflow
//! manager, the batch equivalent of the paper's Fig. 8 user interface.
//!
//! ```text
//! herc schema <file>                         validate and print a task schema
//! herc plan   <file> <target> [options]      propose a schedule
//! herc run    <file> <target> [options]      plan, execute, and show status
//! herc sweep  <file> <target> --deadline D   find the minimal team
//! herc report <file> <target> --load DB      full report from a saved database
//! herc chaos  [--seed N] [--count K] [--trace-dir DIR]
//!                                            replay seeded chaos scenarios
//! herc trace  <scenario> [--seed N] [--out FILE] [--jsonl] [--logical]
//!                                            record a session as Chrome JSON
//! herc metrics <scenario> [--seed N] [--json]
//!                                            run a scenario, dump the registry
//! herc ws <root> list                        list persisted projects
//! herc ws <root> create <name> <file> [options]
//!                                            create a persistent project
//! herc ws <root> plan <name> <file> <target> [options]
//!                                            plan inside a persisted project
//! herc ws <root> run  <name> <file> <target> [options]
//!                                            plan + execute + status
//! herc ws <root> status <name> <file> [options]
//!                                            status of a persisted project
//! herc gc <root> [<name>...]                 compact project journals
//! herc fsck <root> [--repair]                scrub every project store under
//!                                            a root (checksums, headers,
//!                                            session configs); --repair
//!                                            rebuilds damaged stores from
//!                                            their best recoverable state
//! herc serve <root> [--addr HOST:PORT] [--tokens FILE] [--workers N]
//!                                            serve the workspace over HTTP
//!                                            (`:memory:` for a scratch root;
//!                                            --oneshot METHOD PATH issues one
//!                                            loopback request and exits)
//!
//! options:
//!   --team N      designers on the project (default 2)
//!   --seed N      project seed (default 42)
//!   --estimate ACTIVITY=DAYS   designer intuition (repeatable)
//!   --save FILE   dump the metadata database after `run`
//!   --load FILE   restore a previously saved database first
//!   --policy P    scheduling policy for `run` / `ws run`:
//!                 fifo (default), minslack, heft, worksteal
//!   --workers N   execute on a simulated uniform cluster of N workers
//!                 instead of binding activities to their assignees
//! ```
//!
//! `trace` scenarios are the named sessions in [`hercules::trace`]:
//! `fig8` (the paper's Fig. 8 walkthrough) and `chaos` (a seeded fault
//! scenario). The default output is Chrome `trace_event` JSON — load it
//! at `chrome://tracing` or <https://ui.perfetto.dev>. `--jsonl` emits
//! the flat event log instead; `--logical` switches timestamps to the
//! deterministic logical timebase (what the golden test pins). When a
//! `chaos` run fails with `--trace-dir`, each failing seed ships its
//! trace as `DIR/chaos_trace_seed_N.json`.
//!
//! Example:
//!
//! ```text
//! herc run examples.schema performance --team 2 --seed 7
//! ```

use std::process::ExitCode;

use hercules::{ExecutionPolicy, Hercules, Workspace};
use metadata::{PersistentStore, Store};
use schedule::gantt::GanttOptions;
use schedule::WorkDays;
use simtools::cluster::Cluster;
use simtools::{workload::Team, ToolLibrary};

struct Options {
    team: usize,
    seed: u64,
    deadline: Option<f64>,
    estimates: Vec<(String, f64)>,
    save: Option<String>,
    load: Option<String>,
    policy: Option<ExecutionPolicy>,
    workers: Option<usize>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: herc <schema|plan|run|sweep|report> <schema-file> [<target>] \
         [--team N] [--seed N] [--deadline D] [--estimate ACTIVITY=DAYS] \
         [--policy P] [--workers N]\n\
         \x20      herc chaos [--seed N] [--count K] [--policy P] [--trace-dir DIR]\n\
         \x20      herc trace <fig8|chaos> [--seed N] [--out FILE] [--jsonl] [--logical]\n\
         \x20      herc metrics <fig8|chaos> [--seed N] [--json]\n\
         \x20      herc ws <root> <list|create|plan|run|status> [<name> <schema-file> [<target>]] [options]\n\
         \x20      herc gc <root> [<name>...]\n\
         \x20      herc fsck <root> [--repair]\n\
         \x20      herc serve <root> [--addr HOST:PORT] [--tokens FILE] [--workers N] \
         [--queue-cap N] [--tenant-cap N] [--access-log FILE] [--flight-cap N] \
         [--oneshot METHOD PATH] [--trace-id HEX]\n\
         \x20      herc top <url> [--token TOKEN] [--interval SECS] [--count N]"
    );
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        team: 2,
        seed: 42,
        deadline: None,
        estimates: Vec::new(),
        save: None,
        load: None,
        policy: None,
        workers: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--team" => {
                opts.team = value("--team")?
                    .parse()
                    .map_err(|e| format!("--team: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--deadline" => {
                opts.deadline = Some(
                    value("--deadline")?
                        .parse()
                        .map_err(|e| format!("--deadline: {e}"))?,
                );
            }
            "--save" => {
                opts.save = Some(value("--save")?);
            }
            "--load" => {
                opts.load = Some(value("--load")?);
            }
            "--policy" => {
                opts.policy = Some(value("--policy")?.parse()?);
            }
            "--workers" => {
                opts.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--estimate" => {
                let spec = value("--estimate")?;
                let (activity, days) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--estimate wants ACTIVITY=DAYS, got {spec:?}"))?;
                let days: f64 = days.parse().map_err(|e| format!("--estimate: {e}"))?;
                opts.estimates.push((activity.to_owned(), days));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn manager(source: &str, opts: &Options) -> Result<Hercules, String> {
    let schema = schema::parse_schema(source).map_err(|e| e.to_string())?;
    let mut h = Hercules::new(
        schema,
        ToolLibrary::standard(),
        Team::of_size(opts.team.max(1)),
        opts.seed,
    );
    for (activity, days) in &opts.estimates {
        h.set_estimate(activity, WorkDays::new(*days))
            .map_err(|e| e.to_string())?;
    }
    if let Some(policy) = opts.policy {
        h.set_execution_policy(policy);
    }
    if let Some(workers) = opts.workers {
        if workers == 0 {
            return Err("--workers wants at least 1".to_owned());
        }
        h.set_cluster(Cluster::uniform(workers));
    }
    if let Some(path) = &opts.load {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let db = metadata::MetadataDb::load(&text).map_err(|e| e.to_string())?;
        h.restore_db(db).map_err(|e| e.to_string())?;
    }
    Ok(h)
}

fn cmd_schema(source: &str) -> Result<(), String> {
    let schema = schema::parse_schema(source).map_err(|e| e.to_string())?;
    print!("{schema}");
    let graph = schema::SchemaGraph::for_schema(&schema);
    println!("activity order: {}", graph.activity_order().join(" -> "));
    println!(
        "primary inputs: {}",
        schema
            .primary_inputs()
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

fn cmd_plan(source: &str, target: &str, opts: &Options) -> Result<(), String> {
    let mut h = manager(source, opts)?;
    let plan = h.plan(target).map_err(|e| e.to_string())?;
    println!("proposed schedule for {target:?} (team of {}):", opts.team);
    for pa in plan.activities() {
        println!(
            "  {:<16} [{} .. {}] {} {}",
            pa.activity,
            pa.start,
            pa.start + pa.duration,
            if pa.critical { "*" } else { " " },
            pa.assignee
        );
    }
    println!("proposed finish: day {}", plan.project_finish());
    Ok(())
}

fn cmd_run(source: &str, target: &str, opts: &Options) -> Result<(), String> {
    let mut h = manager(source, opts)?;
    h.plan(target).map_err(|e| e.to_string())?;
    let report = h.execute(target).map_err(|e| e.to_string())?;
    println!(
        "executed {} activities in {} runs, finished day {}",
        report.activities().len(),
        report.total_runs(),
        report.finished_at()
    );
    let status = h.status();
    print!(
        "\n{}",
        status.gantt(&GanttOptions {
            ascii: true,
            width: 64,
            label_width: 16,
            ..GanttOptions::default()
        })
    );
    println!("\n{status}");
    println!("variance: {}", status.variance());
    if let Some(path) = &opts.save {
        std::fs::write(path, h.db().dump()).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("database saved to {path}");
    }
    Ok(())
}

fn cmd_report(source: &str, target: &str, opts: &Options) -> Result<(), String> {
    let h = manager(source, opts)?;
    let report = h
        .project_report(&hercules::report::ReportOptions::for_target(target))
        .map_err(|e| e.to_string())?;
    print!("{report}");
    Ok(())
}

fn cmd_sweep(source: &str, target: &str, opts: &Options) -> Result<(), String> {
    let deadline = opts.deadline.ok_or("sweep needs --deadline DAYS")?;
    let h = manager(source, opts)?;
    let sweep = h
        .sweep_team_sizes(target, WorkDays::new(deadline), opts.team.max(1).max(6))
        .map_err(|e| e.to_string())?;
    println!("team-size sweep for {target:?} (deadline day {deadline}):");
    for p in &sweep.points {
        let marker = if p.finish.days() <= deadline {
            "meets"
        } else {
            "     "
        };
        println!(
            "  {} designer(s): finish day {}  {marker}",
            p.team_size, p.finish
        );
    }
    match sweep.minimal_team {
        Some(team) => println!("minimal team meeting the deadline: {team}"),
        None => println!("no team size within the sweep meets the deadline"),
    }
    if let Some(sat) = sweep.saturation_team {
        println!("staffing saturates at {sat} designer(s)");
    }
    Ok(())
}

/// Replays seeded chaos scenarios (`hercules::chaos`) and reports each
/// one's verdict. Exits non-zero if any scenario violates a property —
/// the interactive twin of the `chaos` CI stage, used to replay a CI
/// failure locally: `herc chaos --seed N`.
///
/// With `--trace-dir DIR`, every *failing* seed is re-run under the
/// trace collector and its Chrome `trace_event` JSON is written to
/// `DIR/chaos_trace_seed_N.json`, so the telemetry of the failure
/// travels with the failure report.
///
/// Each seed normally draws its own scheduling policy; `--policy P`
/// pins every scenario to one policy instead (the rest of the seed
/// derivation is unchanged, so a sweep stays comparable across
/// policies).
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let mut seed = 0u64;
    let mut count = 1u64;
    let mut policy: Option<ExecutionPolicy> = None;
    let mut trace_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--count" => {
                count = value("--count")?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?;
                if count == 0 {
                    return Err("--count must be at least 1".to_owned());
                }
            }
            "--policy" => {
                policy = Some(value("--policy")?.parse()?);
            }
            "--trace-dir" => {
                trace_dir = Some(value("--trace-dir")?);
            }
            other => return Err(format!("chaos: unknown option {other:?}")),
        }
    }
    let reports: Vec<_> = match policy {
        None => hercules::chaos::run_suite(seed, count),
        Some(p) => (seed..seed + count)
            .map(|s| {
                hercules::chaos::ChaosScenario::from_seed(s)
                    .with_policy(p)
                    .run()
            })
            .collect(),
    };
    let mut failing: Vec<u64> = Vec::new();
    for report in &reports {
        println!("{report}");
        if !report.is_clean() {
            failing.push(report.seed);
        }
    }
    if let Some(dir) = &trace_dir {
        for s in &failing {
            let trace = hercules::trace::record("chaos", *s)?;
            let json = obs::export::to_chrome(&trace, obs::export::Timebase::Wall);
            let path = std::path::Path::new(dir).join(format!("chaos_trace_seed_{s}.json"));
            obs::export::write_atomic(&path, &json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("trace for failing seed {s} written to {}", path.display());
        }
    }
    if !failing.is_empty() {
        return Err(format!(
            "{}/{count} chaos scenario(s) violated failure-semantics properties",
            failing.len()
        ));
    }
    Ok(())
}

/// Records a named scenario (`hercules::trace`) and writes (or prints)
/// the trace: Chrome `trace_event` JSON by default, the flat JSONL
/// event log with `--jsonl`. `--logical` swaps wall-clock for the
/// deterministic logical timebase.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let Some(scenario) = args.first() else {
        return Err(format!(
            "trace needs a scenario (one of: {})",
            hercules::trace::SCENARIOS.join(", ")
        ));
    };
    let mut seed = hercules::trace::CHAOS_TRACE_SEED;
    let mut out: Option<String> = None;
    let mut jsonl = false;
    let mut timebase = obs::export::Timebase::Wall;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out = Some(value("--out")?),
            "--jsonl" => jsonl = true,
            "--logical" => timebase = obs::export::Timebase::Logical,
            other => return Err(format!("trace: unknown option {other:?}")),
        }
    }
    let trace = hercules::trace::record(scenario, seed)?;
    trace.validate()?;
    let rendered = if jsonl {
        obs::export::to_jsonl(&trace, timebase)
    } else {
        obs::export::to_chrome(&trace, timebase)
    };
    match &out {
        Some(path) => {
            let path = std::path::Path::new(path);
            obs::export::write_atomic(path, &rendered)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!(
                "{} spans, {} events -> {}",
                trace.span_count(),
                trace.event_count(),
                path.display()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Runs a named scenario and dumps the process-wide metrics registry —
/// the aggregate view (counters + histograms) that complements the
/// per-session span tree of `herc trace`.
fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let Some(scenario) = args.first() else {
        return Err(format!(
            "metrics needs a scenario (one of: {})",
            hercules::trace::SCENARIOS.join(", ")
        ));
    };
    let mut seed = hercules::trace::CHAOS_TRACE_SEED;
    let mut json = false;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--json" => json = true,
            other => return Err(format!("metrics: unknown option {other:?}")),
        }
    }
    obs::Metrics::reset();
    hercules::trace::record(scenario, seed)?;
    if json {
        print!("{}", obs::Metrics::to_json());
    } else {
        print!("{}", obs::Metrics::render());
    }
    Ok(())
}

/// Compacts persisted project stores under a workspace root: folds
/// each journal tail into a fresh snapshot (`snapshot-{N+1}` +
/// empty tail, swapped in via temp/rename) and reports what shrank.
/// With no names, every on-disk project is compacted.
fn cmd_gc(args: &[String]) -> Result<(), String> {
    let Some(root) = args.first() else {
        return Err("gc needs a workspace root directory".to_owned());
    };
    if !std::path::Path::new(root).is_dir() {
        return Err(format!("no workspace at {root:?}: not a directory"));
    }
    let names: Vec<String> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        Workspace::on_disk_projects(root)
    };
    if names.is_empty() {
        return Err(format!("no projects found under {root:?}"));
    }
    for name in &names {
        let dir = std::path::Path::new(root).join(name);
        let mut store = PersistentStore::open(&dir).map_err(|e| format!("{name}: {e}"))?;
        let stats = store.compact().map_err(|e| format!("{name}: {e}"))?;
        println!(
            "{name}: folded {} tail op(s), {} -> {} bytes, now at generation {}",
            stats.tail_ops_before, stats.bytes_before, stats.bytes_after, stats.generation
        );
    }
    Ok(())
}

/// Scrubs every project store under a workspace root, printing a
/// per-file verdict, and exits non-zero if anything is damaged. With
/// `--repair`, rebuilds each damaged-but-repairable store from its
/// best recoverable state first (damaged files are quarantined as
/// `<name>.quarantine`, never deleted).
fn cmd_fsck(args: &[String]) -> Result<(), String> {
    let Some(root) = args.first() else {
        return Err("fsck usage: herc fsck <root> [--repair]".to_owned());
    };
    let mut repair = false;
    for arg in &args[1..] {
        match arg.as_str() {
            "--repair" => repair = true,
            other => return Err(format!("fsck: unknown option {other:?}")),
        }
    }
    let report = hercules::fsck::fsck_workspace(root, repair).map_err(|e| e.to_string())?;
    if report.projects.is_empty() {
        println!("{root}: no projects");
        return Ok(());
    }
    for project in &report.projects {
        let verdict = if project.healthy() { "ok" } else { "DAMAGED" };
        println!("project {}: {verdict}", project.name);
        match &project.store {
            Ok(scrub) => {
                for v in &scrub.verdicts {
                    let file = v
                        .path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    println!("  {file:<28} {:<8} {}", v.status.to_string(), v.detail);
                }
            }
            Err(e) => println!("  store: {e}"),
        }
        println!("  {:<28} {:<8}", "project.conf", project.conf.to_string());
        if let Some(outcome) = &project.repaired {
            match outcome {
                metadata::fsck::RepairOutcome::AlreadyHealthy => {
                    println!("  repaired: store was already healthy");
                }
                metadata::fsck::RepairOutcome::Repaired {
                    new_seq,
                    base_seq,
                    ops_replayed,
                    quarantined,
                } => println!(
                    "  repaired: rebuilt at sequence {new_seq} from generation {base_seq} \
                     + {ops_replayed} tail op(s); {} file(s) quarantined",
                    quarantined.len()
                ),
                _ => {}
            }
        }
    }
    let damaged = report.damaged().count();
    if damaged == 0 {
        println!("{root}: {} project(s) healthy", report.projects.len());
        Ok(())
    } else {
        let hint = if repair {
            ""
        } else {
            " (run with --repair to rebuild)"
        };
        Err(format!("{damaged} damaged project(s) under {root:?}{hint}"))
    }
}

/// Reads a schema file for the `ws` subcommands.
fn read_schema(file: &str) -> Result<schema::TaskSchema, String> {
    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file:?}: {e}"))?;
    schema::parse_schema(&source).map_err(|e| e.to_string())
}

/// Opens (or creates) a persisted project and applies session options.
fn ws_project(
    ws: &Workspace,
    name: &str,
    file: &str,
    opts: &Options,
    create: bool,
) -> Result<std::sync::Arc<hercules::Project>, String> {
    let schema = read_schema(file)?;
    let open = if create {
        Workspace::create_project
    } else {
        Workspace::open_project
    };
    let project = open(
        ws,
        name,
        schema,
        ToolLibrary::standard(),
        Team::of_size(opts.team.max(1)),
        opts.seed,
    )
    .map_err(|e| e.to_string())?;
    for (activity, days) in &opts.estimates {
        project
            .update(|h| h.set_estimate(activity, WorkDays::new(*days)))
            .map_err(|e| e.to_string())?;
    }
    if opts.policy.is_some() || opts.workers.is_some() {
        if opts.workers == Some(0) {
            return Err("--workers wants at least 1".to_owned());
        }
        project.update(|h| {
            if let Some(policy) = opts.policy {
                h.set_execution_policy(policy);
            }
            if let Some(workers) = opts.workers {
                h.set_cluster(Cluster::uniform(workers));
            }
        });
    }
    Ok(project)
}

/// Multi-project operations against a persistent workspace root:
/// `list` discovers what is on disk; `create`/`plan`/`run`/`status`
/// operate on one named project whose store lives at `root/<name>/`.
/// Every mutation is journaled as it happens, so a later `herc gc
/// <root>` can fold the tail into a fresh snapshot.
fn cmd_ws(args: &[String]) -> Result<(), String> {
    let (Some(root), Some(sub)) = (args.first(), args.get(1)) else {
        return Err("ws usage: herc ws <root> <list|create|plan|run|status> \
             [<name> <schema-file> [<target>]] [options]"
            .to_owned());
    };
    if sub == "list" {
        let names = Workspace::on_disk_projects(root);
        if names.is_empty() {
            println!("no projects under {root}");
            return Ok(());
        }
        for name in &names {
            let dir = std::path::Path::new(root).join(name);
            match PersistentStore::open(&dir) {
                Ok(store) => {
                    let db = store.db();
                    println!(
                        "{name}: generation {}, {} run(s), {} completed, {} in progress",
                        db.generation(),
                        db.runs().len(),
                        db.completed_activities().len(),
                        db.in_progress_activities().len()
                    );
                }
                Err(e) => println!("{name}: unreadable ({e})"),
            }
        }
        return Ok(());
    }
    let (Some(name), Some(file)) = (args.get(2), args.get(3)) else {
        return Err(format!("ws {sub} needs <name> <schema-file>"));
    };
    let ws = Workspace::persistent(root);
    match sub.as_str() {
        "create" => {
            let opts = parse_options(&args[4..])?;
            ws_project(&ws, name, file, &opts, true)?;
            println!("project {name:?} created under {root}");
            Ok(())
        }
        "plan" => {
            let Some(target) = args.get(4) else {
                return Err("ws plan needs <target>".to_owned());
            };
            let opts = parse_options(&args[5..])?;
            let project = ws_project(&ws, name, file, &opts, false)?;
            let plan = project
                .update(|h| h.plan(target))
                .map_err(|e| e.to_string())?;
            println!("proposed schedule for {target:?} in project {name:?}:");
            for pa in plan.activities() {
                println!(
                    "  {:<16} [{} .. {}] {} {}",
                    pa.activity,
                    pa.start,
                    pa.start + pa.duration,
                    if pa.critical { "*" } else { " " },
                    pa.assignee
                );
            }
            println!("proposed finish: day {}", plan.project_finish());
            Ok(())
        }
        "run" => {
            let Some(target) = args.get(4) else {
                return Err("ws run needs <target>".to_owned());
            };
            let opts = parse_options(&args[5..])?;
            let project = ws_project(&ws, name, file, &opts, false)?;
            let report = project
                .update(|h| {
                    h.plan(target)?;
                    h.execute(target)
                })
                .map_err(|e| e.to_string())?;
            println!(
                "project {name:?}: executed {} activities in {} runs, finished day {}",
                report.activities().len(),
                report.total_runs(),
                report.finished_at()
            );
            project.read(|h| println!("\n{}", h.status()));
            Ok(())
        }
        "status" => {
            let opts = parse_options(&args[4..])?;
            let project = ws_project(&ws, name, file, &opts, false)?;
            project.read(|h| {
                let status = h.status();
                print!("{status}");
                println!("variance: {}", status.variance());
            });
            Ok(())
        }
        other => Err(format!("ws: unknown subcommand {other:?}")),
    }
}

/// Serves a workspace root over HTTP (see `crates/serve`). `:memory:`
/// serves a scratch in-memory workspace — handy for demos and fuzzing.
///
/// `--oneshot METHOD PATH` starts the server on a loopback port,
/// issues one request through the bundled client, prints the response
/// body, and exits non-zero on a 4xx/5xx — the scriptable form used by
/// `scripts/ws_e2e.sh`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let Some(root) = args.first() else {
        return Err(
            "serve usage: herc serve <root>|:memory: [--addr HOST:PORT] [--tokens FILE] \
             [--workers N] [--queue-cap N] [--tenant-cap N] [--access-log FILE] \
             [--flight-cap N] [--oneshot METHOD PATH] [--trace-id HEX]"
                .to_owned(),
        );
    };
    let mut config = serve::ServerConfig::default();
    let mut oneshot: Option<(String, String)> = None;
    let mut trace_id: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--tokens" => {
                let path = value("--tokens")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path:?}: {e}"))?;
                config.tokens = serve::TokenRegistry::parse(&text)?;
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-cap" => {
                config.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--tenant-cap" => {
                config.per_tenant_cap = value("--tenant-cap")?
                    .parse()
                    .map_err(|e| format!("--tenant-cap: {e}"))?;
            }
            "--oneshot" => {
                let method = value("--oneshot")?;
                let path = value("--oneshot")?;
                oneshot = Some((method, path));
            }
            "--access-log" => {
                config.access_log = Some(std::path::PathBuf::from(value("--access-log")?));
            }
            "--flight-cap" => {
                config.flight_cap = value("--flight-cap")?
                    .parse()
                    .map_err(|e| format!("--flight-cap: {e}"))?;
            }
            "--trace-id" => {
                let raw = value("--trace-id")?;
                if raw.is_empty() || raw.len() > 16 || !raw.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(format!("--trace-id: want 1-16 hex digits, got {raw:?}"));
                }
                trace_id = Some(raw);
            }
            other => return Err(format!("serve: unknown option {other:?}")),
        }
    }
    let ws = std::sync::Arc::new(if root == ":memory:" {
        Workspace::in_memory()
    } else {
        Workspace::persistent(root)
    });
    if oneshot.is_some() {
        // Don't fight another server (or the test harness) for a
        // fixed port in scripted one-request mode.
        config.addr = "127.0.0.1:0".to_owned();
    }
    let server = serve::Server::start(ws, config).map_err(|e| format!("serve: bind: {e}"))?;
    match oneshot {
        Some((method, path)) => {
            let mut client = serve::Client::new(server.addr());
            if let Some(id) = trace_id {
                client = client.with_header("x-herc-trace", id);
            }
            let response = client
                .request(&method, &path, b"")
                .map_err(|e| format!("serve: oneshot request: {e}"))?;
            print!("{}", response.body);
            server.shutdown();
            if response.is_success() {
                Ok(())
            } else {
                Err(format!("oneshot {method} {path}: HTTP {}", response.status))
            }
        }
        None => {
            println!("serving {root} at http://{}", server.addr());
            loop {
                std::thread::park();
            }
        }
    }
}

/// `herc top <url>`: a polling terminal dashboard over a live server's
/// `/metrics` JSON — per-endpoint request rates and latency
/// percentiles, per-tenant in-flight gauges, queue depth, and
/// flight-recorder drop counts. `--count N` bounds the number of
/// samples (scripts/CI); the default polls until interrupted.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let Some(url) = args.first() else {
        return Err(
            "top usage: herc top <url> [--token TOKEN] [--interval SECS] [--count N]".to_owned(),
        );
    };
    let mut token: Option<String> = None;
    let mut interval = 2.0f64;
    let mut count: Option<u64> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--token" => token = Some(value("--token")?),
            "--interval" => {
                interval = value("--interval")?
                    .parse()
                    .map_err(|e| format!("--interval: {e}"))?;
            }
            "--count" => {
                count = Some(
                    value("--count")?
                        .parse()
                        .map_err(|e| format!("--count: {e}"))?,
                );
            }
            other => return Err(format!("top: unknown option {other:?}")),
        }
    }
    let addr = parse_server_url(url)?;
    let mut client = serve::Client::new(addr);
    if let Some(token) = token {
        client = client.with_token(token);
    }
    let mut previous: Option<(std::time::Instant, std::collections::BTreeMap<String, f64>)> = None;
    let mut samples = 0u64;
    loop {
        let resp = client
            .get("/metrics")
            .map_err(|e| format!("top: {url}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("top: GET /metrics: HTTP {}", resp.status));
        }
        let now = std::time::Instant::now();
        let metrics = obs::export::parse_json(&resp.body)
            .map_err(|e| format!("top: bad metrics JSON: {e}"))?;
        let health = client
            .get("/healthz")
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| obs::export::parse_json(&r.body).ok());
        print!(
            "{}",
            render_top(url, &metrics, health.as_ref(), &previous, now)
        );
        let mut counters = std::collections::BTreeMap::new();
        if let Some(entries) = metrics.as_object() {
            for (key, value) in entries {
                if let Some(v) = value.as_f64() {
                    counters.insert(key.clone(), v);
                }
            }
        }
        previous = Some((now, counters));
        samples += 1;
        if count.is_some_and(|n| samples >= n) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval.max(0.1)));
    }
}

/// Accepts `http://host:port`, `host:port`, or `:port` (⇒ 127.0.0.1).
fn parse_server_url(url: &str) -> Result<std::net::SocketAddr, String> {
    let stripped = url
        .strip_prefix("http://")
        .unwrap_or(url)
        .trim_end_matches('/');
    let hostport = if stripped.starts_with(':') {
        format!("127.0.0.1{stripped}")
    } else {
        stripped.to_owned()
    };
    use std::net::ToSocketAddrs as _;
    hostport
        .to_socket_addrs()
        .map_err(|e| format!("top: cannot resolve {url:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("top: {url:?} resolves to no address"))
}

/// Splits a labeled metric key: `serve.latency{endpoint="plan"}` ⇒
/// `("serve.latency", Some("plan"))` (first label value only).
fn metric_key_label(key: &str) -> (&str, Option<&str>) {
    let Some(brace) = key.find('{') else {
        return (key, None);
    };
    let name = &key[..brace];
    let rest = &key[brace..];
    let value = rest.find("=\"").and_then(|eq| {
        rest[eq + 2..]
            .find('"')
            .map(|end| &rest[eq + 2..eq + 2 + end])
    });
    (name, value)
}

/// One dashboard frame, as a string (pure: unit-testable without a
/// server).
fn render_top(
    url: &str,
    metrics: &obs::export::JsonValue,
    health: Option<&obs::export::JsonValue>,
    previous: &Option<(std::time::Instant, std::collections::BTreeMap<String, f64>)>,
    now: std::time::Instant,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "herc top — {url}");
    if let Some(h) = health {
        let field = |k: &str| h.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let _ = write!(
            out,
            " — up {}s, {} project{}, {} wedged",
            field("uptime_secs"),
            field("projects"),
            if field("projects") == 1.0 { "" } else { "s" },
            field("wedged"),
        );
    }
    out.push('\n');
    let entries = metrics.as_object().unwrap_or(&[]);
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "endpoint", "req/s", "total", "p50ms", "p95ms", "p99ms"
    );
    for (key, value) in entries {
        let (name, label) = metric_key_label(key);
        if name != "serve.requests" {
            continue;
        }
        let endpoint = label.unwrap_or("(unlabeled)");
        let total = value.as_f64().unwrap_or(0.0);
        let rate = previous
            .as_ref()
            .map(|(t0, counters)| {
                let elapsed = now.duration_since(*t0).as_secs_f64().max(1e-9);
                (total - counters.get(key.as_str()).copied().unwrap_or(0.0)) / elapsed
            })
            .map(|r| format!("{r:.1}"))
            .unwrap_or_else(|| "-".to_owned());
        // The latency histogram for this endpoint carries precomputed
        // percentiles in the JSON rendering.
        let lat_key = format!("serve.latency{{endpoint=\"{endpoint}\"}}");
        let lat = metrics.get(&lat_key);
        let pct = |q: &str| {
            lat.and_then(|h| h.get(q))
                .and_then(|v| v.as_f64())
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_owned())
        };
        let _ = writeln!(
            out,
            "{endpoint:<16} {rate:>8} {total:>10} {:>8} {:>8} {:>8}",
            pct("p50"),
            pct("p95"),
            pct("p99"),
        );
    }
    let mut tenants = String::new();
    for (key, value) in entries {
        let (name, label) = metric_key_label(key);
        if name != "serve.inflight" {
            continue;
        }
        if !tenants.is_empty() {
            tenants.push_str(", ");
        }
        let _ = write!(
            tenants,
            "{} in-flight {}",
            label.unwrap_or("(unlabeled)"),
            value.as_f64().unwrap_or(0.0)
        );
    }
    if !tenants.is_empty() {
        let _ = writeln!(out, "tenants: {tenants}");
    }
    let scalar = |k: &str| metrics.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
    let queue_p95 = metrics
        .get("serve.queue.depth")
        .and_then(|h| h.get("p95"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let _ = writeln!(
        out,
        "queue depth p95: {queue_p95:.1}   connections: {}   rejected: {}   flight dropped: {}",
        scalar("serve.connections"),
        scalar("serve.queue.rejected") + scalar("serve.rejected.busy"),
        scalar("obs.flight.dropped"),
    );
    out.push('\n');
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    // `chaos`, `trace`, `metrics`, `ws`, `gc`, `fsck`, `serve`, and
    // `top` take no leading schema file: their scenarios and projects
    // are derived from names, seeds, workspace roots, and URLs.
    if matches!(
        command.as_str(),
        "chaos" | "trace" | "metrics" | "ws" | "gc" | "fsck" | "serve" | "top"
    ) {
        let result = match command.as_str() {
            "chaos" => cmd_chaos(&args[1..]),
            "trace" => cmd_trace(&args[1..]),
            "ws" => cmd_ws(&args[1..]),
            "gc" => cmd_gc(&args[1..]),
            "fsck" => cmd_fsck(&args[1..]),
            "serve" => cmd_serve(&args[1..]),
            "top" => cmd_top(&args[1..]),
            _ => cmd_metrics(&args[1..]),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("herc: {message}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(file) = args.get(1) else {
        return usage();
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("herc: cannot read {file:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match (command.as_str(), args.get(2)) {
        ("schema", _) => parse_options(&args[2..]).and_then(|_| cmd_schema(&source)),
        ("plan", Some(target)) => {
            parse_options(&args[3..]).and_then(|o| cmd_plan(&source, target, &o))
        }
        ("run", Some(target)) => {
            parse_options(&args[3..]).and_then(|o| cmd_run(&source, target, &o))
        }
        ("sweep", Some(target)) => {
            parse_options(&args[3..]).and_then(|o| cmd_sweep(&source, target, &o))
        }
        ("report", Some(target)) => {
            parse_options(&args[3..]).and_then(|o| cmd_report(&source, target, &o))
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("herc: {message}");
            ExitCode::FAILURE
        }
    }
}
