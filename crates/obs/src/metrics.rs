//! A process-wide metrics registry: named monotonic counters and
//! fixed-bucket histograms.
//!
//! Unlike tracing, metrics are **always on** — a counter bump is one
//! atomic add, cheap enough to leave in release builds — and are meant
//! to replace the ad-hoc stats structs that accreted across crates
//! (e.g. the planner's retired `PlanStats` snapshot and its
//! accessor shims, fully replaced by `hercules.plan.*`). Handles are
//! cheap to clone and safe to cache; the registry itself is keyed by
//! name so distant layers share a metric by naming convention alone
//! (`hercules.plan.cache_hits`, `journal.appends`, …).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A histogram over fixed, registration-time bucket bounds.
///
/// `bounds` are upper edges: a sample lands in the first bucket whose
/// bound is `>= sample`; larger samples land in the implicit overflow
/// bucket. Everything is atomics — `observe` is lock-free — and the
/// running sum is an `f64` stored as bits and updated by CAS.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

struct HistogramInner {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets (last = overflow).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits of the running sum, updated via compare-exchange.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.to_vec();
        b.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }))
    }

    /// Records one sample.
    pub fn observe(&self, sample: f64) {
        let inner = &*self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|b| sample <= *b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + sample).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// `(upper_bound, count)` per bucket; the final entry uses
    /// `f64::INFINITY` for the overflow bucket.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let inner = &*self.0;
        inner
            .buckets
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bound = inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                (bound, c.load(Ordering::Relaxed))
            })
            .collect()
    }

    fn reset(&self) {
        let inner = &*self.0;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum_bits.store(0.0_f64.to_bits(), Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The process-wide metrics registry (associated functions only).
pub struct Metrics;

impl Metrics {
    /// The counter named `name`, registering it on first use. Cache
    /// the returned handle on hot paths — lookup takes the registry
    /// lock.
    pub fn counter(name: &str) -> Counter {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        match reg
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            Metric::Histogram(_) => {
                panic!("metric {name:?} is already registered as a histogram")
            }
        }
    }

    /// The histogram named `name`, registering it with `bounds` on
    /// first use (later calls reuse the original bounds).
    pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        match reg
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            Metric::Counter(_) => {
                panic!("metric {name:?} is already registered as a counter")
            }
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name.
    pub fn snapshot() -> Vec<MetricSnapshot> {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => MetricSnapshot::Counter {
                    name: name.clone(),
                    value: c.get(),
                },
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.buckets(),
                },
            })
            .collect()
    }

    /// Zeroes every registered metric (handles stay valid). Intended
    /// for tests and the start of CLI sessions.
    pub fn reset() {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        for m in reg.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders the snapshot as an aligned, human-readable table.
    pub fn render() -> String {
        let snap = Metrics::snapshot();
        let mut out = String::new();
        let width = snap.iter().map(|s| s.name().len()).max().unwrap_or(0);
        for s in &snap {
            match s {
                MetricSnapshot::Counter { name, value } => {
                    out.push_str(&format!("{name:<width$}  {value}\n"));
                }
                MetricSnapshot::Histogram {
                    name,
                    count,
                    sum,
                    buckets,
                } => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        sum / *count as f64
                    };
                    out.push_str(&format!(
                        "{name:<width$}  count={count} sum={sum:.3} mean={mean:.3}\n"
                    ));
                    for (bound, c) in buckets {
                        if *c == 0 {
                            continue;
                        }
                        if bound.is_finite() {
                            out.push_str(&format!("{:width$}    <= {bound}: {c}\n", ""));
                        } else {
                            out.push_str(&format!("{:width$}    > max: {c}\n", ""));
                        }
                    }
                }
            }
        }
        out
    }

    /// Serializes the snapshot as a JSON object keyed by metric name.
    pub fn to_json() -> String {
        use std::fmt::Write as _;
        let snap = Metrics::snapshot();
        let mut out = String::from("{");
        for (i, s) in snap.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match s {
                MetricSnapshot::Counter { name, value } => {
                    let _ = write!(out, "\"{name}\":{value}");
                }
                MetricSnapshot::Histogram {
                    name,
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = write!(out, "\"{name}\":{{\"count\":{count},\"sum\":{sum}");
                    out.push_str(",\"buckets\":[");
                    for (j, (bound, c)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        if bound.is_finite() {
                            let _ = write!(out, "[{bound},{c}]");
                        } else {
                            let _ = write!(out, "[null,{c}]");
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A counter's value.
    Counter {
        /// Metric name.
        name: String,
        /// Current count.
        value: u64,
    },
    /// A histogram's state.
    Histogram {
        /// Metric name.
        name: String,
        /// Samples recorded.
        count: u64,
        /// Sum of samples.
        sum: f64,
        /// `(upper_bound, count)` per bucket (last bound is infinite).
        buckets: Vec<(f64, u64)>,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. } | MetricSnapshot::Histogram { name, .. } => name,
        }
    }

    /// The counter value, if this is a counter.
    pub fn counter_value(&self) -> Option<u64> {
        match self {
            MetricSnapshot::Counter { value, .. } => Some(*value),
            MetricSnapshot::Histogram { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let a = Metrics::counter("test.metrics.shared");
        let b = Metrics::counter("test.metrics.shared");
        a.reset();
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let snap = Metrics::snapshot();
        let found = snap
            .iter()
            .find(|s| s.name() == "test.metrics.shared")
            .unwrap();
        assert_eq!(found.counter_value(), Some(5));
    }

    #[test]
    fn histogram_buckets_sum_and_mean() {
        let h = Metrics::histogram("test.metrics.hist", &[1.0, 10.0, 100.0]);
        h.reset();
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 555.5).abs() < 1e-9);
        assert!((h.mean() - 138.875).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 1));
        assert_eq!(buckets[2], (100.0, 1));
        assert_eq!(buckets[3].1, 1); // overflow
        assert!(buckets[3].0.is_infinite());
    }

    #[test]
    fn concurrent_observations_do_not_lose_samples() {
        let h = Metrics::histogram("test.metrics.concurrent", &[0.5]);
        h.reset();
        let c = Metrics::counter("test.metrics.concurrent_count");
        c.reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(1.0);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(c.get(), 4000);
        assert!((h.sum() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn render_and_json_are_parseable() {
        let c = Metrics::counter("test.metrics.render");
        c.inc();
        let text = Metrics::render();
        assert!(text.contains("test.metrics.render"));
        crate::export::validate_json(&Metrics::to_json()).unwrap();
    }
}
