//! Regenerates **Fig. 7**: the Hercules database at completion of
//! execution — every schedule instance linked to the final entity
//! instance of its activity.

use bench::{circuit_manager, render_db_state};

fn main() {
    let mut h = circuit_manager(2, 42);
    h.plan("performance").expect("plannable");
    h.execute("performance").expect("executable");
    println!("Database at completion (links shown as ->):\n");
    print!("{}", render_db_state(h.db()));

    println!("\nDerived actual dates (flow into the schedule automatically):");
    for activity in ["Create", "Simulate"] {
        let start = h.db().actual_start(activity).expect("ran");
        let finish = h.db().actual_finish(activity).expect("linked");
        let slip = h.db().finish_slip(activity).expect("linked");
        println!("  {activity}: actual [{start} .. {finish}], slip {slip:+.2}d");
    }
}
