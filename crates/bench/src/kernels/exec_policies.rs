//! B17 — scheduling-policy comparison: the policy engine under each
//! built-in [`ExecutionPolicy`] on a contended fan-in flow over a
//! heterogeneous simulated cluster, plus the engine-overhead baseline
//! (Fifo on the implicit substrate vs. the retired serial executor).
//!
//! Expected shape: the engine's dispatch loop is bookkeeping on top of
//! the same tool models, so Fifo must track the serial reference
//! closely (the `exec_policies` gate pins ≤ 1.05×); the slack- and
//! finish-aware policies trade a little wall-clock per dispatch for
//! shorter *simulated* makespans (see [`simulated_makespans`]).

use harness::bench::Record;
use hercules::{ExecutionPolicy, Hercules};
use schema::examples;
use simtools::cluster::Cluster;
use simtools::{workload::Team, ToolLibrary};

/// The contended scenario: wide parallel layers converging on one
/// merge — far more ready work than workers at every step, so the
/// dispatch choice is what separates the policies.
pub const LAYERS: usize = 4;
/// Activities per layer.
pub const WIDTH: usize = 6;
/// Inputs each activity pulls from the previous layer.
pub const FANIN: usize = 3;
/// Project seed for the contended managers (pins tool durations).
pub const SEED: u64 = 2024;
/// Workers in the heterogeneous cluster.
pub const CLUSTER_WORKERS: usize = 6;

/// A planned manager over the contended layered flow.
///
/// # Panics
///
/// Panics if the generated flow fails to plan (a bench bug).
pub fn contended_manager(team: usize) -> Hercules {
    let mut h = Hercules::new(
        examples::layered(LAYERS, WIDTH, FANIN),
        ToolLibrary::standard(),
        Team::of_size(team),
        SEED,
    );
    h.plan("merged").expect("contended flow plans");
    h
}

/// The heterogeneous substrate the policies compete on: seeded speed
/// spread plus a per-MiB network delay on remote hand-offs.
pub fn contended_cluster() -> Cluster {
    Cluster::heterogeneous(CLUSTER_WORKERS, SEED).with_network(0.02, 0.01)
}

/// Deterministic simulated makespans (work-days to `merged`) per
/// policy on the contended scenario — the numbers in the EXPERIMENTS
/// B17 table, and what the acceptance gate compares. Pure simulation:
/// independent of host speed.
///
/// # Panics
///
/// Panics if any policy fails to execute the clean flow (a bench bug).
pub fn simulated_makespans() -> Vec<(&'static str, f64)> {
    let cluster = contended_cluster();
    ExecutionPolicy::ALL
        .into_iter()
        .map(|policy| {
            let mut h = contended_manager(3);
            let report = h
                .execute_with("merged", policy, Some(&cluster))
                .expect("clean contended flow executes");
            assert!(report.all_converged(), "{policy}: contended flow blocked");
            (policy.name(), report.finished_at().days())
        })
        .collect()
}

/// Runs the kernel; `quick` selects the smoke-test plan.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("exec_policies", quick);
    let activities = (LAYERS * WIDTH + 1) as u64;
    // Engine-overhead pair: one designer, implicit substrate, so both
    // sides execute the identical sequential schedule.
    suite.bench_with_setup(
        "serial_reference/merged",
        Some(activities),
        || contended_manager(1),
        |mut h| {
            h.execute_serial_reference("merged")
                .expect("reference executes")
        },
    );
    suite.bench_with_setup(
        "fifo_implicit/merged",
        Some(activities),
        || contended_manager(1),
        |mut h| h.execute("merged").expect("fifo executes"),
    );
    // The policy field on the heterogeneous cluster.
    let cluster = contended_cluster();
    for policy in ExecutionPolicy::ALL {
        let cluster = cluster.clone();
        suite.bench_with_setup(
            &format!("{}/cluster", policy.name()),
            Some(activities),
            || contended_manager(3),
            move |mut h| {
                h.execute_with("merged", policy, Some(&cluster))
                    .expect("policy executes")
            },
        );
    }
    suite.into_records()
}
