//! Bench-regression gate: compares a fresh quick-mode benchmark run
//! against the committed baseline (`BENCH_schedflow.json` at the
//! workspace root) and exits non-zero when any shared bench regressed.
//!
//! Usage:
//!
//! ```text
//! bench_compare [--baseline PATH] [--fresh PATH] [--tolerance FRAC] [FILTER]
//! ```
//!
//! * `--baseline PATH` — committed report to compare against
//!   (default: `BENCH_schedflow.json` at the workspace root).
//! * `--fresh PATH` — read the fresh run from a report file instead of
//!   benchmarking in-process (useful for comparing two saved runs).
//! * `--tolerance FRAC` — allowed relative slowdown before a bench
//!   counts as a regression (default `0.30`, i.e. ±30 %).
//! * `FILTER` — only run/compare kernels whose name contains the
//!   substring.
//!
//! Fresh timings are first **normalized by the calibration spin** (the
//! `calibrate` kernel, present in both reports): dividing by
//! `fresh_spin / baseline_spin` (clamped ≥1) cancels uniform
//! host-speed differences — frequency scaling and co-tenant steal on
//! shared hosts routinely swing effective CPU speed 1.5–2× between
//! runs, which would otherwise flag every bench at once. A bench then
//! **regresses** when *both* its normalized median and min exceed
//! `baseline_median × (1 + tolerance)` — requiring the min too filters
//! scheduler noise, which inflates the median of a 3-sample quick run
//! far more often than it inflates the fastest sample. Benches present
//! on only one side are reported but never fail the gate (quick mode
//! runs smaller size sets than the full baseline).
//!
//! Flagged kernels then get a **confirmation pass**: each is re-run
//! once and the better of the two measurements stands. Co-tenant
//! contention on shared hosts is bursty — it slows whichever bench
//! happens to be running when the burst lands, and rarely the same
//! kernel twice in a row — while a genuine code regression reproduces
//! on the immediate re-measurement. (Skipped when the fresh run came
//! from `--fresh`, which cannot be re-measured.)
//!
//! Single-batch tail-percentile rows (see [`UNGATED_TAIL`]) are
//! compared and printed but never fail the gate.
//!
//! After an intentional performance change, regenerate the baseline
//! with `cargo run --release -p bench --bin benchmarks` and commit the
//! refreshed `BENCH_schedflow.json`.

use std::path::PathBuf;
use std::process::ExitCode;

/// Bench-name fragments reported but never gated. Single-batch tail
/// percentiles carry the batch p99 in every stat field, so the
/// min-must-also-exceed noise filter is vacuous for them, and a p99
/// measured over one 600-request batch swings by multiples between
/// runs on a shared host — no workable tolerance both catches real
/// tail regressions and survives CI. The `serve_scaling` test gates
/// the behavioral floor (coalescing, worker scaling) instead; these
/// rows stay in the table for human eyes and the uploaded artifact.
const UNGATED_TAIL: &[&str] = &["latency_p99/"];

fn gated(bench: &str) -> bool {
    !UNGATED_TAIL.iter().any(|t| bench.contains(t))
}

use bench::kernels;
use harness::bench::{parse_report, Record};

fn usage() -> ExitCode {
    eprintln!("usage: bench_compare [--baseline PATH] [--fresh PATH] [--tolerance FRAC] [FILTER]");
    ExitCode::FAILURE
}

fn workspace_baseline() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_schedflow.json")
}

/// The median of the `calibrate` kernel's host-speed spin in a report,
/// if present.
fn calibration_median(records: &[Record]) -> Option<f64> {
    records
        .iter()
        .find(|r| r.kernel == "calibrate")
        .map(|r| r.stats.median_ns)
}

fn load(path: &PathBuf) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_report(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let mut baseline_path = workspace_baseline();
    let mut fresh_path: Option<PathBuf> = None;
    let mut tolerance = 0.30_f64;
    let mut filter: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => return usage(),
            },
            "--fresh" => match args.next() {
                Some(p) => fresh_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--tolerance" => match args.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag: {flag}");
                return usage();
            }
            name if filter.is_none() => filter = Some(name.to_owned()),
            _ => return usage(),
        }
    }

    // A missing baseline is not a failure: fresh checkouts and CI on
    // new branches have nothing to gate against yet. A baseline that
    // exists but does not parse IS a failure (corruption must not
    // silently disable the gate).
    if !baseline_path.exists() {
        eprintln!(
            "bench_compare: no baseline at {} — nothing to compare against",
            baseline_path.display()
        );
        eprintln!("create one with: cargo run --release -p bench --bin benchmarks");
        return ExitCode::SUCCESS;
    }
    let baseline = match load(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            eprintln!("regenerate with: cargo run --release -p bench --bin benchmarks");
            return ExitCode::FAILURE;
        }
    };

    let fresh = match &fresh_path {
        Some(p) => match load(p) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_compare: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            eprintln!(
                "bench_compare: fresh quick run vs {} (tolerance ±{:.0} %)",
                baseline_path.display(),
                tolerance * 100.0
            );
            let mut records = kernels::run_all(true, filter.as_deref());
            // The calibration spin must be present even when a FILTER
            // excludes it: it anchors the host-speed normalization.
            if calibration_median(&records).is_none() {
                records.extend(kernels::calibrate::run(true));
            }
            records
        }
    };
    if fresh.is_empty() {
        eprintln!("bench_compare: fresh run produced no records");
        return ExitCode::FAILURE;
    }

    // Host-speed normalization: the committed baseline and this run
    // may have executed on very different effective CPU speeds
    // (frequency scaling, co-tenant steal on shared hosts — routinely
    // a uniform 1.5–2× swing). The `calibrate` spin measures the same
    // fixed workload in both reports; dividing fresh timings by the
    // spin ratio cancels the uniform component while a real regression
    // (which moves one bench, not the spin) still trips the gate.
    // Clamped to ≥1 so a *faster* host never inflates fresh numbers.
    let fresh_spin = calibration_median(&fresh);
    let baseline_spin = calibration_median(&baseline);
    let host_factor = match (fresh_spin, baseline_spin) {
        (Some(f), Some(b)) if b > 0.0 => (f / b).max(1.0),
        _ => 1.0,
    };
    // Always report the calibration anchor: reading a comparison
    // without knowing how the host compared to the baseline host is
    // how noise gets mistaken for regressions (and vice versa).
    let spin = |s: Option<f64>| s.map_or("absent".to_owned(), |v| format!("{v:.0} ns"));
    eprintln!(
        "bench_compare: calibration spin — baseline {}, fresh {}, host factor {host_factor:.2}x",
        spin(baseline_spin),
        spin(fresh_spin)
    );
    if host_factor > 1.05 {
        eprintln!(
            "bench_compare: host running {host_factor:.2}x slower than when the baseline \
             was measured — normalizing fresh timings by the calibration spin"
        );
    }

    // A bench regresses when both its normalized median and min clear
    // the limit; the min requirement filters the scheduler noise that
    // inflates a 3-sample median far more often than the fastest run.
    let regressed = |f: &Record, b: &Record| {
        let limit = b.stats.median_ns * (1.0 + tolerance);
        f.stats.median_ns / host_factor > limit && f.stats.min_ns / host_factor > limit
    };

    // Confirmation pass: re-measure each flagged kernel once before
    // declaring a regression. Contention bursts on shared hosts hit
    // whichever bench is mid-flight and rarely strike the same kernel
    // twice in a row; a real regression reproduces seconds later. The
    // better of the two measurements stands.
    let mut fresh = fresh;
    if fresh_path.is_none() {
        let mut retry: Vec<&str> = Vec::new();
        for f in &fresh {
            if f.kernel == "calibrate" || !gated(&f.bench) || retry.contains(&f.kernel.as_str()) {
                continue;
            }
            let hit = baseline
                .iter()
                .find(|b| b.kernel == f.kernel && b.bench == f.bench)
                .is_some_and(|b| regressed(f, b));
            if hit {
                retry.push(&f.kernel);
            }
        }
        let retry: Vec<String> = retry.into_iter().map(str::to_owned).collect();
        for kernel in &retry {
            eprintln!("bench_compare: re-measuring {kernel} to confirm an apparent regression");
            for r in kernels::run_all(true, Some(kernel)) {
                let Some(slot) = fresh
                    .iter_mut()
                    .find(|f| f.kernel == r.kernel && f.bench == r.bench)
                else {
                    continue;
                };
                if r.stats.median_ns < slot.stats.median_ns {
                    *slot = r;
                }
            }
        }
    }

    let mut compared = 0usize;
    let mut new_benches = 0usize;
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    eprintln!(
        "{:<20} {:<26} {:>12} {:>12} {:>8}  status",
        "kernel", "bench", "base med", "fresh med", "delta"
    );
    for f in &fresh {
        if f.kernel == "calibrate" {
            continue; // the normalization anchor is not itself gated
        }
        if let Some(fil) = filter.as_deref() {
            if !f.kernel.contains(fil) {
                continue;
            }
        }
        let Some(b) = baseline
            .iter()
            .find(|b| b.kernel == f.kernel && b.bench == f.bench)
        else {
            eprintln!(
                "{:<20} {:<26} {:>12} {:>12.0} {:>8}  NEW (not in baseline; regen to track)",
                f.kernel, f.bench, "-", f.stats.median_ns, "-"
            );
            new_benches += 1;
            continue;
        };
        compared += 1;
        let fresh_median = f.stats.median_ns / host_factor;
        let ratio = fresh_median / b.stats.median_ns;
        let delta_pct = (ratio - 1.0) * 100.0;
        let status = if !gated(&f.bench) {
            "tail (ungated)"
        } else if regressed(f, b) {
            regressions += 1;
            "REGRESSED"
        } else if ratio < 1.0 / (1.0 + tolerance) {
            improvements += 1;
            "improved"
        } else {
            "ok"
        };
        eprintln!(
            "{:<20} {:<26} {:>12.0} {:>12.0} {:>+7.1}%  {status}",
            f.kernel, f.bench, b.stats.median_ns, fresh_median, delta_pct
        );
    }

    eprintln!(
        "bench_compare: {compared} compared, {new_benches} new, {regressions} regressed, \
         {improvements} improved"
    );
    if compared == 0 {
        // A run made of only-new kernels is the normal state of the PR
        // that introduces a kernel (its baseline rows land in the same
        // change): nothing to validate is a warning, not a failure.
        if new_benches > 0 {
            eprintln!(
                "bench_compare: WARN — all {new_benches} fresh benches are new (absent from \
                 the baseline); regenerate BENCH_schedflow.json to start tracking them"
            );
            return ExitCode::SUCCESS;
        }
        eprintln!("bench_compare: no benches shared with the baseline — nothing validated");
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!(
            "bench_compare: FAIL — fix the regression or (for intentional changes) \
             regenerate the baseline: cargo run --release -p bench --bin benchmarks"
        );
        return ExitCode::FAILURE;
    }
    if improvements > 0 {
        eprintln!(
            "bench_compare: improvements detected — consider refreshing the baseline \
             so future regressions are caught from the new level"
        );
    }
    eprintln!("bench_compare: OK");
    ExitCode::SUCCESS
}
