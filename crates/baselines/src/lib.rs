//! Baseline systems the integrated flow/schedule manager is compared
//! against.
//!
//! The paper's introduction describes the status quo: "project managers
//! acquire projected and actual completion dates from the different
//! designers working on the project, and manually insert the
//! information into their project management system." Section II's
//! survey also covers VOV, which "concentrates on monitoring and
//! tracking design activities" with no a-priori plan at all.
//!
//! Two baselines make those alternatives measurable:
//!
//! * [`ManualPm`] — a *separate* MacProject-style tool. Status reaches
//!   it only at periodic status meetings, so every tracked fact is
//!   stale by up to a reporting period and every fact costs a manual
//!   entry. [`IntegratedTracker`] is the paper's system in the same
//!   harness: zero staleness, zero manual entries, because the flow
//!   manager generates the events itself.
//! * [`vov`] — an a-posteriori trace builder: perfect at answering
//!   "what happened and what must rerun", structurally unable to
//!   forecast (no plan exists before execution).
//!
//! # Example
//!
//! ```
//! use baselines::{FlowEvent, EventKind, IntegratedTracker, ManualPm};
//!
//! let events = vec![
//!     FlowEvent::new(0.0, "Create", EventKind::Started),
//!     FlowEvent::new(2.4, "Create", EventKind::Finished),
//! ];
//! let manual = ManualPm::new(5.0).track(&events);   // weekly meetings
//! let integrated = IntegratedTracker.track(&events);
//! assert!(manual.mean_staleness_days > 0.0);
//! assert_eq!(integrated.mean_staleness_days, 0.0);
//! assert_eq!(integrated.manual_updates, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manual;

pub mod vov;

pub use manual::{EventKind, FlowEvent, IntegratedTracker, ManualPm, TrackingReport};
