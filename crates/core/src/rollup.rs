//! Block-level schedule rollup — a first step toward the paper's
//! future work: "developing a schedule model that considers the
//! architectural decomposition as well as the task flow" (§V, citing
//! Jacome & Director's formal design-process model).
//!
//! Activities are grouped into architectural *blocks* (a work-breakdown
//! structure); planned and actual dates roll up per block, giving the
//! project manager the block-level view ("a portion of the overall
//! schedule") while designers keep the activity-level one.

use std::collections::BTreeMap;

use schedule::gantt::{GanttOptions, GanttRow};
use schedule::{gantt, WorkDays};

use crate::error::HerculesError;
use crate::manager::Hercules;

/// A grouping of activities into named architectural blocks.
///
/// Activities not assigned to any block roll up under the
/// `"(unassigned)"` block so nothing silently disappears from the
/// manager's view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Decomposition {
    blocks: BTreeMap<String, Vec<String>>,
}

impl Decomposition {
    /// Creates an empty decomposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `activities` to `block` (appending to any previous
    /// assignment of the block).
    #[must_use]
    pub fn block<I, S>(mut self, block: &str, activities: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.blocks
            .entry(block.to_owned())
            .or_default()
            .extend(activities.into_iter().map(Into::into));
        self
    }

    /// The block an activity belongs to, if assigned.
    pub fn block_of(&self, activity: &str) -> Option<&str> {
        self.blocks
            .iter()
            .find(|(_, acts)| acts.iter().any(|a| a == activity))
            .map(|(name, _)| name.as_str())
    }

    /// Block names, sorted.
    pub fn block_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.blocks.keys().map(String::as_str)
    }
}

/// One block's rolled-up schedule status.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStatus {
    /// Block name.
    pub block: String,
    /// Activities rolled into this block.
    pub activities: Vec<String>,
    /// Earliest planned start over the block's activities.
    pub planned_start: Option<WorkDays>,
    /// Latest planned finish.
    pub planned_finish: Option<WorkDays>,
    /// Earliest actual start.
    pub actual_start: Option<WorkDays>,
    /// Latest actual finish, only when *every* activity is complete.
    pub actual_finish: Option<WorkDays>,
    /// Complete activities out of total.
    pub complete: usize,
}

impl BlockStatus {
    /// Whether the whole block is complete.
    pub fn is_complete(&self) -> bool {
        self.complete == self.activities.len() && !self.activities.is_empty()
    }

    /// Block-level finish slip in days, once complete and planned.
    pub fn slip(&self) -> Option<f64> {
        Some(self.actual_finish?.days() - self.planned_finish?.days())
    }
}

impl Hercules {
    /// Rolls the current plan and actuals up to `decomposition`'s
    /// blocks. Blocks appear in name order; unassigned activities (if
    /// any) land in a trailing `"(unassigned)"` block.
    pub fn rollup(&self, decomposition: &Decomposition) -> Result<Vec<BlockStatus>, HerculesError> {
        let mut assignment: BTreeMap<String, Vec<String>> = decomposition.blocks.clone();
        let mut unassigned = Vec::new();
        for rule in self.schema.rules() {
            if decomposition.block_of(rule.activity()).is_none() {
                unassigned.push(rule.activity().to_owned());
            }
        }
        if !unassigned.is_empty() {
            assignment.insert("(unassigned)".to_owned(), unassigned);
        }
        let mut out = Vec::new();
        for (block, activities) in assignment {
            let mut planned_start: Option<WorkDays> = None;
            let mut planned_finish: Option<WorkDays> = None;
            let mut actual_start: Option<WorkDays> = None;
            let mut finishes = Vec::new();
            let mut complete = 0usize;
            for activity in &activities {
                if let Some(plan) = self.store.db().current_plan(activity) {
                    let ps = plan.planned_start();
                    let pf = plan.planned_finish();
                    planned_start =
                        Some(
                            planned_start.map_or(
                                ps,
                                |s: WorkDays| if ps.days() < s.days() { ps } else { s },
                            ),
                        );
                    planned_finish = Some(planned_finish.map_or(pf, |f| f.max(pf)));
                    if plan.is_complete() {
                        complete += 1;
                    }
                }
                if let Some(a) = self.store.db().actual_start(activity) {
                    actual_start =
                        Some(
                            actual_start
                                .map_or(a, |s: WorkDays| if a.days() < s.days() { a } else { s }),
                        );
                }
                if let Some(f) = self.store.db().actual_finish(activity) {
                    finishes.push(f);
                }
            }
            let actual_finish = if complete == activities.len() && !activities.is_empty() {
                finishes
                    .into_iter()
                    .reduce(|a, b| if a.days() > b.days() { a } else { b })
            } else {
                None
            };
            out.push(BlockStatus {
                block,
                activities,
                planned_start,
                planned_finish,
                actual_start,
                actual_finish,
                complete,
            });
        }
        Ok(out)
    }

    /// Renders the block-level Gantt chart: one bar per block, planned
    /// vs accomplished — the project manager's "portion of the overall
    /// schedule" (§IV-C).
    pub fn block_gantt(
        &self,
        decomposition: &Decomposition,
        options: &GanttOptions,
    ) -> Result<String, HerculesError> {
        let blocks = self.rollup(decomposition)?;
        let status_date = self.clock;
        let rows: Vec<GanttRow> = blocks
            .iter()
            .filter(|b| b.planned_start.is_some() || b.actual_start.is_some())
            .map(|b| {
                let ps = b.planned_start.unwrap_or(WorkDays::ZERO);
                let pf = b.planned_finish.unwrap_or(ps);
                let mut row = GanttRow::planned(b.block.clone(), ps, pf);
                if let Some(start) = b.actual_start {
                    let end = b.actual_finish.unwrap_or(status_date);
                    row = row.with_actual(start, end, b.is_complete());
                }
                row
            })
            .collect();
        Ok(gantt::render(&rows, options))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn asic(seed: u64) -> Hercules {
        Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            seed,
        )
    }

    fn decomposition() -> Decomposition {
        Decomposition::new()
            .block(
                "frontend",
                ["CaptureSpec", "WriteRtl", "VerifyRtl", "Synthesize"],
            )
            .block("backend", ["Floorplan", "Place", "Cts", "Route"])
    }

    #[test]
    fn block_of_lookup() {
        let d = decomposition();
        assert_eq!(d.block_of("WriteRtl"), Some("frontend"));
        assert_eq!(d.block_of("Route"), Some("backend"));
        assert_eq!(d.block_of("Signoff"), None);
        assert_eq!(d.block_names().count(), 2);
    }

    #[test]
    fn rollup_covers_unassigned() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        let blocks = h.rollup(&decomposition()).unwrap();
        let names: Vec<&str> = blocks.iter().map(|b| b.block.as_str()).collect();
        assert_eq!(names, vec!["(unassigned)", "backend", "frontend"]);
        let unassigned = &blocks[0];
        assert_eq!(unassigned.activities, vec!["Signoff"]);
    }

    #[test]
    fn rollup_spans_contain_activities() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        h.execute("signoff_report").unwrap();
        let blocks = h.rollup(&decomposition()).unwrap();
        for block in &blocks {
            assert!(block.is_complete());
            let bs = block.planned_start.unwrap();
            let bf = block.planned_finish.unwrap();
            for activity in &block.activities {
                let plan = h.db().current_plan(activity).unwrap();
                assert!(plan.planned_start().days() >= bs.days() - 1e-9);
                assert!(plan.planned_finish().days() <= bf.days() + 1e-9);
            }
            assert!(block.slip().is_some());
            // The block's actual finish is the max over its activities.
            let max_actual = block
                .activities
                .iter()
                .map(|a| h.db().actual_finish(a).unwrap().days())
                .fold(0.0f64, f64::max);
            assert!((block.actual_finish.unwrap().days() - max_actual).abs() < 1e-9);
        }
    }

    #[test]
    fn partial_block_has_no_actual_finish() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        h.execute("rtl").unwrap(); // only part of the frontend
        let blocks = h.rollup(&decomposition()).unwrap();
        let frontend = blocks.iter().find(|b| b.block == "frontend").unwrap();
        assert!(frontend.complete > 0 && !frontend.is_complete());
        assert!(frontend.actual_start.is_some());
        assert!(frontend.actual_finish.is_none());
        assert!(frontend.slip().is_none());
    }

    #[test]
    fn block_gantt_renders_blocks_not_activities() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        h.execute("signoff_report").unwrap();
        let chart = h
            .block_gantt(
                &decomposition(),
                &GanttOptions {
                    ascii: true,
                    ..GanttOptions::default()
                },
            )
            .unwrap();
        assert!(chart.contains("frontend"));
        assert!(chart.contains("backend"));
        assert!(!chart.contains("WriteRtl"));
    }

    #[test]
    fn empty_decomposition_rolls_everything_unassigned() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        let blocks = h.rollup(&Decomposition::new()).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].activities.len(), 9);
    }
}
