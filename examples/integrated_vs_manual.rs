//! The paper's motivation, measured: the same design project tracked
//! three ways — by the integrated flow/schedule manager, by a separate
//! MacProject-style tool fed at weekly status meetings, and by a
//! VOV-style trace with no a-priori plan.
//!
//! Run with `cargo run --example integrated_vs_manual`.

use baselines::{vov::Trace, EventKind, FlowEvent, IntegratedTracker, ManualPm};
use hercules::Hercules;
use predict::{evaluate, Intuition, MeanOfAll, Predictor};
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Run the ASIC project once to get a real event stream.
    let mut h = Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(3),
        5,
    );
    h.plan("signoff_report")?;
    let report = h.execute("signoff_report")?;

    let mut events = Vec::new();
    let mut trace = Trace::new();
    for exec in report.activities() {
        events.push(FlowEvent::new(
            exec.started.days(),
            exec.activity.clone(),
            EventKind::Started,
        ));
        events.push(FlowEvent::new(
            exec.finished.days(),
            exec.activity.clone(),
            EventKind::Finished,
        ));
        let tree = h.extract_task_tree("signoff_report")?;
        let inputs: Vec<&str> = tree
            .inputs_of(&exec.activity)
            .iter()
            .map(|s| s.as_str())
            .collect();
        trace.record(
            exec.started.days(),
            &exec.activity,
            &inputs,
            &[tree.output_of(&exec.activity)],
        );
    }

    println!("tracking the same {}-event project:", events.len());
    println!("  {}", IntegratedTracker.track(&events));
    for period in [1.0, 5.0, 10.0] {
        println!(
            "  {}   (meetings every {period}d)",
            ManualPm::new(period).track(&events)
        );
    }
    println!(
        "\nthe integrated system pays zero staleness and zero manual entries\n\
         because the flow manager generates the events itself (paper §I).\n"
    );

    println!("VOV-style trace (no a-priori plan):");
    println!("  invocations recorded: {}", trace.invocations());
    println!("  can forecast completion dates: {}", trace.can_forecast());
    println!(
        "  but perfect retrospection — if rtl changes, rerun: {:?}",
        trace.must_rerun_after("rtl")
    );

    // And the third advantage: history predicts the next project.
    println!("\npredicting the next project's Synthesize duration:");
    let history = h.db().duration_history("Synthesize");
    let history: Vec<f64> = history.iter().map(|d| d.days()).collect();
    let intuition = Intuition::new(4.0);
    for est in [&intuition as &dyn Predictor, &MeanOfAll] {
        match (est.predict(&history), evaluate(est, &history, 1)) {
            (Some(pred), Some(eval)) => {
                println!("  {:<12} predicts {pred:.2}d   ({eval})", est.name())
            }
            (Some(pred), None) => println!("  {:<12} predicts {pred:.2}d", est.name()),
            _ => println!("  {:<12} has too little history", est.name()),
        }
    }
    Ok(())
}
