//! Lazily-expanded shrink trees (hedgehog-style integrated shrinking).
//!
//! A [`Tree`] carries a generated value plus a *lazy* list of smaller
//! candidate trees. Combinators ([`Tree::map`], [`Tree::zip`],
//! [`forest_to_vec`]) transport shrinking through mapping, tupling and
//! collection — so `prop_map`-style strategies shrink for free, which
//! plain QuickCheck-style `shrink(&T) -> Vec<T>` cannot do.
//!
//! Children are ordered **most aggressive first**: the greedy shrinker
//! in [`crate::runner`] takes the first still-failing child and
//! descends, so ordering controls how fast minima are reached.

use std::rc::Rc;

/// A value together with lazily computed shrink candidates.
pub struct Tree<T> {
    value: T,
    children: Rc<dyn Fn() -> Vec<Tree<T>>>,
}

impl<T: Clone> Clone for Tree<T> {
    fn clone(&self) -> Self {
        Tree {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// A tree with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Tree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A tree whose candidates are produced on demand by `children`.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree {
            value,
            children: Rc::new(children),
        }
    }

    /// The generated value at this node.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Forces and returns the shrink candidates (one level).
    pub fn children(&self) -> Vec<Tree<T>> {
        (self.children)()
    }

    /// Maps the whole tree through `f`, preserving shrink structure.
    pub fn map<U: Clone + 'static>(&self, f: &Rc<dyn Fn(&T) -> U>) -> Tree<U> {
        let value = f(&self.value);
        let inner = self.clone();
        let f = Rc::clone(f);
        Tree::with_children(value, move || {
            inner.children().iter().map(|c| c.map(&f)).collect()
        })
    }

    /// Pairs two trees: shrink the left side first, then the right.
    pub fn zip<U: Clone + 'static>(&self, other: &Tree<U>) -> Tree<(T, U)> {
        let value = (self.value.clone(), other.value.clone());
        let a = self.clone();
        let b = other.clone();
        Tree::with_children(value, move || {
            let mut out: Vec<Tree<(T, U)>> = Vec::new();
            for ca in a.children() {
                out.push(ca.zip(&b));
            }
            for cb in b.children() {
                out.push(a.zip(&cb));
            }
            out
        })
    }
}

/// Combines per-element trees into a tree of `Vec<T>` that shrinks by
/// (a) deleting chunks of elements (largest chunks first) while staying
/// at least `min_len` long, then (b) shrinking individual elements.
pub fn forest_to_vec<T: Clone + 'static>(trees: Vec<Tree<T>>, min_len: usize) -> Tree<Vec<T>> {
    let value: Vec<T> = trees.iter().map(|t| t.value().clone()).collect();
    Tree::with_children(value, move || {
        let n = trees.len();
        let mut out = Vec::new();
        // Chunk deletions: n-min_len, then halving down to 1.
        let mut k = n.saturating_sub(min_len);
        while k > 0 {
            let mut start = 0;
            while start + k <= n {
                let mut rest = trees.clone();
                rest.drain(start..start + k);
                out.push(forest_to_vec(rest, min_len));
                start += k;
            }
            k /= 2;
        }
        // Element-wise shrinks.
        for (i, tree) in trees.iter().enumerate() {
            for c in tree.children() {
                let mut next = trees.clone();
                next[i] = c;
                out.push(forest_to_vec(next, min_len));
            }
        }
        out
    })
}

/// Shrink candidates for an integer, aiming at `lo`: first `lo` itself,
/// then binary bisection from `lo` toward `v`.
fn int_candidates(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    let mut d = (v - lo) / 2;
    while d > 0 {
        let c = v - d;
        if c != lo {
            out.push(c);
        }
        d /= 2;
    }
    out
}

/// An integer shrink tree over `[lo, ..]` rooted at `v`.
pub fn int_tree(lo: i128, v: i128) -> Tree<i128> {
    Tree::with_children(v, move || {
        int_candidates(lo, v)
            .into_iter()
            .map(|c| int_tree(lo, c))
            .collect()
    })
}

/// A float shrink tree aiming at `lo`: `lo`, integral truncation, then
/// halvings of the distance, cut off once the delta is negligible.
pub fn f64_tree(lo: f64, v: f64) -> Tree<f64> {
    Tree::with_children(v, move || {
        let mut out: Vec<f64> = Vec::new();
        if v == lo || !v.is_finite() {
            return Vec::new();
        }
        out.push(lo);
        let trunc = v.trunc();
        if trunc > lo && trunc < v {
            out.push(trunc);
        }
        let min_delta = 1e-9_f64.max(v.abs() * 1e-12);
        let mut d = (v - lo) / 2.0;
        while d > min_delta {
            let c = v - d;
            if c > lo && c < v && !out.contains(&c) {
                out.push(c);
            }
            d /= 2.0;
        }
        out.into_iter().map(|c| f64_tree(lo, c)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_candidates_aim_at_lo() {
        let cs = int_candidates(0, 100);
        assert_eq!(cs[0], 0);
        assert!(cs.windows(2).all(|w| w[0] < w[1]), "{cs:?}");
        assert_eq!(*cs.last().unwrap(), 99);
    }

    #[test]
    fn map_preserves_children() {
        let t = int_tree(0, 8);
        let mapped = t.map(&(Rc::new(|v: &i128| *v * 2) as Rc<dyn Fn(&i128) -> i128>));
        assert_eq!(*mapped.value(), 16);
        let kids: Vec<i128> = mapped.children().iter().map(|c| *c.value()).collect();
        assert_eq!(kids[0], 0);
        assert!(kids.iter().all(|k| k % 2 == 0));
    }

    #[test]
    fn zip_shrinks_left_then_right() {
        let t = int_tree(0, 2).zip(&int_tree(0, 3));
        let kids: Vec<(i128, i128)> = t.children().iter().map(|c| *c.value()).collect();
        assert!(kids.contains(&(0, 3)));
        assert!(kids.contains(&(2, 0)));
    }

    #[test]
    fn vec_shrinks_by_deletion_and_element() {
        let forest = vec![int_tree(0, 5), int_tree(0, 7)];
        let t = forest_to_vec(forest, 0);
        assert_eq!(t.value(), &vec![5, 7]);
        let kids: Vec<Vec<i128>> = t.children().iter().map(|c| c.value().clone()).collect();
        assert!(kids.contains(&vec![]), "whole-vec deletion first");
        assert!(kids.contains(&vec![7]));
        assert!(kids.contains(&vec![5]));
        assert!(kids.contains(&vec![0, 7]), "element shrink");
    }

    #[test]
    fn vec_respects_min_len() {
        let forest = vec![int_tree(0, 1), int_tree(0, 2), int_tree(0, 3)];
        let t = forest_to_vec(forest, 2);
        for c in t.children() {
            assert!(c.value().len() >= 2);
        }
    }

    #[test]
    fn f64_tree_terminates() {
        let t = f64_tree(0.0, 1e9);
        let kids = t.children();
        assert!(!kids.is_empty());
        assert_eq!(*kids[0].value(), 0.0);
        assert!(kids.len() < 80);
    }
}
