use crate::error::{ParseErrorKind, SchemaError};
use crate::model::{EntityKind, TaskSchema, TaskSchemaBuilder};

/// Parses task-schema DSL source into a validated [`TaskSchema`].
///
/// # Grammar
///
/// ```text
/// schema     := item* ;
/// item       := class_decl | rule_decl | schema_decl ;
/// schema_decl:= "schema" IDENT ";" ;
/// class_decl := ("data" | "tool") IDENT ("," IDENT)* ";" ;
/// rule_decl  := ("activity" IDENT ":")? IDENT "=" IDENT "(" args? ")" ";" ;
/// args       := IDENT ("," IDENT)* ;
/// ```
///
/// `//` and `#` start line comments. Identifiers are
/// `[A-Za-z_][A-Za-z0-9_-]*`, so hyphenated tool names like
/// `place-and-route` work. The paper's Fig. 4 schema in this DSL:
///
/// ```text
/// data netlist; data stimuli; data performance;
/// tool netlist_editor; tool simulator;
/// activity Create:   netlist = netlist_editor();
/// activity Simulate: performance = simulator(netlist, stimuli);
/// ```
///
/// # Errors
///
/// [`SchemaError::Parse`] for syntax errors (with 1-based line/column),
/// or any validation error from
/// [`TaskSchemaBuilder::build`](crate::TaskSchemaBuilder::build).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), schema::SchemaError> {
/// let s = schema::parse_schema("data a; tool t; a = t();")?;
/// assert_eq!(s.rules()[0].activity(), "Run t");
/// # Ok(())
/// # }
/// ```
pub fn parse_schema(source: &str) -> Result<TaskSchema, SchemaError> {
    let tokens = lex(source)?;
    Parser {
        tokens,
        pos: 0,
        builder: TaskSchemaBuilder::new(""),
        schema_name: None,
    }
    .parse()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenKind {
    Ident(String),
    Comma,
    Semi,
    Colon,
    Equals,
    LParen,
    RParen,
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Equals => write!(f, "="),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[derive(Debug, Clone)]
struct Token {
    kind: TokenKind,
    line: usize,
    column: usize,
}

fn lex(source: &str) -> Result<Vec<Token>, SchemaError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, column);
        let mut bump = |chars: &mut std::iter::Peekable<std::str::Chars>| {
            let c = chars.next().expect("peeked");
            if c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
            c
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump(&mut chars);
            }
            '#' => {
                while chars.peek().is_some_and(|&c| c != '\n') {
                    bump(&mut chars);
                }
            }
            '/' => {
                bump(&mut chars);
                if chars.peek() == Some(&'/') {
                    while chars.peek().is_some_and(|&c| c != '\n') {
                        bump(&mut chars);
                    }
                } else {
                    return Err(SchemaError::Parse {
                        line: tl,
                        column: tc,
                        kind: ParseErrorKind::UnexpectedChar('/'),
                    });
                }
            }
            ',' | ';' | ':' | '=' | '(' | ')' => {
                bump(&mut chars);
                let kind = match c {
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semi,
                    ':' => TokenKind::Colon,
                    '=' => TokenKind::Equals,
                    '(' => TokenKind::LParen,
                    _ => TokenKind::RParen,
                };
                tokens.push(Token {
                    kind,
                    line: tl,
                    column: tc,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while chars
                    .peek()
                    .is_some_and(|&c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    ident.push(bump(&mut chars));
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    line: tl,
                    column: tc,
                });
            }
            other => {
                return Err(SchemaError::Parse {
                    line: tl,
                    column: tc,
                    kind: ParseErrorKind::UnexpectedChar(other),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column,
    });
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    builder: TaskSchemaBuilder,
    schema_name: Option<String>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, wanted: &'static str) -> SchemaError {
        let t = self.peek();
        SchemaError::Parse {
            line: t.line,
            column: t.column,
            kind: if t.kind == TokenKind::Eof {
                ParseErrorKind::UnexpectedEof
            } else {
                ParseErrorKind::Expected {
                    wanted,
                    found: t.kind.to_string(),
                }
            },
        }
    }

    fn expect_ident(&mut self, wanted: &'static str) -> Result<String, SchemaError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let TokenKind::Ident(name) = self.advance().kind else {
                    unreachable!("peeked ident");
                };
                Ok(name)
            }
            _ => Err(self.error(wanted)),
        }
    }

    fn expect(&mut self, kind: TokenKind, wanted: &'static str) -> Result<(), SchemaError> {
        if self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(wanted))
        }
    }

    fn parse(mut self) -> Result<TaskSchema, SchemaError> {
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Ident(word) => match word.as_str() {
                    "schema" => self.parse_schema_decl()?,
                    "data" => self.parse_class_decl(EntityKind::Data)?,
                    "tool" => self.parse_class_decl(EntityKind::Tool)?,
                    "activity" => self.parse_rule(true)?,
                    _ => self.parse_rule(false)?,
                },
                _ => return Err(self.error("a declaration")),
            }
        }
        let mut builder = self.builder;
        if let Some(name) = self.schema_name {
            builder = builder.named(name);
        }
        builder.build()
    }

    fn parse_schema_decl(&mut self) -> Result<(), SchemaError> {
        self.advance(); // "schema"
        let name = self.expect_ident("schema name")?;
        self.expect(TokenKind::Semi, "';' after schema name")?;
        self.schema_name = Some(name);
        Ok(())
    }

    fn parse_class_decl(&mut self, kind: EntityKind) -> Result<(), SchemaError> {
        self.advance(); // "data" | "tool"
        loop {
            let name = self.expect_ident("class name")?;
            self.builder = std::mem::take(&mut self.builder).class(name, kind);
            match &self.peek().kind {
                TokenKind::Comma => {
                    self.advance();
                }
                TokenKind::Semi => {
                    self.advance();
                    return Ok(());
                }
                _ => return Err(self.error("',' or ';' in class declaration")),
            }
        }
    }

    fn parse_rule(&mut self, labelled: bool) -> Result<(), SchemaError> {
        let activity = if labelled {
            self.advance(); // "activity"
            let name = self.expect_ident("activity name")?;
            self.expect(TokenKind::Colon, "':' after activity name")?;
            name
        } else {
            String::new()
        };
        let output = self.expect_ident("output class")?;
        self.expect(TokenKind::Equals, "'=' in construction rule")?;
        let tool = self.expect_ident("tool class")?;
        self.expect(TokenKind::LParen, "'(' after tool name")?;
        let mut inputs: Vec<String> = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                inputs.push(self.expect_ident("input class")?);
                match &self.peek().kind {
                    TokenKind::Comma => {
                        self.advance();
                    }
                    TokenKind::RParen => break,
                    _ => return Err(self.error("',' or ')' in input list")),
                }
            }
        }
        self.expect(TokenKind::RParen, "')' closing input list")?;
        self.expect(TokenKind::Semi, "';' after construction rule")?;
        let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        self.builder = std::mem::take(&mut self.builder).rule(activity, output, tool, &input_refs);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CIRCUIT: &str = "
        schema circuit;
        // The paper's Fig. 4 example.
        data netlist, stimuli, performance;
        tool netlist_editor, simulator;
        activity Create:   netlist = netlist_editor();
        activity Simulate: performance = simulator(netlist, stimuli);
    ";

    #[test]
    fn parses_paper_schema() {
        let s = parse_schema(CIRCUIT).unwrap();
        assert_eq!(s.classes().len(), 5);
        assert_eq!(s.rules().len(), 2);
        let sim = s.rule("Simulate").unwrap();
        assert_eq!(sim.output(), "performance");
        assert_eq!(sim.tool(), "simulator");
        assert_eq!(sim.inputs(), ["netlist", "stimuli"]);
    }

    #[test]
    fn unlabelled_rule_gets_derived_name() {
        let s = parse_schema("data a; tool t; a = t();").unwrap();
        assert_eq!(s.rules()[0].activity(), "Run t");
    }

    #[test]
    fn hash_comments_and_hyphens() {
        let s = parse_schema(
            "# comment\ndata layout; tool place-and-route; data netlist;\n\
             activity Route: layout = place-and-route(netlist);",
        )
        .unwrap();
        assert_eq!(s.rule("Route").unwrap().tool(), "place-and-route");
    }

    #[test]
    fn reports_line_and_column() {
        let err = parse_schema("data a;\ndata ;").unwrap_err();
        match err {
            SchemaError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 6);
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_stray_character() {
        let err = parse_schema("data a; !").unwrap_err();
        assert!(matches!(
            err,
            SchemaError::Parse {
                kind: ParseErrorKind::UnexpectedChar('!'),
                ..
            }
        ));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_schema("data a, b tool t;").unwrap_err();
        assert!(matches!(err, SchemaError::Parse { .. }));
    }

    #[test]
    fn rejects_truncated_rule() {
        let err = parse_schema("data a; tool t; a = t(").unwrap_err();
        assert!(matches!(
            err,
            SchemaError::Parse {
                kind: ParseErrorKind::UnexpectedEof,
                ..
            }
        ));
    }

    #[test]
    fn rejects_single_slash() {
        let err = parse_schema("data a; / b").unwrap_err();
        assert!(matches!(
            err,
            SchemaError::Parse {
                kind: ParseErrorKind::UnexpectedChar('/'),
                ..
            }
        ));
    }

    #[test]
    fn empty_source_is_empty_schema_error() {
        assert_eq!(parse_schema(""), Err(SchemaError::Empty));
        assert_eq!(parse_schema("// just a comment"), Err(SchemaError::Empty));
    }

    #[test]
    fn validation_errors_surface() {
        let err = parse_schema("data a; tool t; a = t(b);").unwrap_err();
        assert!(matches!(err, SchemaError::UnknownClass { .. }));
    }

    #[test]
    fn rule_with_empty_inputs() {
        let s = parse_schema("data a; tool t; activity Make: a = t();").unwrap();
        assert!(s.rule("Make").unwrap().inputs().is_empty());
    }

    #[test]
    fn windows_line_endings() {
        let s = parse_schema("data a;\r\ntool t;\r\na = t();\r\n").unwrap();
        assert_eq!(s.rules().len(), 1);
    }
}
