use std::fmt;

use crate::Predictor;

/// Accuracy report for one estimator over one history.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Estimator name.
    pub name: String,
    /// Number of one-step-ahead forecasts made.
    pub forecasts: usize,
    /// Mean absolute error, in the history's duration units.
    pub mae: f64,
    /// Mean absolute percentage error (0.10 = 10%).
    pub mape: f64,
    /// Root mean squared error.
    pub rmse: f64,
}

impl fmt::Display for EvalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} n={:<3} MAE {:.3} MAPE {:.1}% RMSE {:.3}",
            self.name,
            self.forecasts,
            self.mae,
            self.mape * 100.0,
            self.rmse
        )
    }
}

/// Produces the rolling one-step-ahead forecasts an estimator makes
/// over `history`: for each prefix with at least `warmup` observations,
/// the prediction for the next observation. Returns `(predicted,
/// actual)` pairs.
pub fn rolling_forecasts(
    predictor: &dyn Predictor,
    history: &[f64],
    warmup: usize,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for split in warmup.max(1)..history.len() {
        if let Some(p) = predictor.predict(&history[..split]) {
            out.push((p, history[split]));
        }
    }
    out
}

/// Evaluates an estimator on `history` via rolling one-step-ahead
/// forecasts after a `warmup` prefix.
///
/// Returns `None` when no forecasts could be made (history shorter
/// than `warmup + 1`, or the estimator always declined).
///
/// # Example
///
/// ```
/// use predict::{evaluate, LastValue};
///
/// let history = [2.0, 2.0, 2.0, 2.0];
/// let report = evaluate(&LastValue, &history, 1).expect("forecasts made");
/// assert_eq!(report.mae, 0.0); // constant history is easy
/// ```
pub fn evaluate(predictor: &dyn Predictor, history: &[f64], warmup: usize) -> Option<EvalReport> {
    let pairs = rolling_forecasts(predictor, history, warmup);
    if pairs.is_empty() {
        return None;
    }
    let n = pairs.len() as f64;
    let mae = pairs.iter().map(|(p, a)| (p - a).abs()).sum::<f64>() / n;
    let mape = pairs
        .iter()
        .filter(|(_, a)| a.abs() > f64::EPSILON)
        .map(|(p, a)| ((p - a) / a).abs())
        .sum::<f64>()
        / n;
    let rmse = (pairs.iter().map(|(p, a)| (p - a) * (p - a)).sum::<f64>() / n).sqrt();
    Some(EvalReport {
        name: predictor.name().to_owned(),
        forecasts: pairs.len(),
        mae,
        mape,
        rmse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ewma, Intuition, LastValue, LinearTrend, MeanOfAll};

    #[test]
    fn rolling_forecast_count() {
        let history = [1.0, 2.0, 3.0, 4.0];
        let pairs = rolling_forecasts(&LastValue, &history, 1);
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], (1.0, 2.0));
        assert_eq!(pairs[2], (3.0, 4.0));
    }

    #[test]
    fn evaluate_constant_history_perfect() {
        let history = [3.0; 6];
        let r = evaluate(&LastValue, &history, 1).unwrap();
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.forecasts, 5);
    }

    #[test]
    fn evaluate_none_on_short_history() {
        assert!(evaluate(&LastValue, &[1.0], 1).is_none());
        // LinearTrend declines prefixes shorter than 2, so it needs a
        // 3-point history before any rolling forecast exists.
        assert!(evaluate(&LinearTrend, &[1.0, 2.0], 1).is_none());
        assert!(evaluate(&LinearTrend, &[1.0, 2.0, 3.0], 1).is_some());
    }

    #[test]
    fn trend_beats_last_value_on_trending_history() {
        let history: Vec<f64> = (1..=20).map(|i| f64::from(i) * 0.5).collect();
        let trend = evaluate(&LinearTrend, &history, 3).unwrap();
        let last = evaluate(&LastValue, &history, 3).unwrap();
        assert!(trend.mae < last.mae);
    }

    #[test]
    fn history_beats_bad_intuition() {
        // The integrated system's claim: measured history out-predicts a
        // designer guess that is off by 2x.
        let history = [4.0, 4.2, 3.9, 4.1, 4.0, 4.05];
        let intuition = evaluate(&Intuition::new(8.0), &history, 1).unwrap();
        let mean = evaluate(&MeanOfAll, &history, 1).unwrap();
        let ewma = evaluate(&Ewma::new(0.3), &history, 1).unwrap();
        assert!(mean.mae < intuition.mae);
        assert!(ewma.mae < intuition.mae);
    }

    #[test]
    fn display_includes_name_and_mape() {
        let r = evaluate(&MeanOfAll, &[1.0, 2.0, 3.0], 1).unwrap();
        let s = r.to_string();
        assert!(s.contains("mean"));
        assert!(s.contains("MAPE"));
    }

    #[test]
    fn noisy_history_ranking_is_stable() {
        // Synthetic noisy-flat history: mean-style estimators should
        // beat last-value (which chases noise).
        let history = simtools::workload::duration_history(5.0, 0.0, 0.3, 60, 17);
        let mean = evaluate(&MeanOfAll, &history, 5).unwrap();
        let last = evaluate(&LastValue, &history, 5).unwrap();
        assert!(mean.rmse < last.rmse);
    }
}
