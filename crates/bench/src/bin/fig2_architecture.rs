//! Regenerates **Fig. 2**: the four-level architecture as implemented
//! in Hercules, dumped from a live database after one plan/execute
//! cycle.

use bench::circuit_manager;

fn main() {
    let mut h = circuit_manager(2, 42);
    h.plan("performance").expect("plannable");
    h.execute("performance").expect("executable");

    println!("Level 1 — schema (entities and construction rules):");
    for class in h.schema().classes() {
        println!("  {class}");
    }
    for rule in h.schema().rules() {
        println!("  {rule}");
    }

    println!("\nLevel 2 — flow model (task tree nodes and arcs):");
    let tree = h.extract_task_tree("performance").expect("known target");
    for activity in tree.activities() {
        for input in tree.inputs_of(activity) {
            println!("  [{input}] --arc--> ({activity})");
        }
        println!("  ({activity}) --arc--> [{}]", tree.output_of(activity));
    }

    println!("\nLevel 3 — metadata (runs, entity instances, schedules):");
    for run in h.db().runs() {
        println!("  {run}");
    }
    for activity in ["Create", "Simulate"] {
        let sc = h.db().current_plan(activity).expect("planned");
        println!("  {sc}");
    }

    println!("\nLevel 4 — design data objects:");
    for class in h.db().entity_classes() {
        for &id in h.db().entity_container(class).expect("listed class") {
            let data = h.db().data_object(h.db().entity_instance(id).data());
            println!("  {data}");
        }
    }
}
