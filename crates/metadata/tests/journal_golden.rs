//! Golden-file test of the journal text format: a fixed, scripted
//! planning + execution session must serialize to exactly the
//! committed `artifacts/journal_session.txt`. The journal text *is*
//! the recovery artifact — any accidental format drift would strand
//! previously written logs — so changes must be deliberate:
//! regenerate with
//!
//! ```text
//! cargo test -p metadata --test journal_golden -- --ignored regenerate
//! ```
//!
//! and review the diff.

use std::path::PathBuf;

use metadata::{Journal, MetadataDb};
use schedule::WorkDays;
use schema::examples;

/// A small but complete session: plan two activities, supply a primary
/// input, run both tools, link both completions. Every journal op kind
/// that a normal session produces appears at least once.
fn scripted_session() -> MetadataDb {
    let schema = examples::circuit_design();
    let mut db = MetadataDb::for_schema(&schema);
    db.enable_journal();

    let session = db.begin_planning(WorkDays::ZERO);
    let plan_create = db
        .plan_activity(session, "Create", WorkDays::ZERO, WorkDays::new(2.0))
        .expect("plan Create");
    let plan_sim = db
        .plan_activity(session, "Simulate", WorkDays::new(2.0), WorkDays::new(1.5))
        .expect("plan Simulate");
    db.assign(plan_create, "alice").expect("assign alice");
    db.assign(plan_sim, "bob").expect("assign bob");

    let stim_data = db.store_data("stimuli.dat", b"0101 1100".to_vec());
    let stimuli = db
        .supply_input("stimuli", "bob", WorkDays::ZERO, stim_data)
        .expect("supply stimuli");

    let run = db
        .begin_run("Create", "alice", WorkDays::new(0.25))
        .expect("begin Create run");
    let net_data = db.store_data("netlist.v1", b"module counter;".to_vec());
    let netlist = db
        .finish_run(run, "netlist", net_data, WorkDays::new(1.75), &[])
        .expect("finish Create run");
    db.link_completion(plan_create, netlist)
        .expect("link Create");

    let run = db
        .begin_run("Simulate", "bob", WorkDays::new(2.0))
        .expect("begin Simulate run");
    let perf_data = db.store_data("performance.v1", b"slack +0.2ns".to_vec());
    let performance = db
        .finish_run(
            run,
            "performance",
            perf_data,
            WorkDays::new(3.25),
            &[netlist, stimuli],
        )
        .expect("finish Simulate run");
    db.link_completion(plan_sim, performance)
        .expect("link Simulate");
    db
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/journal_session.txt")
}

#[test]
fn journal_text_matches_golden_artifact() {
    let db = scripted_session();
    let actual = db.journal().expect("journal enabled").to_text();
    let path = golden_path();
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nregenerate with: cargo test -p metadata \
             --test journal_golden -- --ignored regenerate",
            path.display()
        )
    });
    assert_eq!(
        golden.replace("\r\n", "\n"),
        actual,
        "journal text format drifted from the committed golden artifact; \
         if intentional, regenerate with: cargo test -p metadata \
         --test journal_golden -- --ignored regenerate"
    );
}

#[test]
fn golden_artifact_replays_into_the_session() {
    let db = scripted_session();
    let golden = std::fs::read_to_string(golden_path()).expect("golden artifact exists");
    let journal = Journal::parse(&golden).expect("golden artifact parses");
    let recovered = MetadataDb::recover(&journal).expect("golden artifact replays");
    assert_eq!(recovered.dump(), db.dump());
    recovered
        .check_invariants()
        .expect("recovered session passes invariants");
    assert_eq!(recovered.completed_activities(), vec!["Create", "Simulate"]);
}

/// Rewrites the golden artifact from the scripted session. Ignored by
/// default; run explicitly when the format changes deliberately.
#[test]
#[ignore = "writes the golden artifact; run explicitly after deliberate format changes"]
fn regenerate() {
    let db = scripted_session();
    let text = db.journal().expect("journal enabled").to_text();
    std::fs::write(golden_path(), text).expect("write golden artifact");
}
