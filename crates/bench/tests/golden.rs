//! Golden-file tests: the committed paper artifacts must match what
//! the experiment binaries actually print today.
//!
//! Deterministic binaries only (seeded simulation, no timing):
//! `fig8_gantt` and `table1`. Comparison normalizes whitespace
//! (trailing spaces and CR/LF) so editor churn doesn't fail the build;
//! any real drift fails with a diff and a regeneration hint.

use std::path::Path;
use std::process::Command;

/// Normalizes output for comparison: CRLF -> LF, trailing whitespace
/// stripped per line, trailing blank lines dropped.
fn normalize(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text
        .replace("\r\n", "\n")
        .lines()
        .map(|l| l.trim_end().to_owned())
        .collect();
    while lines.last().is_some_and(String::is_empty) {
        lines.pop();
    }
    lines
}

/// First differing line, as a compact report.
fn first_diff(expected: &[String], actual: &[String]) -> String {
    for (i, (e, a)) in expected.iter().zip(actual.iter()).enumerate() {
        if e != a {
            return format!("line {}:\n  golden: {e:?}\n  actual: {a:?}", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs actual {}",
        expected.len(),
        actual.len()
    )
}

fn check_golden(bin_path: &str, bin_name: &str, golden_rel: &str) {
    let output = Command::new(bin_path)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin_name}: {e}"));
    assert!(
        output.status.success(),
        "{bin_name} exited with {}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(golden_rel);
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", golden_path.display()));

    let expected = normalize(&golden);
    let actual = normalize(&String::from_utf8_lossy(&output.stdout));
    assert_eq!(
        expected,
        actual,
        "\n{bin_name} output drifted from {golden_rel}\nfirst difference at {}\n\
         if the change is intentional, regenerate with:\n  \
         cargo run --release -p bench --bin {bin_name} > {golden_rel}\n",
        first_diff(&expected, &actual)
    );
}

#[test]
fn fig8_gantt_matches_golden() {
    check_golden(
        env!("CARGO_BIN_EXE_fig8_gantt"),
        "fig8_gantt",
        "artifacts/fig8_gantt.txt",
    );
}

#[test]
fn table1_matches_golden() {
    check_golden(
        env!("CARGO_BIN_EXE_table1"),
        "table1",
        "artifacts/table1.txt",
    );
}
