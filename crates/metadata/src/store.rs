//! The storage engine behind the metadata database: a [`Store`] trait
//! offering typed CRUD over runs, schedule instances, planning
//! sessions, and links, with two interchangeable backends.
//!
//! * [`ArenaStore`] — the original grow-forever in-memory arena: a
//!   [`MetadataDb`] plus its optional write-ahead [`Journal`]. Fast,
//!   volatile, and what every single-session `Hercules` uses by
//!   default.
//! * [`PersistentStore`] — a **snapshot + journal-tail** engine layered
//!   on the write-ahead journal: the database state lives on disk as
//!   the last snapshot (a [`MetadataDb::dump`]) plus a redo tail of
//!   every op appended since. Opening replays snapshot then tail;
//!   [`compact`](Store::compact) folds the tail into a fresh snapshot
//!   with a crash-consistent temp/rename `CURRENT` swap (the VOV
//!   lesson: trace-based metadata only scales when the store is an
//!   engine with compaction, not a grow-forever log).
//!
//! # On-disk layout (`PersistentStore`)
//!
//! ```text
//! <dir>/CURRENT            the live sequence number N (temp/renamed)
//! <dir>/snapshot-N.txt     metadata-db v1 dump at sequence N
//! <dir>/tail-N.journal     metadata-journal v1 redo ops since N
//! ```
//!
//! Every mutation appends its op to the in-memory journal *and* the
//! tail file before it is applied — including ops torn by an injected
//! crash, which is exactly the write-ahead fidelity the chaos suite
//! checks. Reopening tolerates one torn trailing line (a process that
//! died mid-append).
//!
//! # Generations
//!
//! Compaction renumbers nothing (dumps preserve allocation order) but
//! **bumps the store generation**: the database is reloaded via
//! [`MetadataDb::load_at`] at `N+1`, so ids held from before the
//! compaction fail mutating calls with
//! [`MetadataError::StaleHandle`] instead of silently resolving against
//! the reused slot space.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use schedule::WorkDays;

use crate::database::MetadataDb;
use crate::error::MetadataError;
use crate::export::LoadError;
use crate::ids::{DataObjectId, EntityInstanceId, PlanningSessionId, RunId, ScheduleInstanceId};
use crate::journal::Journal;

/// Errors from store lifecycle operations (open, checkpoint, compact).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// A metadata-level failure (validation, injected crash, stale
    /// handle).
    Metadata(MetadataError),
    /// A snapshot or tail file failed to parse.
    Load(LoadError),
    /// Filesystem trouble; carries the failing path and the OS error.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Metadata(e) => write!(f, "metadata error: {e}"),
            StoreError::Load(e) => write!(f, "corrupt store file: {e}"),
            StoreError::Io { path, message } => {
                write!(f, "store I/O error at {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<MetadataError> for StoreError {
    fn from(e: MetadataError) -> Self {
        StoreError::Metadata(e)
    }
}

impl From<LoadError> for StoreError {
    fn from(e: LoadError) -> Self {
        StoreError::Load(e)
    }
}

fn io_err(path: &Path, e: impl fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// What a [`compact`](Store::compact) accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Redo ops in the tail before compaction (folded into the new
    /// snapshot).
    pub tail_ops_before: usize,
    /// Redo ops in the tail afterwards (always 0 for the persistent
    /// store; the compacted journal length for the arena).
    pub tail_ops_after: usize,
    /// Bytes held by the engine before (snapshot + tail files, or the
    /// journal text for the arena).
    pub bytes_before: u64,
    /// Bytes held afterwards.
    pub bytes_after: u64,
    /// The store generation after compaction. Handles minted before it
    /// are now stale.
    pub generation: u32,
}

/// Typed CRUD over the metadata database — the storage-engine seam
/// between the flow manager and its Level-3 metadata.
///
/// Reads go through [`db`](Store::db) (the full [`MetadataDb`] query
/// surface); every mutation goes through a trait method so a backend
/// can interpose write-ahead persistence. Both backends pass the same
/// conformance suite (`tests/store_conformance.rs`).
pub trait Store: fmt::Debug + Send + Sync {
    /// The live database, for queries.
    fn db(&self) -> &MetadataDb;

    // -- typed mutations (mirroring `MetadataDb`) ----------------------

    /// [`MetadataDb::declare_entity_container`].
    fn declare_entity_container(&mut self, class: &str);

    /// [`MetadataDb::declare_schedule_container`].
    fn declare_schedule_container(&mut self, activity: &str, output_class: &str);

    /// [`MetadataDb::store_data`].
    fn store_data(&mut self, name: &str, content: Vec<u8>) -> DataObjectId;

    /// [`MetadataDb::begin_run`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::begin_run`].
    fn begin_run(
        &mut self,
        activity: &str,
        operator: &str,
        started_at: WorkDays,
    ) -> Result<RunId, MetadataError>;

    /// [`MetadataDb::finish_run`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::finish_run`].
    fn finish_run(
        &mut self,
        run: RunId,
        output_class: &str,
        data: DataObjectId,
        finished_at: WorkDays,
        inputs: &[EntityInstanceId],
    ) -> Result<EntityInstanceId, MetadataError>;

    /// [`MetadataDb::supply_input`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::supply_input`].
    fn supply_input(
        &mut self,
        class: &str,
        creator: &str,
        created_at: WorkDays,
        data: DataObjectId,
    ) -> Result<EntityInstanceId, MetadataError>;

    /// [`MetadataDb::begin_planning`].
    fn begin_planning(&mut self, at: WorkDays) -> PlanningSessionId;

    /// [`MetadataDb::plan_activity`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::plan_activity`].
    fn plan_activity(
        &mut self,
        session: PlanningSessionId,
        activity: &str,
        planned_start: WorkDays,
        planned_duration: WorkDays,
    ) -> Result<ScheduleInstanceId, MetadataError>;

    /// [`MetadataDb::assign`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::assign`].
    fn assign(&mut self, schedule: ScheduleInstanceId, designer: &str)
        -> Result<(), MetadataError>;

    /// [`MetadataDb::link_completion`].
    ///
    /// # Errors
    ///
    /// As [`MetadataDb::link_completion`].
    fn link_completion(
        &mut self,
        schedule: ScheduleInstanceId,
        entity: EntityInstanceId,
    ) -> Result<(), MetadataError>;

    // -- journal & crash control ---------------------------------------

    /// Turns on write-ahead journaling ([`MetadataDb::enable_journal`]).
    /// No-op for the persistent store, which always journals.
    fn enable_journal(&mut self);

    /// Detaches the in-memory journal ([`MetadataDb::take_journal`]).
    /// The persistent store returns a *copy* of its tail and keeps
    /// journaling — its durability depends on it.
    fn take_journal(&mut self) -> Option<Journal>;

    /// Arms a simulated crash ([`MetadataDb::inject_crash_after`]).
    fn inject_crash_after(&mut self, after: u32);

    /// Disarms a pending injected crash ([`MetadataDb::disarm_crash`]).
    fn disarm_crash(&mut self);

    // -- lifecycle -----------------------------------------------------

    /// Replaces the entire database state (dump-loader plumbing). The
    /// persistent store treats this as a new epoch: it checkpoints a
    /// fresh snapshot of the replacement state.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if persisting the replacement fails.
    fn replace_db(&mut self, db: MetadataDb) -> Result<(), StoreError>;

    /// Forces buffered state to durable storage (no-op for the arena).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem trouble.
    fn checkpoint(&mut self) -> Result<(), StoreError>;

    /// Folds the journal tail into a fresh snapshot and **bumps the
    /// store generation** — handles minted before the call become
    /// stale. See the [module docs](self) for the crash-consistent
    /// swap protocol.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the store has crashed or persisting fails.
    fn compact(&mut self) -> Result<CompactionStats, StoreError>;

    /// An owned deep copy. Cloning a [`PersistentStore`] yields a
    /// *detached in-memory* [`ArenaStore`] over the same state — two
    /// live writers on one tail file would tear it — which is exactly
    /// the what-if-fork semantics the chaos suite's cloned sessions
    /// want.
    fn boxed_clone(&self) -> Box<dyn Store>;

    /// The on-disk directory, for persistent backends.
    fn path(&self) -> Option<&Path>;
}

impl Clone for Box<dyn Store> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

// ----------------------------------------------------------------------
// Arena backend
// ----------------------------------------------------------------------

/// The in-memory backend: a plain [`MetadataDb`] arena. This is the
/// storage engine every pre-workspace `Hercules` session used, now
/// behind the [`Store`] seam.
#[derive(Debug, Clone, Default)]
pub struct ArenaStore {
    db: MetadataDb,
}

impl ArenaStore {
    /// Wraps an existing database.
    pub fn new(db: MetadataDb) -> Self {
        ArenaStore { db }
    }

    /// Consumes the store, yielding the database.
    pub fn into_db(self) -> MetadataDb {
        self.db
    }
}

impl Store for ArenaStore {
    fn db(&self) -> &MetadataDb {
        &self.db
    }

    fn declare_entity_container(&mut self, class: &str) {
        self.db.declare_entity_container(class);
    }

    fn declare_schedule_container(&mut self, activity: &str, output_class: &str) {
        self.db.declare_schedule_container(activity, output_class);
    }

    fn store_data(&mut self, name: &str, content: Vec<u8>) -> DataObjectId {
        self.db.store_data(name, content)
    }

    fn begin_run(
        &mut self,
        activity: &str,
        operator: &str,
        started_at: WorkDays,
    ) -> Result<RunId, MetadataError> {
        self.db.begin_run(activity, operator, started_at)
    }

    fn finish_run(
        &mut self,
        run: RunId,
        output_class: &str,
        data: DataObjectId,
        finished_at: WorkDays,
        inputs: &[EntityInstanceId],
    ) -> Result<EntityInstanceId, MetadataError> {
        self.db
            .finish_run(run, output_class, data, finished_at, inputs)
    }

    fn supply_input(
        &mut self,
        class: &str,
        creator: &str,
        created_at: WorkDays,
        data: DataObjectId,
    ) -> Result<EntityInstanceId, MetadataError> {
        self.db.supply_input(class, creator, created_at, data)
    }

    fn begin_planning(&mut self, at: WorkDays) -> PlanningSessionId {
        self.db.begin_planning(at)
    }

    fn plan_activity(
        &mut self,
        session: PlanningSessionId,
        activity: &str,
        planned_start: WorkDays,
        planned_duration: WorkDays,
    ) -> Result<ScheduleInstanceId, MetadataError> {
        self.db
            .plan_activity(session, activity, planned_start, planned_duration)
    }

    fn assign(
        &mut self,
        schedule: ScheduleInstanceId,
        designer: &str,
    ) -> Result<(), MetadataError> {
        self.db.assign(schedule, designer)
    }

    fn link_completion(
        &mut self,
        schedule: ScheduleInstanceId,
        entity: EntityInstanceId,
    ) -> Result<(), MetadataError> {
        self.db.link_completion(schedule, entity)
    }

    fn enable_journal(&mut self) {
        self.db.enable_journal();
    }

    fn take_journal(&mut self) -> Option<Journal> {
        self.db.take_journal()
    }

    fn inject_crash_after(&mut self, after: u32) {
        self.db.inject_crash_after(after);
    }

    fn disarm_crash(&mut self) {
        self.db.disarm_crash();
    }

    fn replace_db(&mut self, db: MetadataDb) -> Result<(), StoreError> {
        self.db = db;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn compact(&mut self) -> Result<CompactionStats, StoreError> {
        self.db.check_alive()?;
        let had_journal = self.db.journal().is_some();
        let (ops_before, bytes_before) = match self.db.journal() {
            Some(j) => (j.len(), j.to_text().len() as u64),
            None => (0, 0),
        };
        // Reload from our own dump at a bumped generation: slots are
        // preserved (dumps are allocation-ordered) but every handle
        // minted before this call is now stale.
        let generation = self.db.generation() + 1;
        let dump = self.db.dump();
        let mut fresh = MetadataDb::load_at(&dump, generation).map_err(StoreError::Load)?;
        let compacted = Journal::compacted_from(&fresh);
        let (ops_after, bytes_after) = if had_journal {
            let len = compacted.len();
            let bytes = compacted.to_text().len() as u64;
            fresh.journal = Some(compacted);
            (len, bytes)
        } else {
            (0, 0)
        };
        self.db = fresh;
        Ok(CompactionStats {
            tail_ops_before: ops_before,
            tail_ops_after: ops_after,
            bytes_before,
            bytes_after,
            generation,
        })
    }

    fn boxed_clone(&self) -> Box<dyn Store> {
        Box::new(self.clone())
    }

    fn path(&self) -> Option<&Path> {
        None
    }
}

// ----------------------------------------------------------------------
// Persistent backend
// ----------------------------------------------------------------------

const CURRENT: &str = "CURRENT";
const TAIL_HEADER: &str = "metadata-journal v1\n";

fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq}.txt")
}

fn tail_name(seq: u64) -> String {
    format!("tail-{seq}.journal")
}

/// The snapshot + journal-tail backend. See the [module docs](self)
/// for the on-disk layout and protocols.
#[derive(Debug)]
pub struct PersistentStore {
    dir: PathBuf,
    db: MetadataDb,
    /// Live sequence number (`CURRENT`'s content); also the store
    /// generation.
    seq: u64,
    /// Append handle on `tail-<seq>.journal`.
    tail: File,
    /// How many of the in-memory journal's ops are already in the tail
    /// file.
    tail_ops: usize,
}

impl PersistentStore {
    /// Creates a new store at `dir` (made if absent) holding `db` as
    /// its first snapshot. Fails if `dir` already contains a store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem trouble or an existing store.
    pub fn create(dir: impl Into<PathBuf>, db: MetadataDb) -> Result<PersistentStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let current = dir.join(CURRENT);
        if current.exists() {
            return Err(io_err(&current, "store already exists"));
        }
        let mut db = db;
        // The persistent store always journals; the snapshot covers the
        // declares, so the tail starts truly empty (no re-declares).
        db.journal = Some(Journal::new());
        let seq = 0u64;
        write_atomic(&dir.join(snapshot_name(seq)), &db.dump())?;
        write_atomic(&dir.join(tail_name(seq)), TAIL_HEADER)?;
        write_atomic(&current, &format!("{seq}\n"))?;
        let tail = open_tail(&dir.join(tail_name(seq)))?;
        Ok(PersistentStore {
            dir,
            db,
            seq,
            tail,
            tail_ops: 0,
        })
    }

    /// Opens an existing store: loads `snapshot-N` at generation `N`,
    /// replays the redo ops in `tail-N` (tolerating one torn trailing
    /// line from a mid-append death), and resumes appending.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the directory holds no store, a file fails to
    /// parse beyond a single torn line, or the tail does not replay.
    pub fn open(dir: impl Into<PathBuf>) -> Result<PersistentStore, StoreError> {
        let dir = dir.into();
        let mut span = obs::span!("store.open");
        let current = dir.join(CURRENT);
        let seq: u64 = fs::read_to_string(&current)
            .map_err(|e| io_err(&current, e))?
            .trim()
            .parse()
            .map_err(|e| io_err(&current, format!("bad sequence number: {e}")))?;
        let snap_path = dir.join(snapshot_name(seq));
        let snapshot = fs::read_to_string(&snap_path).map_err(|e| io_err(&snap_path, e))?;
        let generation = generation_of(seq);
        let mut db = MetadataDb::load_at(&snapshot, generation)?;
        let tail_path = dir.join(tail_name(seq));
        let tail_text = fs::read_to_string(&tail_path).map_err(|e| io_err(&tail_path, e))?;
        let tail_journal = parse_tail(&tail_text)?;
        // If a torn trailing line was dropped, truncate it on disk
        // before resuming appends — otherwise the next op would splice
        // onto the partial line and corrupt the log for the next open.
        if tail_text.lines().count() != tail_journal.len() + 1 {
            write_atomic(&tail_path, &tail_journal.to_text())?;
        }
        db.apply_journal(&tail_journal)?;
        span.record("seq", seq);
        span.record("tail_ops", tail_journal.len());
        let tail_ops = tail_journal.len();
        db.journal = Some(tail_journal);
        let tail = open_tail(&tail_path)?;
        Ok(PersistentStore {
            dir,
            db,
            seq,
            tail,
            tail_ops,
        })
    }

    /// The live sequence number (and store generation).
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    /// Flushes any journal ops not yet in the tail file. Runs after
    /// *every* mutation — including one torn by an injected crash,
    /// whose op was appended before the simulated death and therefore
    /// must reach disk, exactly like a real WAL.
    fn sync_tail(&mut self) {
        let journal = self
            .db
            .journal
            .as_ref()
            .expect("persistent store always journals");
        let pending = &journal.ops()[self.tail_ops..];
        if pending.is_empty() {
            return;
        }
        let mut buf = String::new();
        for op in pending {
            buf.push_str(&op.to_line());
            buf.push('\n');
        }
        self.tail
            .write_all(buf.as_bytes())
            .and_then(|()| self.tail.flush())
            .unwrap_or_else(|e| {
                // A failing tail write means durability is gone: there
                // is no way to honour the write-ahead contract, so die
                // loudly rather than acknowledge unpersisted mutations.
                panic!(
                    "persistent store lost its tail at {}: {e}",
                    self.dir.display()
                )
            });
        self.tail_ops = journal.len();
    }

    fn file_size(&self, name: &str) -> u64 {
        fs::metadata(self.dir.join(name))
            .map(|m| m.len())
            .unwrap_or(0)
    }
}

/// Sequence → generation. Sequences are u64 for on-disk headroom while
/// id stamps stay a compact u32; 2³² compactions of one project is
/// beyond plausible, but saturate rather than wrap if it happens.
fn generation_of(seq: u64) -> u32 {
    u32::try_from(seq).unwrap_or(u32::MAX)
}

fn open_tail(path: &Path) -> Result<File, StoreError> {
    OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| io_err(path, e))
}

/// Writes `content` crash-consistently: temp file in the same
/// directory, then an atomic rename over the target.
fn write_atomic(path: &Path, content: &str) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, content).map_err(|e| io_err(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(())
}

/// Parses a tail file, dropping at most one torn trailing line (a
/// process that died mid-append leaves a partial final record; any
/// earlier corruption is a real error).
fn parse_tail(text: &str) -> Result<Journal, StoreError> {
    match Journal::parse(text) {
        Ok(j) => Ok(j),
        Err(LoadError::BadLine { line, .. }) if line == text.lines().count() => {
            let mut kept: String = text
                .lines()
                .take(line - 1)
                .map(|l| format!("{l}\n"))
                .collect();
            if kept.is_empty() {
                kept.push_str(TAIL_HEADER);
            }
            Journal::parse(&kept).map_err(StoreError::Load)
        }
        Err(e) => Err(StoreError::Load(e)),
    }
}

impl Store for PersistentStore {
    fn db(&self) -> &MetadataDb {
        &self.db
    }

    fn declare_entity_container(&mut self, class: &str) {
        self.db.declare_entity_container(class);
        self.sync_tail();
    }

    fn declare_schedule_container(&mut self, activity: &str, output_class: &str) {
        self.db.declare_schedule_container(activity, output_class);
        self.sync_tail();
    }

    fn store_data(&mut self, name: &str, content: Vec<u8>) -> DataObjectId {
        let id = self.db.store_data(name, content);
        self.sync_tail();
        id
    }

    fn begin_run(
        &mut self,
        activity: &str,
        operator: &str,
        started_at: WorkDays,
    ) -> Result<RunId, MetadataError> {
        let r = self.db.begin_run(activity, operator, started_at);
        self.sync_tail();
        r
    }

    fn finish_run(
        &mut self,
        run: RunId,
        output_class: &str,
        data: DataObjectId,
        finished_at: WorkDays,
        inputs: &[EntityInstanceId],
    ) -> Result<EntityInstanceId, MetadataError> {
        let r = self
            .db
            .finish_run(run, output_class, data, finished_at, inputs);
        self.sync_tail();
        r
    }

    fn supply_input(
        &mut self,
        class: &str,
        creator: &str,
        created_at: WorkDays,
        data: DataObjectId,
    ) -> Result<EntityInstanceId, MetadataError> {
        let r = self.db.supply_input(class, creator, created_at, data);
        self.sync_tail();
        r
    }

    fn begin_planning(&mut self, at: WorkDays) -> PlanningSessionId {
        let id = self.db.begin_planning(at);
        self.sync_tail();
        id
    }

    fn plan_activity(
        &mut self,
        session: PlanningSessionId,
        activity: &str,
        planned_start: WorkDays,
        planned_duration: WorkDays,
    ) -> Result<ScheduleInstanceId, MetadataError> {
        let r = self
            .db
            .plan_activity(session, activity, planned_start, planned_duration);
        self.sync_tail();
        r
    }

    fn assign(
        &mut self,
        schedule: ScheduleInstanceId,
        designer: &str,
    ) -> Result<(), MetadataError> {
        let r = self.db.assign(schedule, designer);
        self.sync_tail();
        r
    }

    fn link_completion(
        &mut self,
        schedule: ScheduleInstanceId,
        entity: EntityInstanceId,
    ) -> Result<(), MetadataError> {
        let r = self.db.link_completion(schedule, entity);
        self.sync_tail();
        r
    }

    fn enable_journal(&mut self) {
        // Always on: the journal *is* the durability mechanism.
    }

    fn take_journal(&mut self) -> Option<Journal> {
        // Hand out a copy; detaching the live journal would silently
        // stop persisting.
        self.db.journal().cloned()
    }

    fn inject_crash_after(&mut self, after: u32) {
        self.db.inject_crash_after(after);
    }

    fn disarm_crash(&mut self) {
        self.db.disarm_crash();
    }

    fn replace_db(&mut self, db: MetadataDb) -> Result<(), StoreError> {
        // A wholesale state replacement starts a new epoch on disk.
        let next = self.seq + 1;
        let mut db = db;
        db.generation = generation_of(next);
        db.journal = Some(Journal::new());
        write_atomic(&self.dir.join(snapshot_name(next)), &db.dump())?;
        write_atomic(&self.dir.join(tail_name(next)), TAIL_HEADER)?;
        write_atomic(&self.dir.join(CURRENT), &format!("{next}\n"))?;
        let _ = fs::remove_file(self.dir.join(snapshot_name(self.seq)));
        let _ = fs::remove_file(self.dir.join(tail_name(self.seq)));
        self.tail = open_tail(&self.dir.join(tail_name(next)))?;
        self.db = db;
        self.seq = next;
        self.tail_ops = 0;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.tail
            .sync_all()
            .map_err(|e| io_err(&self.dir.join(tail_name(self.seq)), e))
    }

    fn compact(&mut self) -> Result<CompactionStats, StoreError> {
        self.db.check_alive()?;
        let mut span = obs::span!("store.compact", seq = self.seq);
        let bytes_before =
            self.file_size(&snapshot_name(self.seq)) + self.file_size(&tail_name(self.seq));
        let tail_ops_before = self.tail_ops;

        // 1. Fresh snapshot + empty tail at the next sequence.
        let next = self.seq + 1;
        let dump = self.db.dump();
        write_atomic(&self.dir.join(snapshot_name(next)), &dump)?;
        write_atomic(&self.dir.join(tail_name(next)), TAIL_HEADER)?;
        // 2. Commit point: CURRENT now names the new sequence. A crash
        //    on either side of this rename leaves a complete store.
        write_atomic(&self.dir.join(CURRENT), &format!("{next}\n"))?;
        // 3. Best-effort cleanup of the superseded files.
        let _ = fs::remove_file(self.dir.join(snapshot_name(self.seq)));
        let _ = fs::remove_file(self.dir.join(tail_name(self.seq)));

        // 4. Reload at the bumped generation: identical state, fresh
        //    handle stamps — ids from before this call are now stale.
        let generation = generation_of(next);
        let mut db = MetadataDb::load_at(&dump, generation)?;
        db.journal = Some(Journal::new());
        self.tail = open_tail(&self.dir.join(tail_name(next)))?;
        self.db = db;
        self.seq = next;
        self.tail_ops = 0;

        let bytes_after = self.file_size(&snapshot_name(next)) + self.file_size(&tail_name(next));
        span.record("tail_ops_folded", tail_ops_before);
        span.record("bytes_after", bytes_after);
        Ok(CompactionStats {
            tail_ops_before,
            tail_ops_after: 0,
            bytes_before,
            bytes_after,
            generation,
        })
    }

    fn boxed_clone(&self) -> Box<dyn Store> {
        // Detach: two writers on one tail file would interleave.
        let mut db = self.db.clone();
        db.crashed = false;
        db.crash_countdown = None;
        Box::new(ArenaStore::new(db))
    }

    fn path(&self) -> Option<&Path> {
        Some(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "schedflow-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed_db() -> MetadataDb {
        MetadataDb::for_schema(&examples::circuit_design())
    }

    fn mutate(store: &mut dyn Store) -> ScheduleInstanceId {
        let s = store.begin_planning(WorkDays::ZERO);
        let sc = store
            .plan_activity(s, "Create", WorkDays::ZERO, WorkDays::new(2.0))
            .unwrap();
        store.assign(sc, "alice").unwrap();
        let data = store.store_data("v1.net", b"module".to_vec());
        let run = store.begin_run("Create", "alice", WorkDays::ZERO).unwrap();
        let e = store
            .finish_run(run, "netlist", data, WorkDays::new(1.0), &[])
            .unwrap();
        store.link_completion(sc, e).unwrap();
        sc
    }

    #[test]
    fn persistent_roundtrip_reopen() {
        let dir = temp_dir("roundtrip");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        let dump = store.db().dump();
        drop(store);
        let reopened = PersistentStore::open(&dir).unwrap();
        assert_eq!(reopened.db().dump(), dump);
        reopened.db().check_invariants().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_line_is_dropped_on_open() {
        let dir = temp_dir("torn");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        let dump = store.db().dump();
        drop(store);
        // Simulate a process dying mid-append: a partial final line.
        let tail = dir.join(tail_name(0));
        let mut f = OpenOptions::new().append(true).open(&tail).unwrap();
        f.write_all(b"begin-run Create al").unwrap();
        drop(f);
        let mut reopened = PersistentStore::open(&dir).unwrap();
        assert_eq!(reopened.db().dump(), dump);
        // The torn line must be *truncated* on open, not merely
        // skipped: new appends would otherwise splice onto the partial
        // line and corrupt the log for the next open.
        reopened
            .begin_run("Simulate", "bob", WorkDays::ZERO)
            .unwrap();
        let dump = reopened.db().dump();
        drop(reopened);
        let again = PersistentStore::open(&dir).unwrap();
        assert_eq!(again.db().dump(), dump);
        again.db().check_invariants().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_op_survives_reopen() {
        let dir = temp_dir("crash");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        let runs_before = store.db().runs().len();
        store.inject_crash_after(0);
        let err = store
            .begin_run("Simulate", "bob", WorkDays::new(1.0))
            .unwrap_err();
        assert_eq!(err, MetadataError::InjectedCrash);
        drop(store);
        // The op was appended (write-ahead) before the simulated death,
        // so reopening redoes it.
        let reopened = PersistentStore::open(&dir).unwrap();
        assert_eq!(reopened.db().runs().len(), runs_before + 1);
        reopened.db().check_invariants().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_tail_and_staleness_bites() {
        let dir = temp_dir("compact");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        let sc = mutate(&mut store);
        let dump = store.db().dump();
        let stats = store.compact().unwrap();
        assert!(stats.tail_ops_before > 0);
        assert_eq!(stats.tail_ops_after, 0);
        assert_eq!(stats.generation, 1);
        assert_eq!(store.db().dump(), dump, "compaction must not change state");
        // Handles from before the compaction are stale now.
        assert!(matches!(
            store.assign(sc, "bob"),
            Err(MetadataError::StaleHandle(_))
        ));
        // Reopening the compacted store yields byte-identical state.
        drop(store);
        let reopened = PersistentStore::open(&dir).unwrap();
        assert_eq!(reopened.db().dump(), dump);
        assert_eq!(reopened.sequence(), 1);
        // And the store keeps working at the new generation.
        let mut reopened = reopened;
        let sc2 = reopened.db().schedule_container("Create").unwrap()[0];
        // Container handles were re-minted at generation 1 by load_at.
        reopened.assign(sc2, "bob").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arena_compact_shrinks_journal_and_bumps_generation() {
        let mut store = ArenaStore::new(seed_db());
        store.enable_journal();
        let sc = mutate(&mut store);
        // A torn op inflates the live journal relative to applied state.
        store.inject_crash_after(0);
        let _ = store.begin_run("Simulate", "bob", WorkDays::new(1.0));
        store.disarm_crash();
        // compact() on a crashed arena is refused...
        assert!(matches!(
            store.compact(),
            Err(StoreError::Metadata(MetadataError::InjectedCrash))
        ));
        // ...so recover first, as a real session would.
        let journal = store.take_journal().unwrap();
        let recovered = MetadataDb::recover(&journal).unwrap();
        let mut store = ArenaStore::new(recovered);
        store.enable_journal();
        let dump = store.db().dump();
        let stats = store.compact().unwrap();
        assert_eq!(store.db().dump(), dump);
        assert_eq!(store.db().generation(), stats.generation);
        assert!(store.db().journal().is_some());
        assert!(matches!(
            store.assign(sc, "bob"),
            Err(MetadataError::StaleHandle(_))
        ));
        // The compacted journal still recovers the same state.
        let j = store.db().journal().unwrap();
        assert_eq!(MetadataDb::recover(j).unwrap().dump(), dump);
    }

    #[test]
    fn boxed_clone_of_persistent_store_is_detached() {
        let dir = temp_dir("clone");
        let mut store = PersistentStore::create(&dir, seed_db()).unwrap();
        mutate(&mut store);
        let mut fork = store.boxed_clone();
        assert!(fork.path().is_none(), "clone must not share the tail file");
        fork.begin_planning(WorkDays::new(5.0));
        assert_ne!(fork.db().dump(), store.db().dump());
        fs::remove_dir_all(&dir).unwrap();
    }
}
