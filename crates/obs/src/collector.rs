//! The global collector: per-thread buffers behind a single runtime
//! on/off switch, RAII span guards, and exclusive tracing sessions.
//!
//! Design constraints (see DESIGN.md §9):
//!
//! * **Free when off.** [`Collector::is_enabled`] is one relaxed atomic
//!   load; the `span!`/`event!` macros check it *before* building any
//!   argument vectors, so disabled instrumentation costs a predictable
//!   branch. The `compile-off` cargo feature turns the check into a
//!   constant `false` the optimizer strips entirely.
//! * **No contention when on.** Each thread records into its own
//!   buffer (a `thread_local` slot registered once with the global
//!   registry); the only cross-thread synchronization on the hot path
//!   is the thread's own uncontended mutex.
//! * **Deterministic merge.** [`Collector::drain`] orders thread
//!   buffers by `(lane, registration index)`. Threads doing
//!   deterministic work under explicit lanes (e.g. Monte Carlo chunk
//!   workers calling [`Collector::set_lane`]) therefore produce the
//!   same [`Trace`] regardless of OS scheduling or thread count.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::trace::{Arg, ThreadTrace, Trace, TraceItem};

/// Runtime switch. Relaxed is sufficient: enabling/disabling only
/// needs to become visible eventually, and [`Collector::drain`] locks
/// every slot mutex, which orders buffered items with the drain.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Epoch for the monotonic timestamp domain, fixed at first use so all
/// `mono_ns` values share one origin.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// All thread slots ever registered, in registration order. Slots are
/// kept alive by the `Arc` even after their thread exits so a drain
/// never loses items recorded by short-lived worker threads.
static REGISTRY: Mutex<Vec<Arc<ThreadSlot>>> = Mutex::new(Vec::new());

/// Serializes tracing sessions (see [`Collector::session`]).
static SESSION: Mutex<()> = Mutex::new(());

/// Lane value meaning "never explicitly assigned": such threads merge
/// after all explicitly-laned threads, in registration order.
const UNASSIGNED_LANE: u64 = u64::MAX;

/// One thread's recording state.
struct ThreadSlot {
    /// Position in the registry — the merge tiebreak within a lane.
    reg: usize,
    /// Deterministic merge key ([`Collector::set_lane`]).
    lane: AtomicU64,
    /// Simulated clock last published on this thread (milli-days;
    /// `i64::MIN` = none).
    sim_md: AtomicI64,
    /// The buffer. Uncontended in steady state — only the owning
    /// thread and a drain ever lock it.
    items: Mutex<Vec<TraceItem>>,
}

const NO_SIM: i64 = i64::MIN;

thread_local! {
    static SLOT: Arc<ThreadSlot> = register_slot();
}

fn register_slot() -> Arc<ThreadSlot> {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let slot = Arc::new(ThreadSlot {
        reg: reg.len(),
        lane: AtomicU64::new(UNASSIGNED_LANE),
        sim_md: AtomicI64::new(NO_SIM),
        items: Mutex::new(Vec::new()),
    });
    reg.push(Arc::clone(&slot));
    slot
}

fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn with_slot<R>(f: impl FnOnce(&ThreadSlot) -> R) -> R {
    SLOT.with(|s| f(s))
}

fn push_item(item: TraceItem) {
    with_slot(|slot| {
        slot.items
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(item);
    });
}

/// The process-wide trace collector. All methods are associated
/// functions — there is exactly one collector per process.
pub struct Collector;

impl Collector {
    /// Whether tracing is currently recording. One relaxed atomic load
    /// (a constant `false` under the `compile-off` feature); the
    /// macros call this before doing any other work.
    #[inline]
    pub fn is_enabled() -> bool {
        #[cfg(feature = "compile-off")]
        {
            false
        }
        #[cfg(not(feature = "compile-off"))]
        {
            ENABLED.load(Ordering::Relaxed)
        }
    }

    /// Begins an **exclusive** tracing session: enables recording and
    /// returns a guard whose [`finish`](Session::finish) disables it
    /// and drains the trace. Sessions serialize on a process-wide lock
    /// so concurrent tests (or a test and a CLI run in the same
    /// process) never pollute each other's traces; any items left over
    /// from a panicked predecessor are discarded at session start.
    pub fn session() -> Session {
        let guard = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        // Discard leftovers from sessions that never drained.
        drop(Self::drain_items());
        // The thread opening the session is the orchestrator: lane 0
        // by convention (workers take 1+; see `set_lane`).
        Self::set_lane(0);
        ENABLED.store(true, Ordering::Relaxed);
        Session {
            _guard: Some(guard),
        }
    }

    /// Stops recording and removes every buffered item, merged
    /// deterministically by `(lane, registration order)`. Threads that
    /// never called [`set_lane`](Collector::set_lane) merge last.
    pub fn drain() -> Trace {
        ENABLED.store(false, Ordering::Relaxed);
        Self::drain_items()
    }

    fn drain_items() -> Trace {
        let slots: Vec<Arc<ThreadSlot>> = {
            let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            reg.iter().map(Arc::clone).collect()
        };
        let mut threads: Vec<(u64, usize, Vec<TraceItem>)> = Vec::new();
        for slot in &slots {
            let items: Vec<TraceItem> = {
                let mut buf = slot.items.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *buf)
            };
            if items.is_empty() {
                continue;
            }
            threads.push((slot.lane.load(Ordering::Relaxed), slot.reg, items));
        }
        threads.sort_by_key(|(lane, reg, _)| (*lane, *reg));
        Trace {
            threads: threads
                .into_iter()
                .map(|(lane, _, items)| ThreadTrace { lane, items })
                .collect(),
        }
    }

    /// Assigns this thread's **lane** — its deterministic merge key.
    /// Worker pools should set a lane derived from the work partition
    /// (e.g. the Monte Carlo chunk index), not the OS thread, so the
    /// merged trace is invariant to scheduling and thread count.
    pub fn set_lane(lane: u64) {
        with_slot(|slot| slot.lane.store(lane, Ordering::Relaxed));
    }

    /// Publishes the simulated clock (milli-days) for this thread.
    /// Subsequent items carry it as their `sim_md` timestamp.
    pub fn set_sim_md(md: i64) {
        with_slot(|slot| slot.sim_md.store(md, Ordering::Relaxed));
    }

    /// Publishes the simulated clock from fractional WorkDays
    /// (converted to milli-days, the metadata crate's convention).
    pub fn set_sim_days(days: f64) {
        Self::set_sim_md((days * 1000.0).round() as i64);
    }

    /// Records a point event. Prefer the
    /// [`event!`](crate::event) macro, which skips argument
    /// construction when tracing is off.
    pub fn event(name: &'static str, args: Vec<Arg>) {
        if !Self::is_enabled() {
            return;
        }
        let sim_md = current_sim_md();
        push_item(TraceItem::Event {
            name,
            mono_ns: now_ns(),
            sim_md,
            args,
        });
    }
}

fn current_sim_md() -> Option<i64> {
    with_slot(|slot| {
        let md = slot.sim_md.load(Ordering::Relaxed);
        (md != NO_SIM).then_some(md)
    })
}

/// An exclusive tracing session (see [`Collector::session`]).
///
/// Dropping the session without calling [`finish`](Session::finish)
/// disables recording but leaves buffered items for the next session
/// to discard — fine for panicking tests.
pub struct Session {
    _guard: Option<MutexGuard<'static, ()>>,
}

impl Session {
    /// Ends the session: disables recording and returns the merged
    /// trace. The drain happens while the session lock is still held,
    /// so a successor session can never observe this session's items.
    pub fn finish(self) -> Trace {
        let trace = Collector::drain();
        drop(self); // releases the session lock (Drop re-disables, harmlessly)
        trace
    }

    /// Drains the trace **without** ending the session — used by
    /// overhead benches that measure export cost in a loop. Recording
    /// stays enabled.
    pub fn drain_partial(&self) -> Trace {
        Collector::drain_items()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// RAII guard for one span: records `Enter` on creation (when active)
/// and the matching `Exit` on drop. Create via the
/// [`span!`](crate::span) macro.
#[must_use = "a span guard measures the scope it lives in; dropping it immediately closes the span"]
pub struct SpanGuard {
    active: bool,
    /// Annotations recorded during the span, attached to the exit.
    exit_args: Vec<Arg>,
}

impl SpanGuard {
    /// Opens a span now. Callers should check
    /// [`Collector::is_enabled`] first (the macro does) — an enter
    /// recorded here is unconditional.
    pub fn enter(name: &'static str, args: Vec<Arg>) -> Self {
        let sim_md = current_sim_md();
        push_item(TraceItem::Enter {
            name,
            mono_ns: now_ns(),
            sim_md,
            args,
        });
        SpanGuard {
            active: true,
            exit_args: Vec::new(),
        }
    }

    /// A no-op guard for the disabled path.
    pub fn inactive() -> Self {
        SpanGuard {
            active: false,
            exit_args: Vec::new(),
        }
    }

    /// Whether this guard records anything.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Attaches an annotation to the span's exit — for results only
    /// known at the end (e.g. a dirty-set size computed inside the
    /// span). No-op on inactive guards.
    pub fn record(&mut self, key: &'static str, value: impl Into<crate::trace::ArgValue>) {
        if self.active {
            self.exit_args.push(Arg::new(key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let sim_md = current_sim_md();
        push_item(TraceItem::Exit {
            mono_ns: now_ns(),
            sim_md,
            args: std::mem::take(&mut self.exit_args),
        });
    }
}

#[cfg(all(test, not(feature = "compile-off")))]
mod tests {
    use super::*;

    #[test]
    fn session_records_spans_events_and_sim_time() {
        let session = Collector::session();
        Collector::set_lane(0);
        Collector::set_sim_days(1.5);
        {
            let mut g = SpanGuard::enter("outer", vec![Arg::new("k", 7u64)]);
            Collector::event("ping", Vec::new());
            g.record("result", true);
        }
        let trace = session.finish();
        trace.validate().unwrap();
        assert_eq!(trace.span_count(), 1);
        assert_eq!(trace.event_count(), 1);
        let s = trace.first_span("outer").unwrap();
        assert_eq!(s.sim_start_md, Some(1500));
        assert_eq!(s.arg("k"), Some(&crate::trace::ArgValue::U64(7)));
        assert_eq!(s.arg("result"), Some(&crate::trace::ArgValue::Bool(true)));
        assert!(trace.has_event("ping"));
        // Recording is off again and the buffers are empty.
        assert!(!Collector::is_enabled());
        let empty = Collector::session().finish();
        assert!(empty.is_empty());
    }

    #[test]
    fn disabled_records_nothing() {
        // No session: is_enabled is false, guards are inert.
        assert!(!Collector::is_enabled());
        Collector::event("dropped", Vec::new());
        let g = SpanGuard::inactive();
        assert!(!g.is_active());
        drop(g);
        let trace = Collector::session().finish();
        assert!(trace.is_empty(), "leftovers: {trace:?}");
    }

    #[test]
    fn threads_merge_by_lane_not_schedule() {
        let session = Collector::session();
        Collector::set_lane(100); // main thread merges last
        std::thread::scope(|scope| {
            for lane in (0..4u64).rev() {
                scope.spawn(move || {
                    Collector::set_lane(lane);
                    let _g = SpanGuard::enter("work", vec![Arg::new("lane", lane)]);
                    Collector::event("tick", Vec::new());
                });
            }
        });
        let trace = session.finish();
        trace.validate().unwrap();
        let lanes: Vec<u64> = trace.threads.iter().map(|t| t.lane).collect();
        assert_eq!(lanes, vec![0, 1, 2, 3]);
        assert_eq!(trace.span_count(), 4);
    }
}
