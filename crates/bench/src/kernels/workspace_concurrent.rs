//! B12 — concurrent workspace sessions: mixed plan/replan/query
//! traffic against a multi-project [`hercules::Workspace`] at 1, 2, 4,
//! and 8 threads.
//!
//! What this kernel measures is **lock granularity**, not CPU
//! parallelism: every write session holds its project's exclusive lock
//! across a fixed simulated tool/commit latency (the position a real
//! session is in while a tool runs or a journal append reaches disk).
//! Under the workspace's RwLock-per-project sharding, sessions against
//! *different* projects overlap those waits, so total throughput rises
//! with the thread count even on a single hardware core; a
//! coarse-grained design (one lock around the whole store) would
//! serialize the waits and show flat throughput. The acceptance gate —
//! ≥2× ops/s from 1 → 4 threads, checked by
//! `tests/workspace_scaling.rs` and the `ws` CI stage — is therefore a
//! direct regression test on the sharding, portable to single-core
//! containers.
//!
//! Workload shape per batch: 8 projects × `OPS_PER_PROJECT` operations,
//! partitioned over the threads (each project is owned by exactly one
//! thread per batch, as in real per-project sessions). Three of every
//! four operations are incremental replans under the write lock + the
//! simulated latency; every fourth is a status rollup under the shared
//! read lock. Total work is identical at every thread count, so the
//! per-element medians are directly comparable.

use std::sync::Arc;
use std::time::Duration;

use harness::bench::Record;
use hercules::Workspace;
use schema::examples;
use simtools::workload::Team;
use simtools::ToolLibrary;

/// Projects in the workspace — also the maximum thread count.
pub const PROJECTS: usize = 8;

/// Simulated per-write tool/commit latency held under the project's
/// exclusive lock. Long enough to dominate the CPU cost of an
/// incremental replan even in unoptimized builds (so the scaling gate
/// measures lock granularity, not build profile), short enough to keep
/// the full sampling plan under a few seconds.
pub const SESSION_LATENCY: Duration = Duration::from_millis(1);

/// The thread counts the kernel sweeps.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn project_name(k: usize) -> String {
    format!("p{k}")
}

/// A workspace with [`PROJECTS`] planned ASIC-flow projects, ready for
/// replan/query traffic.
pub fn seeded_workspace() -> Arc<Workspace> {
    let ws = Arc::new(Workspace::in_memory());
    for k in 0..PROJECTS {
        let project = ws
            .create_project(
                &project_name(k),
                examples::asic_flow(),
                ToolLibrary::standard(),
                Team::of_size(3),
                k as u64,
            )
            .expect("fresh project");
        project
            .update(|h| h.plan("signoff_report"))
            .expect("initial plan");
    }
    ws
}

/// Runs one batch: `PROJECTS × ops_per_project` operations spread over
/// `threads` workers, each project owned by exactly one worker.
pub fn run_batch(ws: &Arc<Workspace>, threads: usize, ops_per_project: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let ws = Arc::clone(ws);
            scope.spawn(move || {
                for k in (t..PROJECTS).step_by(threads) {
                    let project = ws.project(&project_name(k)).expect("known project");
                    for op in 0..ops_per_project {
                        if op % 4 == 3 {
                            // Shared-lock query: status rollup.
                            let complete = project.read(|h| h.status().complete_count());
                            std::hint::black_box(complete);
                        } else {
                            // Exclusive write: incremental replan, then
                            // the simulated tool/commit latency *while
                            // still holding the session's lock*.
                            project.update(|h| {
                                h.replan("signoff_report").expect("replan");
                                std::thread::sleep(SESSION_LATENCY);
                            });
                        }
                    }
                }
            });
        }
    });
}

/// Runs the kernel; `quick` selects the smoke-test plan and batch size.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("workspace_concurrent", quick);
    // Identical batch in both modes (quick only trims samples):
    // bench_compare matches on names, so `threads/N` must mean the
    // same workload in the committed baseline and a quick fresh run.
    let ops_per_project = 12;
    let total_ops = (PROJECTS * ops_per_project) as u64;
    let ws = seeded_workspace();
    for threads in THREAD_COUNTS {
        suite.bench(&format!("threads/{threads}"), Some(total_ops), || {
            run_batch(&ws, threads, ops_per_project);
        });
    }
    suite.into_records()
}
