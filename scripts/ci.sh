#!/usr/bin/env bash
# Offline CI pipeline: the same staged gates locally and in
# .github/workflows/ci.yml. Every stage runs with --offline — the
# workspace has no registry dependencies, so a network-less container
# must pass end-to-end.
#
# Stages (in order):
#   fmt     cargo fmt --all --check
#   clippy  cargo clippy, all targets, warnings are errors
#   check   scripts/check.sh (release build + full test suite + bench smoke)
#   golden  committed paper artifacts still match the binaries
#   chaos   herc chaos over the fixed seed set (failure semantics)
#   obs     tracing gate: obs property + scenario tests, herc trace
#           exports of fig8 + chaos validate as JSON, the end-to-end
#           trace-id correlation suite, the B16 always-on flight
#           recorder budget, and CLI-path checks that a traced oneshot
#           request lands in the access log + flight dump and that
#           /metrics?format=prom exposes the labeled series
#   ws      workspace kernel gate: threaded stress + compaction
#           property + store conformance + B12 scaling tests, then the
#           end-to-end create->plan->crash->recover->gc->query script
#           (now ending in a corrupt->fsck->repair->re-serve leg)
#   fsck    durability gate: the 64-seed fault-injection sweep over
#           FaultVfs, the corruption-corpus goldens in
#           artifacts/corrupt_roots/, and the B15 checksum-overhead
#           gate (v2 framing <= 1.2x v1 on append and open)
#   serve   workspace-server gate: differential transport conformance,
#           protocol fuzzer, 64-seed chaos-under-load sweep, herc
#           serve CLI coverage, B13 scaling/coalescing floor, and a
#           quick B13 latency-percentile artifact
#   scale   data-oriented CPM gate: B14 shape tests (subquadratic
#           full pass, >=100x incremental advantage, thread-count
#           invariance) plus a quick 10^5-activity B14 artifact
#   exec    policy-engine gate: the cross-policy property suite
#           (outcome-set invariance, replay ≡ live for every policy,
#           uniform-cluster equivalence), a per-policy chaos leg
#           pinning each policy over the shared seed set, and the B17
#           acceptance tests (schedule-aware policies beat Fifo's
#           simulated makespan; Fifo on one worker stays within 1.05x
#           of the serial reference wall-clock)
#   bench   bench_compare: fresh quick run vs committed BENCH_schedflow.json
#   doc     rustdoc builds cleanly
#
# Usage:
#   scripts/ci.sh                 run every stage, fail fast
#   scripts/ci.sh --stage NAME    run a single stage (repeatable)
#   scripts/ci.sh --list          list stage names
#
# The run ends with a per-stage timing summary; exit status is
# non-zero if any executed stage failed.

set -uo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES=(fmt clippy check golden chaos obs ws fsck serve scale exec bench doc)

usage() {
    echo "usage: scripts/ci.sh [--stage NAME]... [--list]" >&2
    echo "stages: ${ALL_STAGES[*]}" >&2
}

declare -a SELECTED=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --stage)
            [[ $# -ge 2 ]] || { usage; exit 2; }
            SELECTED+=("$2")
            shift 2
            ;;
        --list)
            printf '%s\n' "${ALL_STAGES[@]}"
            exit 0
            ;;
        --help|-h)
            usage
            exit 0
            ;;
        *)
            echo "ci.sh: unknown argument: $1" >&2
            usage
            exit 2
            ;;
    esac
done
if [[ ${#SELECTED[@]} -eq 0 ]]; then
    SELECTED=("${ALL_STAGES[@]}")
fi
for s in "${SELECTED[@]}"; do
    case " ${ALL_STAGES[*]} " in
        *" $s "*) ;;
        *) echo "ci.sh: unknown stage: $s" >&2; usage; exit 2 ;;
    esac
done

echo "== toolchain =="
rustc --version
cargo --version

stage_fmt() {
    cargo fmt --all -- --check
}

stage_clippy() {
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

stage_check() {
    scripts/check.sh
}

stage_golden() {
    # The golden-file diff: committed artifacts vs today's binaries.
    cargo test -q --offline --release -p bench --test golden
}

stage_chaos() {
    # Failure-semantics gate: the same fixed seed set the chaos
    # property suite sweeps (tests/chaos_properties.rs), replayed via
    # the interactive tool so a red stage maps 1:1 onto a local
    # `herc chaos --seed N` repro. Release mode keeps it bounded.
    cargo run -q --release --offline -p dac95-schedflow --bin herc -- \
        chaos --seed 0 --count 64
}

stage_obs() {
    # Tracing gate: the obs property suite (well-formed traces,
    # deterministic merge, lane ordering), the scenario/golden tests,
    # and an end-to-end `herc trace` of both named scenarios — the
    # exact command a user runs — with the exports checked as JSON.
    cargo test -q --offline --release -p dac95-schedflow \
        --test obs_properties --test trace_scenarios || return 1
    # Live-telemetry correlation over real TCP: one trace id must show
    # up in the echoed header, the JSONL access log, the filtered
    # flight dump, and the labeled metrics (tests/serve_telemetry.rs).
    cargo test -q --offline --release -p dac95-schedflow \
        --test serve_telemetry || return 1
    # B16 acceptance: the always-on flight recorder stays <= 1.15x on
    # the B2 plan and B13 serve bodies — a tax, not a mode.
    cargo test -q --offline --release -p bench \
        --test obs_live || return 1
    mkdir -p target/traces
    # The same correlation through the user-facing CLI: a oneshot
    # request with a known trace id must land in the access log and be
    # filterable back out of the flight dump. Both files ship in the
    # `traces` CI artifact.
    rm -f target/traces/ci_access.jsonl
    cargo run -q --release --offline -p dac95-schedflow --bin herc -- \
        serve :memory: --access-log target/traces/ci_access.jsonl \
        --trace-id deadbeef \
        --oneshot GET '/debug/flight?trace=deadbeef' \
        > target/traces/ci_flight.json || return 1
    grep -q '"trace":"00000000deadbeef"' target/traces/ci_flight.json || {
        echo "obs stage: flight dump lost the request's trace id" >&2
        return 1
    }
    grep -q '"trace":"00000000deadbeef"' target/traces/ci_access.jsonl || {
        echo "obs stage: access log lost the request's trace id" >&2
        return 1
    }
    # Prometheus exposition through the CLI path: the scrape must carry
    # the typed, labeled series `herc top` and a real scraper consume
    # (the telemetry test above runs the full grammar validator).
    cargo run -q --release --offline -p dac95-schedflow --bin herc -- \
        serve :memory: --oneshot GET '/metrics?format=prom' \
        > target/traces/ci_metrics.prom || return 1
    grep -q '^# TYPE serve_requests counter$' target/traces/ci_metrics.prom &&
        grep -q '^serve_requests{endpoint="metrics"} 1$' \
            target/traces/ci_metrics.prom || {
        echo "obs stage: /metrics?format=prom lost the labeled series" >&2
        return 1
    }
    cargo run -q --release --offline -p dac95-schedflow --bin herc -- \
        trace fig8 --logical --out target/traces/fig8_trace.json || return 1
    cargo run -q --release --offline -p dac95-schedflow --bin herc -- \
        trace chaos --out target/traces/chaos_trace.json || return 1
    # The committed golden is the same logical-timebase fig8 export:
    # the CLI must reproduce it byte-for-byte.
    cmp artifacts/fig8_trace.json target/traces/fig8_trace.json || {
        echo "obs stage: herc trace fig8 diverges from artifacts/fig8_trace.json" >&2
        return 1
    }
    # Exports must load as JSON (chrome://tracing / Perfetto input).
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool target/traces/fig8_trace.json >/dev/null || return 1
        python3 -m json.tool target/traces/chaos_trace.json >/dev/null || return 1
    else
        echo "obs stage: python3 not found; skipping external JSON parse check" >&2
    fi
}

stage_ws() {
    # Workspace-kernel gate: interleaved multi-session determinism,
    # snapshot + tail ≡ full replay on chaos seeds, both store
    # backends through the shared conformance suite, and the B12
    # lock-granularity scaling floor (≥2x throughput 1 -> 4 threads).
    cargo test -q --offline --release -p metadata \
        --test store_conformance || return 1
    cargo test -q --offline --release -p hercules \
        --test workspace_stress --test compaction_property || return 1
    cargo test -q --offline --release -p bench \
        --test workspace_scaling || return 1
    # End-to-end lifecycle through the user-facing CLI, torn-tail
    # crash included.
    scripts/ws_e2e.sh
}

stage_fsck() {
    # Durability gate. The chaos sweep drives 64 fault-seeded sessions
    # (ENOSPC, EIO, short writes, lying fsync, crash truncation)
    # through the persistent store and asserts it either serves an
    # acknowledged state or reports typed corruption that fsck can
    # repair — never silently wrong, never a panic. The corpus goldens
    # pin the scrub verdicts on committed damaged roots; the B15 gate
    # holds checksummed framing to <= 1.2x the un-checksummed paths.
    cargo test -q --offline --release -p metadata \
        --test fault_chaos || return 1
    cargo test -q --offline --release -p dac95-schedflow \
        --test fsck_corpus || return 1
    cargo test -q --offline --release -p bench \
        --test store_durability
}

stage_serve() {
    # Workspace-server gate: the server must be a pure, robust, scaling
    # transport over the kernel. Differential conformance (HTTP ≡
    # direct Workspace calls, byte-identical), the seeded protocol
    # fuzzer with shrinking (malformed request lines, bad auth,
    # truncated bodies, header floods, mid-request disconnects — never
    # a panic), the 64-seed chaos-under-load sweep (PR-3 invariants +
    # generational-ID safety under concurrent clients, crash -> recover
    # -> re-serve), and `herc serve` CLI coverage.
    cargo test -q --offline --release -p serve || return 1
    cargo test -q --offline --release -p dac95-schedflow \
        --test serve_differential --test serve_chaos --test cli || return 1
    # B13 acceptance floor: ≥2x request throughput from 1 -> 4 pool
    # workers, and coalesced replan kernel passes < client requests.
    cargo test -q --offline --release -p bench \
        --test serve_scaling || return 1
    # Quick B13 rerun: the latency-percentile report CI uploads as an
    # artifact (p50/p95/p99 per worker count).
    cargo run -q --release --offline -p bench --bin benchmarks -- \
        serve_load --quick --out target/serve_latency.json
}

stage_scale() {
    # Data-oriented CPM gate: the B14 acceptance tests assert the
    # *shape* of the flat core with host-independent ratios — the full
    # pass scales subquadratically 10^4 -> 10^5, a slack-absorbed leaf
    # slip stays >=100x faster than a full recompute with an O(1)
    # dirty cone, and the level-parallel passes are bit-identical for
    # any worker count. Release mode: debug builds cross-check every
    # incremental update against a full pass, which is the very cost
    # the gate measures.
    cargo test -q --offline --release -p bench \
        --test cpm_scale || return 1
    # Quick B14 rerun at 10^5: the scale report CI uploads as an
    # artifact (full / full_serial / inc_leaf medians).
    cargo run -q --release --offline -p bench --bin benchmarks -- \
        cpm_scale --quick --out target/cpm_scale.json
}

stage_exec() {
    # Policy-engine gate. The property suite sweeps seeded scenarios
    # across every built-in policy: identical outcome sets, journal
    # replay ≡ live under explicit clusters, and uniform-cluster ≡
    # implicit equivalence. The chaos legs then pin each policy over
    # the same fixed seed set the chaos stage sweeps, exercising the
    # PR-3 invariants per policy through the user-facing CLI.
    cargo test -q --offline --release -p dac95-schedflow \
        --test policy_properties || return 1
    local policy
    for policy in fifo minslack heft worksteal; do
        cargo run -q --release --offline -p dac95-schedflow --bin herc -- \
            chaos --seed 0 --count 16 --policy "$policy" || return 1
    done
    # B17 acceptance: MinSlack/HEFT beat Fifo's simulated makespan on
    # the contended heterogeneous scenario, and Fifo on one implicit
    # worker stays within 1.05x of the serial reference wall-clock.
    cargo test -q --offline --release -p bench \
        --test exec_policies
}

stage_bench() {
    # Regression gate: fresh quick run vs the committed baseline.
    # Release mode — the baseline was measured in release. Shared CI
    # hosts show multi-x timing swings between runs, so a transient
    # all-benches-slow verdict gets up to two retries; a genuine code
    # regression fails all three attempts identically.
    local attempt
    for attempt in 1 2 3; do
        if cargo run -q --release --offline -p bench --bin bench_compare; then
            return 0
        fi
        echo "bench stage: attempt $attempt failed; retrying in case of host timing noise" >&2
        sleep 2
    done
    return 1
}

stage_doc() {
    cargo doc -q --offline --workspace --no-deps
}

declare -a RAN=() STATUS=() SECS=()
failed=0
for stage in "${SELECTED[@]}"; do
    if [[ $failed -ne 0 ]]; then
        RAN+=("$stage"); STATUS+=(skip); SECS+=("-")
        continue
    fi
    echo
    echo "== stage: $stage =="
    t0=$SECONDS
    if "stage_$stage"; then
        RAN+=("$stage"); STATUS+=(pass); SECS+=($((SECONDS - t0)))
    else
        RAN+=("$stage"); STATUS+=(FAIL); SECS+=($((SECONDS - t0)))
        failed=1
    fi
done

echo
echo "== ci.sh summary =="
printf '%-10s %-6s %8s\n' stage status seconds
for i in "${!RAN[@]}"; do
    printf '%-10s %-6s %8s\n' "${RAN[$i]}" "${STATUS[$i]}" "${SECS[$i]}"
done
if [[ $failed -ne 0 ]]; then
    echo "ci.sh: FAILED"
    exit 1
fi
echo "ci.sh: all stages green"
