use std::error::Error;
use std::fmt;

use crate::dag::NodeId;

/// Errors produced by graph construction and analysis.
///
/// Flow models must be acyclic: Hercules plans a schedule by walking a
/// task tree "from primary inputs to outputs", which is only well-defined
/// on a DAG. [`Dag::add_edge`](crate::Dag::add_edge) therefore rejects
/// edges that would close a cycle instead of deferring the failure to
/// traversal time.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Adding the edge `from -> to` would create a cycle.
    WouldCycle {
        /// Source of the rejected edge.
        from: NodeId,
        /// Target of the rejected edge.
        to: NodeId,
    },
    /// A node id did not refer to a node of this graph.
    UnknownNode(NodeId),
    /// A self-loop `v -> v` was requested.
    SelfLoop(NodeId),
    /// A cycle was detected during an analysis that requires a DAG.
    ///
    /// This can only occur on graphs built through unchecked paths
    /// (e.g. deserialized externally); graphs built through
    /// [`Dag::add_edge`](crate::Dag::add_edge) are acyclic by
    /// construction.
    CycleDetected {
        /// A node known to participate in the cycle.
        on: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::WouldCycle { from, to } => {
                write!(f, "edge {from} -> {to} would create a cycle")
            }
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            GraphError::SelfLoop(id) => write!(f, "self-loop on node {id} is not allowed"),
            GraphError::CycleDetected { on } => {
                write!(f, "cycle detected through node {on}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = GraphError::WouldCycle {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
        };
        let s = e.to_string();
        assert!(s.starts_with("edge"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
