//! The B16 acceptance gate for the always-on flight recorder.
//!
//! A live server leaves the recorder enabled permanently, so its cost
//! must be a tax, not a mode: the flight-on medians for the B2 plan
//! body and the B13 serve body (`Api::handle`, no TCP) must stay
//! **≤ 1.15×** their flight-off medians. Host-independent ratios only
//! — no wall-clock floors.

#[cfg(not(debug_assertions))]
use bench::kernels::obs_live::seeded_api;
use bench::kernels::obs_live::FLIGHT_CAP;
use bench::pipeline_manager;

/// Functional half of the gate, cheap enough for debug builds: the
/// recorder must not change results, and the ring must actually hold
/// the spans the timed variants record.
#[test]
fn flight_recording_preserves_results_and_captures_spans() {
    let target = "d50";
    obs::Collector::disable_flight();
    let finish_off = pipeline_manager(50, 4, 1)
        .plan(target)
        .expect("plannable")
        .project_finish();
    obs::Collector::enable_flight(FLIGHT_CAP);
    obs::Collector::flight_clear();
    let finish_on = pipeline_manager(50, 4, 1)
        .plan(target)
        .expect("plannable")
        .project_finish();
    assert_eq!(finish_off, finish_on, "recording must not change planning");
    let dump = obs::Collector::flight_dump();
    assert!(
        dump.threads
            .iter()
            .flat_map(|t| &t.records)
            .any(|r| r.name == "hercules.plan"),
        "the ring should hold the plan span ({} records)",
        dump.total_records()
    );
    obs::Collector::disable_flight();
    obs::Collector::flight_clear();
}

/// Min wall-seconds of `f` over `tries` runs — min, not mean, to shrug
/// off scheduler noise on loaded CI hosts.
#[cfg(not(debug_assertions))]
fn best_secs<R>(tries: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..tries)
        .map(|_| {
            let t0 = std::time::Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Plan-body seconds for one try: pool construction is untimed, the
/// planning loop is.
#[cfg(not(debug_assertions))]
fn plan_pool_secs(calls: usize) -> f64 {
    let mut pool: Vec<_> = (0..calls).map(|_| pipeline_manager(50, 4, 1)).collect();
    let t0 = std::time::Instant::now();
    for h in &mut pool {
        std::hint::black_box(h.plan("d50").expect("plannable").project_finish());
    }
    t0.elapsed().as_secs_f64()
}

/// Timing gates only make sense on optimized builds.
#[cfg(not(debug_assertions))]
#[test]
fn flight_on_stays_within_budget() {
    const TRIES: usize = 7;
    const PLAN_CALLS: usize = 64;
    const SERVE_CALLS: usize = 512;
    // The B11 budget for exclusive sessions is 2×; the always-on ring
    // must be far cheaper, because nobody ever turns it off.
    const BUDGET: f64 = 1.15;

    // -- B2 plan body -----------------------------------------------------
    obs::Collector::disable_flight();
    plan_pool_secs(PLAN_CALLS); // warmup
    let plan_off = (0..TRIES)
        .map(|_| plan_pool_secs(PLAN_CALLS))
        .fold(f64::INFINITY, f64::min);
    obs::Collector::enable_flight(FLIGHT_CAP);
    plan_pool_secs(PLAN_CALLS); // warmup (ring allocation happens here)
    let plan_on = (0..TRIES)
        .map(|_| plan_pool_secs(PLAN_CALLS))
        .fold(f64::INFINITY, f64::min);
    obs::Collector::disable_flight();
    obs::Collector::flight_clear();
    let plan_ratio = plan_on / plan_off;
    eprintln!(
        "obs_live: plan body off {:.3} ms, on {:.3} ms, ratio {plan_ratio:.3}",
        plan_off * 1e3,
        plan_on * 1e3
    );

    // -- B13 serve body ---------------------------------------------------
    let api = seeded_api();
    let raw = b"GET /projects/p0/status HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n";
    let req = match serve::http::read_request(&mut std::io::Cursor::new(raw.to_vec())) {
        serve::http::ReadOutcome::Request(req) => req,
        other => panic!("gate request failed to parse: {other:?}"),
    };
    let drive = |n: usize| {
        for _ in 0..n {
            assert_eq!(api.handle(&req).status, 200);
        }
    };
    obs::Collector::disable_flight();
    drive(SERVE_CALLS); // warmup
    let serve_off = best_secs(TRIES, || drive(SERVE_CALLS));
    obs::Collector::enable_flight(FLIGHT_CAP);
    drive(SERVE_CALLS); // warmup
    let serve_on = best_secs(TRIES, || drive(SERVE_CALLS));
    obs::Collector::disable_flight();
    obs::Collector::flight_clear();
    let serve_ratio = serve_on / serve_off;
    eprintln!(
        "obs_live: serve body off {:.3} ms, on {:.3} ms, ratio {serve_ratio:.3}",
        serve_off * 1e3,
        serve_on * 1e3
    );

    assert!(
        plan_ratio <= BUDGET,
        "flight recorder costs {plan_ratio:.3}x on the plan body \
         (budget {BUDGET}x); the ring write has left the hot-path noise floor"
    );
    assert!(
        serve_ratio <= BUDGET,
        "flight recorder costs {serve_ratio:.3}x on the serve body \
         (budget {BUDGET}x); the ring write has left the hot-path noise floor"
    );
}
