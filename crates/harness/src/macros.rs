//! The `props! {}` macro layer: an API-compatible-enough replacement
//! for `proptest! {}` so the workspace's property tests port
//! mechanically, plus `prop_assert!`-family assertion macros.

/// Declares `#[test]` functions whose arguments are drawn from
/// strategies, checked by [`crate::runner::check`].
///
/// ```
/// harness::props! {
///     config(cases = 24);
///
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         harness::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Without a `config(...)` header the default case count applies
/// (overridable via `HARNESS_CASES`).
#[macro_export]
macro_rules! props {
    (config(cases = $cases:expr); $($rest:tt)*) => {
        $crate::props!(@impl ($cases) $($rest)*);
    };
    (@impl ($cases:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __strategy = ($($strat,)*);
                let __config = $crate::runner::Config {
                    cases: $cases,
                    ..$crate::runner::Config::default()
                };
                $crate::runner::check(
                    stringify!($name),
                    &__config,
                    &__strategy,
                    |($($arg,)*)| $body,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::props!(@impl ($crate::runner::Config::default().cases) $($rest)*);
    };
}

/// Asserts a condition inside a property; failure triggers shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// `assert_eq!` for properties; failure triggers shrinking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
}

/// `assert_ne!` for properties; failure triggers shrinking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne failed: {} == {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Discards the current case (not a failure) when the precondition
/// does not hold — the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            ::std::panic::panic_any($crate::runner::AssumeReject);
        }
    };
}
