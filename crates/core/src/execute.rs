use std::collections::HashMap;

use metadata::EntityInstanceId;
use schedule::WorkDays;
use simtools::ToolInvocation;

use crate::error::HerculesError;
use crate::manager::Hercules;

/// Hard cap on iterations per activity, so a pathological tool model
/// cannot spin forever. Real tool models converge far earlier.
const ITERATION_CAP: u32 = 16;

/// The record of executing one activity: its runs, dates, and final
/// instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityExecution {
    /// The executed activity.
    pub activity: String,
    /// The designer who ran it.
    pub assignee: String,
    /// When the first run started.
    pub started: WorkDays,
    /// When the final run finished.
    pub finished: WorkDays,
    /// How many runs (iterations) the activity needed.
    pub iterations: u32,
    /// Whether the final run met the design goals.
    pub converged: bool,
    /// The final entity instance (the one linked to the plan).
    pub final_instance: EntityInstanceId,
}

impl ActivityExecution {
    /// Elapsed activity duration (first start to final finish).
    pub fn duration(&self) -> WorkDays {
        self.finished.saturating_sub(self.started)
    }
}

/// The record of executing a task tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    target: String,
    activities: Vec<ActivityExecution>,
    finished_at: WorkDays,
}

impl ExecutionReport {
    /// The executed target.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Per-activity execution records, in dependency order.
    pub fn activities(&self) -> &[ActivityExecution] {
        &self.activities
    }

    /// The record for `activity`, if executed.
    pub fn activity(&self, name: &str) -> Option<&ActivityExecution> {
        self.activities.iter().find(|a| a.activity == name)
    }

    /// When the last activity finished (project clock afterwards).
    pub fn finished_at(&self) -> WorkDays {
        self.finished_at
    }

    /// Whether every activity converged within the iteration cap.
    pub fn all_converged(&self) -> bool {
        self.activities.iter().all(|a| a.converged)
    }

    /// Total number of tool runs across all activities.
    pub fn total_runs(&self) -> u32 {
        self.activities.iter().map(|a| a.iterations).sum()
    }
}

impl Hercules {
    /// Executes the task tree for `target`: the post-order traversal of
    /// §IV-A, this time running tools.
    ///
    /// For each activity (inputs before outputs):
    ///
    /// 1. wait for its input instances and its designer (one activity
    ///    at a time per designer — a deterministic list schedule);
    /// 2. iterate tool runs until the result converges ("a given
    ///    activity may need to be run several times before the design
    ///    goals are achieved") — every run creates a [`metadata::Run`]
    ///    and a new versioned entity instance;
    /// 3. on convergence, **link** the final instance to the activity's
    ///    current schedule instance, which is how actual dates reach
    ///    the plan (§III's link between schedule and actual flow data).
    ///
    /// Primary inputs (e.g. `stimuli`) are supplied automatically at
    /// the current clock. Activities whose current plan is already
    /// complete are skipped (their final instance is reused), so
    /// re-executing after replanning only redoes open work.
    ///
    /// # Errors
    ///
    /// * [`HerculesError::UnknownTarget`] — `target` names nothing.
    /// * [`HerculesError::Metadata`] — database integrity failure
    ///   (cannot happen through this API).
    pub fn execute(&mut self, target: &str) -> Result<ExecutionReport, HerculesError> {
        let tree = self.extract_task_tree(target)?;
        // Supply primary inputs up front.
        for class in tree.primary_inputs() {
            let designer = self.team.designer(0).to_owned();
            self.supply_primary_input(class, &designer)?;
        }
        // data_ready: class -> (time available, instance).
        let mut data_ready: HashMap<String, (WorkDays, EntityInstanceId)> = HashMap::new();
        for (class, &inst) in &self.supplied {
            data_ready.insert(
                class.clone(),
                (self.db.entity_instance(inst).created_at(), inst),
            );
        }
        // Completed activities contribute their linked instances.
        for activity in tree.activities() {
            if let Some(plan) = self.db.current_plan(activity) {
                if let Some(inst) = plan.linked_entity() {
                    let at = self.db.entity_instance(inst).created_at();
                    data_ready.insert(tree.output_of(activity).to_owned(), (at, inst));
                }
            }
        }
        let mut designer_free: HashMap<String, WorkDays> = self
            .team
            .iter()
            .map(|d| (d.to_owned(), self.clock))
            .collect();

        let mut executions = Vec::new();
        let mut finished_at = self.clock;
        for (k, activity) in tree.activities().iter().enumerate() {
            // Skip work already declared complete.
            if self
                .db
                .current_plan(activity)
                .is_some_and(|p| p.is_complete())
            {
                continue;
            }
            let assignee = self
                .db
                .current_plan(activity)
                .and_then(|p| p.assignees().first().cloned())
                .unwrap_or_else(|| self.team.assignee(k).to_owned());
            // Ready when all inputs exist.
            let mut ready = self.clock;
            let mut inputs: Vec<EntityInstanceId> = Vec::new();
            let mut input_bytes = 0u64;
            for class in tree.inputs_of(activity) {
                let (at, inst) = data_ready
                    .get(class)
                    .copied()
                    .expect("dependency order guarantees inputs exist");
                ready = ready.max(at);
                input_bytes += self
                    .db
                    .data_object(self.db.entity_instance(inst).data())
                    .size() as u64;
                inputs.push(inst);
            }
            let designer_at = designer_free.get(&assignee).copied().unwrap_or(self.clock);
            let start = ready.max(designer_at);

            // Iterate runs until convergence.
            let rule = self.schema.rule(activity).expect("tree activities exist");
            let model = self.tools.resolve(rule.tool());
            let output_class = tree.output_of(activity).to_owned();
            let mut t = start;
            let mut iterations = 0u32;
            let mut converged = false;
            let mut final_instance = None;
            let prior_runs = self.db.runs_of(activity).len() as u32;
            while iterations < ITERATION_CAP {
                iterations += 1;
                let outcome = model.invoke(&ToolInvocation {
                    input_bytes,
                    iteration: prior_runs + iterations,
                    seed: self.seed,
                });
                let run = self.db.begin_run(activity, &assignee, t)?;
                let end = t + WorkDays::new(outcome.duration_days);
                let data = self.db.store_data(
                    format!("{output_class}.v{}", prior_runs + iterations),
                    outcome.output,
                );
                let inst = self.db.finish_run(run, &output_class, data, end, &inputs)?;
                t = end;
                final_instance = Some(inst);
                if outcome.converged {
                    converged = true;
                    break;
                }
            }
            let final_instance = final_instance.expect("at least one iteration ran");
            // Designer declares completion: link plan to final result.
            if converged {
                if let Some(plan) = self.db.current_plan(activity) {
                    let sc = plan.id();
                    self.db.link_completion(sc, final_instance)?;
                }
            }
            data_ready.insert(output_class, (t, final_instance));
            designer_free.insert(assignee.clone(), t);
            if t.days() > finished_at.days() {
                finished_at = t;
            }
            executions.push(ActivityExecution {
                activity: activity.clone(),
                assignee,
                started: start,
                finished: t,
                iterations,
                converged,
                final_instance,
            });
        }
        self.clock = finished_at;
        Ok(ExecutionReport {
            target: target.to_owned(),
            activities: executions,
            finished_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn manager(seed: u64) -> Hercules {
        Hercules::new(
            examples::circuit_design(),
            ToolLibrary::standard(),
            Team::of_size(2),
            seed,
        )
    }

    #[test]
    fn execute_produces_instances_and_links() {
        let mut h = manager(42);
        h.plan("performance").unwrap();
        let report = h.execute("performance").unwrap();
        assert_eq!(report.target(), "performance");
        assert_eq!(report.activities().len(), 2);
        assert!(report.all_converged());
        // Every activity's plan is now linked to its final instance.
        for activity in ["Create", "Simulate"] {
            let plan = h.db().current_plan(activity).unwrap();
            assert!(plan.is_complete());
            let exec = report.activity(activity).unwrap();
            assert_eq!(plan.linked_entity(), Some(exec.final_instance));
        }
        // Runs recorded one per iteration.
        assert_eq!(h.db().runs().len() as u32, report.total_runs());
        assert_eq!(h.clock(), report.finished_at());
    }

    #[test]
    fn execute_without_plan_still_works() {
        let mut h = manager(42);
        let report = h.execute("performance").unwrap();
        assert!(report.all_converged());
        // No plans, so nothing to link — but instances exist.
        assert!(h.db().entity_container("performance").unwrap().len() == 1);
        assert!(h.db().current_plan("Create").is_none());
    }

    #[test]
    fn execution_respects_dependencies() {
        let mut h = manager(7);
        h.plan("performance").unwrap();
        let report = h.execute("performance").unwrap();
        let create = report.activity("Create").unwrap();
        let simulate = report.activity("Simulate").unwrap();
        assert!(simulate.started.days() >= create.finished.days() - 1e-9);
        assert!(simulate.duration().days() > 0.0);
    }

    #[test]
    fn iterations_create_versions() {
        // Scan seeds for a run where Create needs more than one
        // iteration (first-pass rate is 50%, so this is common).
        let seed = (0..50)
            .find(|&s| {
                let mut h = manager(s);
                let r = h.execute("netlist").unwrap();
                r.activity("Create").unwrap().iterations > 1
            })
            .expect("some seed iterates");
        let mut h = manager(seed);
        let report = h.execute("netlist").unwrap();
        let iters = report.activity("Create").unwrap().iterations;
        assert!(iters > 1);
        assert_eq!(
            h.db().entity_container("netlist").unwrap().len() as u32,
            iters
        );
        // The linked instance is the LAST version.
        let final_id = report.activity("Create").unwrap().final_instance;
        assert_eq!(h.db().entity_instance(final_id).version(), iters);
    }

    #[test]
    fn reexecution_skips_completed_work() {
        let mut h = manager(42);
        h.plan("performance").unwrap();
        let first = h.execute("performance").unwrap();
        let runs_before = h.db().runs().len();
        // Everything complete: executing again does nothing.
        let second = h.execute("performance").unwrap();
        assert!(second.activities().is_empty());
        assert_eq!(h.db().runs().len(), runs_before);
        let _ = first;
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let run = |seed| {
            let mut h = manager(seed);
            h.plan("performance").unwrap();
            let r = h.execute("performance").unwrap();
            (r.finished_at(), r.total_runs())
        };
        assert_eq!(run(9), run(9));
        // Different seeds generally differ in at least one aspect.
        let (f1, n1) = run(1);
        let (f2, n2) = run(2);
        assert!(f1 != f2 || n1 != n2);
    }

    #[test]
    fn actuals_flow_into_schedule_space() {
        let mut h = manager(42);
        h.plan("performance").unwrap();
        let report = h.execute("performance").unwrap();
        let exec = report.activity("Create").unwrap();
        // Metadata stores timestamps at milliday resolution, so compare
        // within that tolerance.
        let start = h.db().actual_start("Create").unwrap();
        let finish = h.db().actual_finish("Create").unwrap();
        assert!((start.days() - exec.started.days()).abs() < 1e-3);
        assert!((finish.days() - exec.finished.days()).abs() < 1e-3);
    }

    #[test]
    fn primary_inputs_supplied_automatically() {
        let mut h = manager(42);
        h.execute("performance").unwrap();
        assert_eq!(h.db().entity_container("stimuli").unwrap().len(), 1);
    }

    #[test]
    fn failure_injection_never_converging_tool() {
        // A tool that never passes: execution must stop at the
        // iteration cap, report non-convergence, and NOT link the plan.
        let mut tools = ToolLibrary::new();
        tools.add(
            simtools::ToolModel::new("netlist_editor", 1.0)
                .with_first_pass_rate(0.0)
                .with_max_iterations(u32::MAX),
        );
        tools.add(simtools::ToolModel::new("simulator", 1.0));
        let mut h = Hercules::new(examples::circuit_design(), tools, Team::of_size(1), 3);
        h.plan("netlist").unwrap();
        let report = h.execute("netlist").unwrap();
        let exec = report.activity("Create").unwrap();
        assert!(!exec.converged);
        assert!(!report.all_converged());
        assert_eq!(exec.iterations, ITERATION_CAP);
        // Every iteration still left auditable metadata...
        assert_eq!(
            h.db().entity_container("netlist").unwrap().len(),
            ITERATION_CAP as usize
        );
        // ...but the designer never declared completion.
        assert!(!h.db().current_plan("Create").unwrap().is_complete());
        assert_eq!(h.db().actual_finish("Create"), None);
    }

    #[test]
    fn failure_injection_downstream_still_runs_on_best_effort_data() {
        // Even when Create never converges, Simulate consumes the last
        // (best-effort) netlist — matching real flows, where designers
        // push on with what they have.
        let mut tools = ToolLibrary::new();
        tools.add(
            simtools::ToolModel::new("netlist_editor", 1.0)
                .with_first_pass_rate(0.0)
                .with_max_iterations(u32::MAX),
        );
        tools.add(simtools::ToolModel::new("simulator", 1.0).with_first_pass_rate(1.0));
        let mut h = Hercules::new(examples::circuit_design(), tools, Team::of_size(1), 3);
        h.plan("performance").unwrap();
        let report = h.execute("performance").unwrap();
        let simulate = report.activity("Simulate").unwrap();
        assert!(simulate.converged);
        let inputs = h
            .db()
            .entity_instance(simulate.final_instance)
            .depends_on()
            .to_vec();
        // The consumed netlist is the final (cap-th) version.
        let netlist = inputs
            .iter()
            .map(|&i| h.db().entity_instance(i))
            .find(|e| e.class() == "netlist")
            .expect("simulate consumed a netlist");
        assert_eq!(netlist.version(), ITERATION_CAP);
    }

    #[test]
    fn asic_flow_executes_end_to_end() {
        let mut h = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            11,
        );
        h.plan("signoff_report").unwrap();
        let report = h.execute("signoff_report").unwrap();
        assert_eq!(report.activities().len(), 9);
        assert!(report.all_converged());
        assert_eq!(h.db().completed_activities().len(), 9);
    }
}
