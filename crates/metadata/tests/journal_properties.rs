//! Torn-log properties of the write-ahead journal: replaying *any*
//! prefix of a journal — the on-disk state after a crash at an
//! arbitrary point — must yield a database that passes
//! [`MetadataDb::check_invariants`], and replaying the whole journal
//! must reproduce the live database byte-for-byte.

use harness::prelude::*;
use metadata::{Journal, MetadataDb};
use schedule::WorkDays;
use schema::examples;

/// An abstract operation against the circuit-schema database — the
/// same model as `db_properties`, but run with journaling enabled.
#[derive(Debug, Clone)]
enum Op {
    Plan {
        activity: usize,
        start: u16,
        duration: u16,
    },
    RunCreate {
        start: u16,
        extra: u16,
    },
    SupplyStimuli {
        at: u16,
    },
    LinkLatest {
        activity: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    one_of(vec![
        (0usize..2, any_u16(), any_u16())
            .prop_map(|(activity, start, duration)| Op::Plan {
                activity,
                start,
                duration,
            })
            .boxed(),
        (any_u16(), any_u16())
            .prop_map(|(start, extra)| Op::RunCreate { start, extra })
            .boxed(),
        any_u16().prop_map(|at| Op::SupplyStimuli { at }).boxed(),
        (0usize..2)
            .prop_map(|activity| Op::LinkLatest { activity })
            .boxed(),
    ])
}

const ACTIVITIES: [&str; 2] = ["Create", "Simulate"];

fn apply(db: &mut MetadataDb, op: &Op, clock: &mut f64) {
    match op {
        Op::Plan {
            activity,
            start,
            duration,
        } => {
            let session = db.begin_planning(WorkDays::new(*clock));
            db.plan_activity(
                session,
                ACTIVITIES[*activity],
                WorkDays::new(f64::from(*start) / 100.0),
                WorkDays::new(f64::from(*duration) / 100.0),
            )
            .expect("known activity");
        }
        Op::RunCreate { start, extra } => {
            let begin = clock.max(f64::from(*start) / 100.0);
            let run = db
                .begin_run("Create", "alice", WorkDays::new(begin))
                .expect("known activity");
            let end = begin + f64::from(*extra) / 100.0 + 0.01;
            let data = db.store_data("n.net", vec![1, 2, 3]);
            db.finish_run(run, "netlist", data, WorkDays::new(end), &[])
                .expect("valid finish");
            *clock = end;
        }
        Op::SupplyStimuli { at } => {
            let data = db.store_data("s.stim", vec![9]);
            db.supply_input(
                "stimuli",
                "bob",
                WorkDays::new(f64::from(*at) / 100.0),
                data,
            )
            .expect("known class");
        }
        Op::LinkLatest { activity } => {
            let name = ACTIVITIES[*activity];
            let Some(plan) = db.current_plan(name) else {
                return;
            };
            if plan.is_complete() {
                return;
            }
            let sc = plan.id();
            let candidate = db.runs_of(name).iter().rev().find_map(|r| r.output());
            if let Some(entity) = candidate {
                db.link_completion(sc, entity).expect("valid link");
            }
        }
    }
}

fn journaled_session(ops: &[Op]) -> MetadataDb {
    let mut db = MetadataDb::for_schema(&examples::circuit_design());
    db.enable_journal();
    let mut clock = 0.0;
    for op in ops {
        apply(&mut db, op, &mut clock);
    }
    db
}

harness::props! {
    config(cases = 48);

    fn any_journal_prefix_recovers_consistent(ops in vec(arb_op(), 0..24)) {
        let db = journaled_session(&ops);
        let journal = db.journal().expect("journal enabled").clone();
        for n in 0..=journal.len() {
            let torn = journal.prefix(n);
            let recovered = MetadataDb::recover(&torn)
                .unwrap_or_else(|e| panic!("prefix {n}/{} failed: {e}", journal.len()));
            if let Err(violations) = recovered.check_invariants() {
                panic!(
                    "prefix {n}/{} violates invariants: {violations:?}",
                    journal.len()
                );
            }
        }
    }

    fn full_replay_reproduces_live_database(ops in vec(arb_op(), 0..24)) {
        let db = journaled_session(&ops);
        let journal = db.journal().expect("journal enabled");
        let replayed = MetadataDb::recover(journal).expect("full replay");
        prop_assert_eq!(replayed.dump(), db.dump());
        for activity in ACTIVITIES {
            prop_assert_eq!(replayed.actual_start(activity), db.actual_start(activity));
            prop_assert_eq!(replayed.actual_finish(activity), db.actual_finish(activity));
            prop_assert_eq!(replayed.last_duration(activity), db.last_duration(activity));
        }
    }

    fn journal_text_roundtrips(ops in vec(arb_op(), 0..24)) {
        let db = journaled_session(&ops);
        let journal = db.journal().expect("journal enabled");
        let parsed = Journal::parse(&journal.to_text()).expect("own text parses");
        prop_assert_eq!(&parsed, journal);
        let via_text = MetadataDb::recover(&parsed).expect("parsed journal replays");
        prop_assert_eq!(via_text.dump(), db.dump());
    }
}
