//! The policy-driven execution engine.
//!
//! [`Hercules::execute`](crate::Hercules::execute) and its variants all
//! funnel into [`Hercules::run_policy_engine`]: an event-driven
//! ready-queue dispatcher that replaces the original single linear
//! topo-order pass. Activities are *admitted* to the ready queue when
//! every input entity has been published; a
//! [`SchedulingPolicy`](crate::policy::SchedulingPolicy) picks which
//! ready activity dispatches next and — on an explicit
//! [`Cluster`](simtools::cluster::Cluster) — onto which worker; the
//! engine then runs the activity's full iterate/retry loop at that
//! worker's speed, exactly as the serial executor did.
//!
//! Invariants the engine preserves from the serial executor, for every
//! policy:
//!
//! * **Blocked never aborts** — exhausting the retry policy degrades
//!   the session (blocked + skipped + degraded replan), never errors.
//! * **Skip-downstream** — a blocked or skipped activity dooms its
//!   transitive consumers; they are reported skipped, in dependency
//!   order, interleaved with dispatches exactly as the serial scan
//!   reported them.
//! * **Retry/timeout/budget accounting** — the per-activity fault loop
//!   is the serial code verbatim (worker speed scales run durations;
//!   timeouts and backoffs are wall-clock and stay unscaled).
//! * **Replay ≡ live** — every store mutation is a pure function of
//!   the (seed, policy, cluster) triple, so journal replay reproduces
//!   the live database.
//!
//! With the default [`Fifo`](crate::policy::Fifo) policy and no
//! explicit cluster, dispatch order provably equals the task tree's
//! dependency order and every simulated date is computed by the same
//! float operations, so the engine reproduces the serial executor's
//! [`ExecutionReport`], store mutations, and trace byte-for-byte (the
//! differential test in [`crate::execute`] pins this).

use std::collections::{BTreeSet, HashMap, HashSet};

use metadata::EntityInstanceId;
use schedule::{ScheduleNetwork, WorkDays};
use simtools::cluster::Cluster;
use simtools::{InjectedFault, ToolInvocation};

use crate::error::HerculesError;
use crate::execute::{ActivityExecution, BlockedActivity, ExecutionReport, ITERATION_CAP};
use crate::manager::Hercules;
use crate::policy::{DispatchContext, ReadyTask, SchedulingPolicy, WorkerSnapshot};

impl Hercules {
    /// Executes `target` through the ready-queue engine under `policy`.
    ///
    /// `cluster = None` runs in *implicit* mode: one full-speed worker
    /// per designer, each activity bound to its assignee's worker —
    /// the exact resource model of the original serial executor. An
    /// explicit cluster drops the designer binding (the assignee is
    /// still recorded) and lets the policy place every activity on any
    /// worker, with durations scaled by worker speed and entity
    /// hand-off charged by the cluster's network profile.
    pub(crate) fn run_policy_engine(
        &mut self,
        target: &str,
        policy: &mut dyn SchedulingPolicy,
        cluster: Option<&Cluster>,
    ) -> Result<ExecutionReport, HerculesError> {
        obs::Collector::set_sim_days(self.clock.days());
        let mut exec_span = obs::span!("hercules.execute", target = target);
        let tree = self.extract_task_tree(target)?;
        // Supply primary inputs up front.
        for class in tree.primary_inputs() {
            let designer = self.team.designer(0).to_owned();
            self.supply_primary_input(class, &designer)?;
        }
        // data_ready: class -> (time available, instance).
        let mut data_ready = self.seed_data_ready(&tree);
        // Which worker published each class this session (`None` /
        // absent = shared storage: supplied inputs, prior sessions).
        let mut produced_on: HashMap<String, usize> = HashMap::new();

        let names = tree.activities();
        let n = names.len();
        // Position-indexed views over the scope: the hot dispatch loop
        // never re-resolves producers/consumers through string-keyed
        // tree lookups (the engine-overhead half of the B17
        // `exec_policies` gate holds default execution to the serial
        // executor's wall-clock). The consumer adjacency itself is
        // precomputed by [`TaskTree::extract`].
        let inputs_idx: Vec<&[String]> = (0..n).map(|i| tree.inputs_at(i)).collect();
        let output_idx: Vec<&str> = (0..n).map(|i| tree.output_at(i)).collect();
        let done: Vec<bool> = names
            .iter()
            .map(|a| self.db().current_plan(a).is_some_and(|p| p.is_complete()))
            .collect();
        // Dispatch-time estimates feed the policy inputs (slack, ranks,
        // finish estimates); completed work is a zero-duration
        // milestone, as in forecasting. Policies that decide purely
        // from topology and queue state (Fifo, WorkStealing) skip this
        // whole pass — the CPM analysis is the engine's one
        // non-trivial fixed cost, and the `exec_policies` bench gate
        // holds default execution to the serial executor's wall-clock.
        let mut estimate = vec![WorkDays::ZERO; n];
        let mut slack = vec![WorkDays::ZERO; n];
        let mut rank = vec![WorkDays::ZERO; n];
        if policy.needs_schedule_metrics() {
            for (i, a) in names.iter().enumerate() {
                if !done[i] {
                    estimate[i] = self.duration_estimate(a)?;
                }
            }
            // Total slack over the scope (CPM), indexed by topo
            // position.
            let mut net = ScheduleNetwork::new();
            let mut ids = Vec::with_capacity(n);
            for (i, a) in names.iter().enumerate() {
                ids.push(net.add_activity(a.clone(), estimate[i])?);
            }
            for i in 0..n {
                for &j in tree.consumers_at(i) {
                    net.add_precedence(ids[i], ids[j])?;
                }
            }
            slack = net.analyze()?.total_slacks();
            // Upward rank: critical-path length from each activity to
            // the scope's sink, inclusive (HEFT's priority key).
            for i in (0..n).rev() {
                let mut best = WorkDays::ZERO;
                for &j in tree.consumers_at(i) {
                    best = best.max(rank[j]);
                }
                rank[i] = estimate[i] + best;
            }
        }
        // Assignees: the plan's designer, else the stable name-hash
        // fallback (plans cannot change mid-execution, so computing
        // these up front matches the serial scan).
        let assignee_of: Vec<String> = names
            .iter()
            .map(|a| {
                self.db()
                    .current_plan(a)
                    .and_then(|p| p.assignees().first().cloned())
                    .unwrap_or_else(|| self.team.assignee_for(a).to_owned())
            })
            .collect();

        // The worker pool. Implicit mode: one full-speed worker per
        // designer (plan assignees outside the team get their own slot,
        // like the serial executor's designer_free map).
        let implicit = cluster.is_none();
        let (mut worker_speed, mut worker_free): (Vec<f64>, Vec<WorkDays>) = match cluster {
            Some(c) => (
                (0..c.len()).map(|i| c.speed(i)).collect(),
                vec![self.clock; c.len()],
            ),
            None => (
                vec![1.0; self.team.len()],
                vec![self.clock; self.team.len()],
            ),
        };
        let home_of: Vec<Option<usize>> = if implicit {
            let mut slots: Vec<String> = self.team.iter().map(str::to_owned).collect();
            names
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    if done[i] {
                        return None;
                    }
                    let a = &assignee_of[i];
                    let w = slots.iter().position(|s| s == a).unwrap_or_else(|| {
                        slots.push(a.clone());
                        worker_speed.push(1.0);
                        worker_free.push(self.clock);
                        slots.len() - 1
                    });
                    Some(w)
                })
                .collect()
        } else {
            vec![None; n]
        };

        // Admission bookkeeping: per activity, the input classes not
        // yet published, plus the running max of its published inputs'
        // availability times (so admission is O(1) — no re-walk of the
        // data_ready map when the last input lands). Classes that can
        // never be published (their producer blocked, was skipped, or
        // completed without a linked result) are *dead*; activities
        // with a dead input are *doomed* and reported skipped, in
        // dependency order, transitively.
        let mut avail: Vec<WorkDays> = vec![self.clock; n];
        let mut missing: Vec<Vec<&str>> = Vec::with_capacity(n);
        for (i, ins) in inputs_idx.iter().enumerate() {
            let mut not_ready = Vec::new();
            for class in ins.iter() {
                match data_ready.get(class.as_str()) {
                    Some(&(at, _)) => avail[i] = avail[i].max(at),
                    None => not_ready.push(class.as_str()),
                }
            }
            missing.push(not_ready);
        }
        let mut dispatched = vec![false; n];
        let mut dead: HashSet<String> = HashSet::new();
        let mut doomed: BTreeSet<usize> = BTreeSet::new();
        let doom_from = |worklist: &mut Vec<String>,
                         dead: &mut HashSet<String>,
                         doomed: &mut BTreeSet<usize>,
                         dispatched: &[bool]| {
            while let Some(cls) = worklist.pop() {
                if !dead.insert(cls.clone()) {
                    continue;
                }
                for j in 0..n {
                    if done[j] || dispatched[j] || doomed.contains(&j) {
                        continue;
                    }
                    if inputs_idx[j].contains(&cls) {
                        doomed.insert(j);
                        worklist.push(output_idx[j].to_owned());
                    }
                }
            }
        };
        // Completed activities whose result never got linked leave
        // their output class permanently missing.
        let mut initial_dead: Vec<String> = (0..n)
            .filter(|&i| done[i] && !data_ready.contains_key(output_idx[i]))
            .map(|i| output_idx[i].to_owned())
            .collect();
        doom_from(&mut initial_dead, &mut dead, &mut doomed, &dispatched);

        let admit = |i: usize,
                     ready_at: WorkDays,
                     data_ready: &HashMap<String, (WorkDays, EntityInstanceId)>,
                     produced_on: &HashMap<String, usize>,
                     h: &Hercules|
         -> ReadyTask<'_> {
            let mut input_bytes = 0u64;
            let mut inputs = Vec::new();
            // Data locality only means something on an explicit
            // cluster; the implicit substrate is shared team storage,
            // so skip the byte accounting there.
            if !implicit {
                for class in inputs_idx[i] {
                    let &(_, inst) = data_ready.get(class).expect("admitted with all inputs");
                    let bytes = h
                        .db()
                        .data_object(h.db().entity_instance(inst).data())
                        .size() as u64;
                    input_bytes += bytes;
                    inputs.push((produced_on.get(class).copied(), bytes));
                }
            }
            ReadyTask {
                activity: &names[i],
                topo_index: i,
                estimate: estimate[i],
                slack: slack[i],
                rank: rank[i],
                ready_at,
                input_bytes,
                inputs,
                home_worker: home_of[i],
            }
        };
        let mut ready: Vec<ReadyTask<'_>> = Vec::new();
        for i in 0..n {
            if !done[i] && missing[i].is_empty() && !doomed.contains(&i) {
                ready.push(admit(i, avail[i], &data_ready, &produced_on, self));
            }
        }

        let injector = self.fault_injector.clone();
        let retry = self.retry_policy;
        let mut executions = Vec::new();
        let mut blocked_rows: Vec<BlockedActivity> = Vec::new();
        let mut skipped: Vec<String> = Vec::new();
        let mut newly_blocked: Vec<(String, WorkDays)> = Vec::new();
        let mut finished_at = self.clock;
        let mut snaps: Vec<WorkerSnapshot> = Vec::with_capacity(worker_free.len());

        while !ready.is_empty() {
            // Ask the policy which ready activity dispatches next.
            let choice = {
                snaps.clear();
                snaps.extend(
                    worker_free
                        .iter()
                        .zip(&worker_speed)
                        .map(|(&free_at, &speed)| WorkerSnapshot { free_at, speed }),
                );
                let transfer = |from: Option<usize>, to: usize, bytes: u64| -> f64 {
                    cluster.map_or(0.0, |c| c.transfer_delay(from, to, bytes))
                };
                let ctx = DispatchContext::new(&ready, &snaps, self.clock, &transfer);
                let d = policy.select(&ctx);
                assert!(
                    d.task < ready.len() && d.worker < worker_free.len(),
                    "policy {:?} returned invalid dispatch {:?}",
                    policy.name(),
                    d,
                );
                d
            };
            let task = ready.remove(choice.task);
            let i = task.topo_index;
            // Skipped activities report in dependency order, woven
            // between dispatches exactly as the serial scan wove them:
            // everything doomed before this dispatch's position flushes
            // first.
            while let Some(&j) = doomed.first() {
                if j >= i {
                    break;
                }
                doomed.remove(&j);
                obs::event!("execute.skipped", activity = names[j].as_str());
                skipped.push(names[j].clone());
            }
            dispatched[i] = true;
            let activity = &names[i];
            let assignee = assignee_of[i].clone();
            // A home binding (implicit mode) overrides the policy's
            // worker choice — one activity at a time per designer.
            let w = task.home_worker.unwrap_or(choice.worker);
            let speed = worker_speed[w];

            // Gather inputs in declaration order; under an explicit
            // networked cluster, remote entities arrive after their
            // seeded transfer delay.
            let mut ready_at = self.clock;
            let mut inputs: Vec<EntityInstanceId> = Vec::new();
            let mut input_bytes = 0u64;
            for class in inputs_idx[i] {
                let &(at, inst) = data_ready.get(class).expect("ready with all inputs");
                let bytes = self
                    .db()
                    .data_object(self.store.db().entity_instance(inst).data())
                    .size() as u64;
                let mut avail = at;
                if let Some(c) = cluster {
                    let delay = c.transfer_delay(produced_on.get(class).copied(), w, bytes);
                    if delay > 0.0 {
                        avail = at + WorkDays::new(delay);
                    }
                }
                ready_at = ready_at.max(avail);
                input_bytes += bytes;
                inputs.push(inst);
            }
            let start = ready_at.max(worker_free[w]);
            obs::Collector::set_sim_days(start.days());
            let mut act_span = obs::span!(
                "execute.activity",
                activity = activity.as_str(),
                assignee = assignee.as_str(),
            );

            // Iterate runs until convergence, absorbing injected faults
            // through the retry policy — the serial executor's loop,
            // with run durations scaled by the worker's speed (timeouts
            // and backoffs are wall-clock and stay unscaled).
            let rule = self
                .schema
                .rule(activity)
                .ok_or_else(|| HerculesError::UnknownActivity(activity.to_owned()))?;
            let tool_name = rule.tool().to_owned();
            let output_class = output_idx[i].to_owned();
            let mut t = start;
            let mut iterations = 0u32;
            let mut attempts = 0u32;
            let mut fault_time = WorkDays::ZERO;
            let mut converged = false;
            let mut blocked = false;
            let mut final_instance = None;
            let prior_runs = self.store.db().runs_of(activity).len() as u32;
            while iterations < ITERATION_CAP {
                let req = ToolInvocation {
                    input_bytes,
                    iteration: prior_runs + iterations + 1,
                    seed: self.seed,
                };
                let attempted =
                    self.tools
                        .invoke_with_faults(&tool_name, &req, &injector, attempts + 1);
                match attempted.fault {
                    // A clean run, or one whose output was silently
                    // corrupted: both finish and leave auditable
                    // metadata; only the clean one can converge.
                    None | Some(InjectedFault::CorruptOutput) => {
                        iterations += 1;
                        let run = self.store.begin_run(activity, &assignee, t)?;
                        let end = t + WorkDays::new(attempted.outcome.duration_days / speed);
                        let data = self.store.store_data(
                            &format!("{output_class}.v{}", prior_runs + iterations),
                            attempted.outcome.output,
                        );
                        let inst = self
                            .store
                            .finish_run(run, &output_class, data, end, &inputs)?;
                        t = end;
                        obs::Collector::set_sim_days(t.days());
                        obs::event!(
                            "execute.run",
                            activity = activity.as_str(),
                            iteration = iterations,
                            converged = attempted.outcome.converged,
                            corrupt = attempted.fault.is_some(),
                        );
                        final_instance = Some(inst);
                        if attempted.outcome.converged {
                            converged = true;
                            break;
                        }
                    }
                    // The run died partway: charge the elapsed fraction
                    // plus backoff, then retry (no metadata recorded —
                    // the tool never finished).
                    Some(InjectedFault::Transient) => {
                        attempts += 1;
                        let frac = injector.crash_fraction(&tool_name, &req, attempts);
                        let burned =
                            WorkDays::new((attempted.outcome.duration_days / speed) * frac)
                                + retry.backoff(attempts);
                        fault_time += burned;
                        t += burned;
                        obs::Collector::set_sim_days(t.days());
                        obs::event!(
                            "execute.retry",
                            activity = activity.as_str(),
                            attempt = attempts,
                            burned_days = burned.days(),
                        );
                        if attempts >= retry.max_attempts
                            || fault_time.days() > retry.activity_budget.days()
                        {
                            blocked = true;
                            break;
                        }
                    }
                    // The run hung: kill it at the timeout, backoff,
                    // retry.
                    Some(InjectedFault::Hang) => {
                        attempts += 1;
                        let burned = retry.timeout + retry.backoff(attempts);
                        fault_time += burned;
                        t += burned;
                        obs::Collector::set_sim_days(t.days());
                        obs::event!(
                            "execute.timeout",
                            activity = activity.as_str(),
                            attempt = attempts,
                            burned_days = burned.days(),
                        );
                        if attempts >= retry.max_attempts
                            || fault_time.days() > retry.activity_budget.days()
                        {
                            blocked = true;
                            break;
                        }
                    }
                }
            }
            if blocked {
                obs::event!(
                    "execute.blocked",
                    activity = activity.as_str(),
                    attempts = attempts,
                    fault_days = fault_time.days(),
                );
                act_span.record("blocked", true);
                self.blocked.insert(activity.clone());
                newly_blocked.push((activity.clone(), fault_time));
                blocked_rows.push(BlockedActivity {
                    activity: activity.clone(),
                    assignee,
                    attempts,
                    fault_time,
                    runs_recorded: iterations,
                });
                worker_free[w] = t;
                if t.days() > finished_at.days() {
                    finished_at = t;
                }
                // The output will never be published: doom the
                // transitive consumers.
                let mut worklist = vec![output_class];
                doom_from(&mut worklist, &mut dead, &mut doomed, &dispatched);
                continue;
            }
            let final_instance = match final_instance {
                Some(inst) if converged => inst,
                // The loop can only exit unconverged-and-unblocked by
                // exhausting the iteration cap.
                _ => {
                    return Err(HerculesError::IterationLimit {
                        activity: activity.clone(),
                        cap: ITERATION_CAP,
                    })
                }
            };
            // The activity recovered (or never faulted): it is not
            // blocked, whatever earlier sessions concluded.
            self.blocked.remove(activity);
            // Designer declares completion: link plan to final result.
            if let Some(plan) = self.store.db().current_plan(activity) {
                let sc = plan.id();
                self.store.link_completion(sc, final_instance)?;
            }
            data_ready.insert(output_class.clone(), (t, final_instance));
            if !implicit {
                produced_on.insert(output_class.clone(), w);
            }
            worker_free[w] = t;
            if t.days() > finished_at.days() {
                finished_at = t;
            }
            obs::Collector::set_sim_days(t.days());
            act_span.record("iterations", iterations);
            act_span.record("fault_attempts", attempts);
            act_span.record("converged", converged);
            executions.push(ActivityExecution {
                activity: activity.clone(),
                assignee,
                started: start,
                finished: t,
                iterations,
                converged,
                final_instance,
                fault_attempts: attempts,
                fault_time,
            });
            // Publishing the output may admit consumers.
            for &j in tree.consumers_at(i) {
                if done[j] || dispatched[j] || doomed.contains(&j) {
                    continue;
                }
                missing[j].retain(|cls| *cls != output_class.as_str());
                avail[j] = avail[j].max(t);
                if missing[j].is_empty() && !ready.iter().any(|r| r.topo_index == j) {
                    ready.push(admit(j, avail[j], &data_ready, &produced_on, self));
                }
            }
        }
        // Drain: whatever is still doomed reports skipped last, in
        // dependency order.
        for &j in &doomed {
            obs::event!("execute.skipped", activity = names[j].as_str());
            skipped.push(names[j].clone());
        }
        debug_assert!(
            (0..n).all(|i| done[i] || dispatched[i] || doomed.contains(&i)),
            "every activity must be completed, dispatched, or skipped"
        );

        self.clock = finished_at;
        // Graceful degradation: blocking failures trigger an automatic
        // replan of the open scope. The blocked activities' burned time
        // is folded into their duration estimates, so exactly they are
        // dirty and the incremental CPM engine recomputes only their
        // downstream cone.
        let mut replanned = Vec::new();
        if !newly_blocked.is_empty() {
            for (name, burned) in &newly_blocked {
                let base = self.duration_estimate(name)?;
                self.estimates.insert(name.clone(), base + *burned);
            }
            let any_planned = tree
                .activities()
                .iter()
                .any(|a| self.store.db().current_plan(a).is_some());
            if any_planned {
                let completed: Vec<String> = tree
                    .activities()
                    .iter()
                    .filter(|a| {
                        self.store
                            .db()
                            .current_plan(a)
                            .is_some_and(|p| p.is_complete())
                    })
                    .cloned()
                    .collect();
                let plan = self.plan_scope(target, &completed)?;
                replanned = plan
                    .activities()
                    .iter()
                    .map(|pa| (pa.activity.clone(), pa.schedule))
                    .collect();
            }
        }
        obs::Collector::set_sim_days(finished_at.days());
        exec_span.record("executed", executions.len());
        exec_span.record("blocked", blocked_rows.len());
        exec_span.record("skipped", skipped.len());
        exec_span.record("replanned", replanned.len());
        Ok(ExecutionReport {
            target: target.to_owned(),
            activities: executions,
            blocked: blocked_rows,
            skipped,
            replanned,
            finished_at,
        })
    }
}
