//! The virtual-filesystem seam under every durable write in the
//! workspace: a small [`Vfs`] trait, a passthrough [`RealVfs`], an
//! in-memory [`MemVfs`] that models *exactly* what a power loss keeps,
//! and a seeded [`FaultVfs`] decorator injecting the I/O failures real
//! deployments hit (ENOSPC, EIO, short writes, lying fsync, dropped
//! renames).
//!
//! # Why a seam
//!
//! PR 3's crash points cover clean process deaths — the journal append
//! happened, the apply did not. They cannot express *storage* failures:
//! a tail append that hits a full disk halfway through, an fsync the
//! drive acknowledged but never performed, a rename whose directory
//! entry was lost because nobody fsynced the parent. Routing every
//! persistent-store operation through `dyn Vfs` lets the chaos suite
//! inject those failures deterministically and assert the store's
//! contract: *serve correct data or report corruption — never silently
//! wrong, never abort*.
//!
//! # The durability model ([`MemVfs`])
//!
//! `MemVfs` keeps two views of the filesystem:
//!
//! * the **live** view — what a running process observes: every write,
//!   rename, and remove is immediately visible;
//! * the **durable** view — what survives [`MemVfs::crash`]: file
//!   *contents* survive only up to the last [`sync_file`](Vfs::sync_file)
//!   (everything after it is torn off at a byte boundary), and
//!   *namespace* changes (create, rename, remove) survive only once the
//!   parent directory was [`sync_dir`](Vfs::sync_dir)'d.
//!
//! This is the POSIX contract at its least forgiving — the model that
//! makes the classic rename-without-dir-fsync hole reproducible in a
//! unit test.
//!
//! # Example
//!
//! ```
//! use simtools::vfs::{MemVfs, Vfs};
//! use std::path::Path;
//!
//! let fs = MemVfs::new();
//! fs.create_dir_all(Path::new("/db")).unwrap();
//! fs.write(Path::new("/db/a"), b"hello").unwrap();
//! fs.sync_file(Path::new("/db/a")).unwrap();
//! // The name was never made durable: the parent dir was not synced.
//! fs.crash();
//! assert!(!fs.exists(Path::new("/db/a")));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::rng::{mix, SplitMix64};

/// The filesystem operations the persistent stores need — nothing
/// more. All methods take `&self`: backends are internally synchronised
/// so one `Arc<dyn Vfs>` can serve every store in a workspace.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Reads an entire file as UTF-8 text (every store file is text).
    ///
    /// # Errors
    ///
    /// `NotFound` for a missing file, `InvalidData` for non-UTF-8
    /// content (bit-rot on a text file), or an injected/real I/O error.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Creates or truncates `path` with `contents`.
    ///
    /// # Errors
    ///
    /// Real or injected I/O failure; an injected short write reports
    /// success while persisting only a prefix.
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;

    /// Appends `contents` to an existing file.
    ///
    /// # Errors
    ///
    /// `NotFound` if the file does not exist, or real/injected failure.
    fn append(&self, path: &Path, contents: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same directory in practice).
    ///
    /// # Errors
    ///
    /// `NotFound` if `from` does not exist, or real/injected failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// `NotFound` if absent, or real/injected failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and all parents.
    ///
    /// # Errors
    ///
    /// Real or injected failure.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Forces a file's *contents* to durable storage.
    ///
    /// # Errors
    ///
    /// Real or injected failure; an injected lying fsync reports
    /// success without making anything durable.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Forces a directory's *namespace* (creates, renames, removes) to
    /// durable storage.
    ///
    /// # Errors
    ///
    /// Real or injected failure.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Whether a file or directory exists in the live view.
    fn exists(&self, path: &Path) -> bool;

    /// A file's size in bytes (0 if absent — sizing is advisory).
    fn file_size(&self, path: &Path) -> u64;

    /// The files (not directories) directly inside `path`.
    ///
    /// # Errors
    ///
    /// `NotFound` for a missing directory, or real/injected failure.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

// ----------------------------------------------------------------------
// Real backend
// ----------------------------------------------------------------------

/// The production backend: a thin veneer over `std::fs` with the fsync
/// discipline the trait promises.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

impl RealVfs {
    /// A shared handle to the real filesystem.
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }
}

impl Vfs for RealVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        std::fs::write(path, contents)
    }

    fn append(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
        f.write_all(contents)?;
        f.flush()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fsync is a POSIX idiom; where a platform cannot
        // open a directory for reading, skipping is the best available.
        match std::fs::File::open(path) {
            Ok(d) => d.sync_all(),
            Err(_) if !cfg!(unix) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_size(&self, path: &Path) -> u64 {
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// In-memory backend with a durability model
// ----------------------------------------------------------------------

/// One file's bytes plus how much of them an fsync has made durable.
#[derive(Debug, Clone)]
struct Inode {
    data: Vec<u8>,
    /// Bytes `[0, synced)` survive a crash; the rest is torn off.
    synced: usize,
}

#[derive(Debug, Default)]
struct MemState {
    /// The live namespace a running process sees.
    live: BTreeMap<PathBuf, Inode>,
    /// The durable namespace: name → contents as of the last relevant
    /// `sync_dir` (contents still subject to per-inode `synced`).
    durable: BTreeMap<PathBuf, Inode>,
    /// Directories (always durable once created — directory *entries*
    /// are the interesting failure, not the directories themselves).
    dirs: Vec<PathBuf>,
}

/// An in-memory filesystem with a first-principles durability model —
/// see the [module docs](self). Cheap to clone via `Arc`; `crash()`
/// discards everything a real power loss would.
#[derive(Debug, Default)]
pub struct MemVfs {
    state: Mutex<MemState>,
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file", path.display()),
    )
}

fn parent_of(path: &Path) -> PathBuf {
    path.parent().map(Path::to_path_buf).unwrap_or_default()
}

impl MemVfs {
    /// An empty in-memory filesystem.
    pub fn new() -> Arc<MemVfs> {
        Arc::new(MemVfs::default())
    }

    /// Simulates a power loss: the live view is discarded, the durable
    /// namespace becomes the live one, and every file is torn down to
    /// its last-synced byte count.
    pub fn crash(&self) {
        let mut s = self.state.lock().expect("vfs lock");
        let mut survived = s.durable.clone();
        for inode in survived.values_mut() {
            inode.data.truncate(inode.synced);
        }
        s.live = survived;
    }

    /// Total bytes across all live files — a cheap "disk usage" probe
    /// for tests.
    pub fn total_bytes(&self) -> u64 {
        let s = self.state.lock().expect("vfs lock");
        s.live.values().map(|i| i.data.len() as u64).sum()
    }
}

impl Vfs for MemVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let s = self.state.lock().expect("vfs lock");
        let inode = s.live.get(path).ok_or_else(|| not_found(path))?;
        String::from_utf8(inode.data.clone()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not valid UTF-8", path.display()),
            )
        })
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().expect("vfs lock");
        s.live.insert(
            path.to_path_buf(),
            Inode {
                data: contents.to_vec(),
                synced: 0,
            },
        );
        Ok(())
    }

    fn append(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().expect("vfs lock");
        let inode = s.live.get_mut(path).ok_or_else(|| not_found(path))?;
        inode.data.extend_from_slice(contents);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("vfs lock");
        let inode = s.live.remove(from).ok_or_else(|| not_found(from))?;
        s.live.insert(to.to_path_buf(), inode);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("vfs lock");
        s.live.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("vfs lock");
        let mut p = path.to_path_buf();
        loop {
            if !s.dirs.contains(&p) {
                s.dirs.push(p.clone());
            }
            match p.parent() {
                Some(parent) if parent != Path::new("") => p = parent.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("vfs lock");
        let inode = s.live.get_mut(path).ok_or_else(|| not_found(path))?;
        inode.synced = inode.data.len();
        let snapshot = inode.clone();
        // fsync pins contents, not names: only an already-durable name
        // gets the new bytes; a brand-new name still needs `sync_dir`.
        if let Some(d) = s.durable.get_mut(path) {
            *d = snapshot;
        }
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("vfs lock");
        // Commit this directory's namespace: names present live become
        // durable (with their current synced prefix), names removed
        // live disappear from the durable view.
        let in_dir = |p: &Path| parent_of(p) == *path;
        let gone: Vec<PathBuf> = s
            .durable
            .keys()
            .filter(|p| in_dir(p) && !s.live.contains_key(*p))
            .cloned()
            .collect();
        for p in gone {
            s.durable.remove(&p);
        }
        let fresh: Vec<(PathBuf, Inode)> = s
            .live
            .iter()
            .filter(|(p, _)| in_dir(p))
            .map(|(p, i)| (p.clone(), i.clone()))
            .collect();
        for (p, inode) in fresh {
            s.durable.insert(p, inode);
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock().expect("vfs lock");
        s.live.contains_key(path) || s.dirs.contains(&path.to_path_buf())
    }

    fn file_size(&self, path: &Path) -> u64 {
        let s = self.state.lock().expect("vfs lock");
        s.live.get(path).map(|i| i.data.len() as u64).unwrap_or(0)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.lock().expect("vfs lock");
        if !s.dirs.contains(&path.to_path_buf()) {
            return Err(not_found(path));
        }
        Ok(s.live
            .keys()
            .filter(|p| parent_of(p) == *path)
            .cloned()
            .collect())
    }
}

// ----------------------------------------------------------------------
// Fault-injecting decorator
// ----------------------------------------------------------------------

/// The faults [`FaultVfs`] can inject, mirroring what real storage
/// stacks do to their users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfsFault {
    /// `write`/`append` fails with ENOSPC after persisting a prefix —
    /// a full disk tears the record it was writing.
    Enospc,
    /// `read_to_string` fails with EIO (a bad sector).
    Eio,
    /// `write`/`append` *reports success* but persists only a prefix —
    /// a short write the caller never learns about.
    ShortWrite,
    /// `sync_file` reports success without making anything durable —
    /// the lying-fsync drive.
    LyingFsync,
    /// `rename` reports success but never happens — the dropped
    /// directory update.
    RenameDrop,
}

/// A seeded, deterministic fault plan: each I/O operation's fate is a
/// pure function of `(seed, operation index, kind)`, so a failing chaos
/// seed replays exactly.
#[derive(Debug, Clone, Copy)]
pub struct VfsFaultPlan {
    seed: u64,
    /// Probability that a given mutating/reading op faults at all.
    rate: f64,
}

impl VfsFaultPlan {
    /// A plan injecting faults at `rate` (0.0–1.0) under `seed`.
    pub fn seeded(seed: u64, rate: f64) -> VfsFaultPlan {
        VfsFaultPlan { seed, rate }
    }

    /// The no-fault plan: every operation passes through untouched.
    /// Used by the conformance suite to prove the seam is free.
    pub fn none() -> VfsFaultPlan {
        VfsFaultPlan { seed: 0, rate: 0.0 }
    }

    /// What (if anything) happens to operation `index` of `kind`.
    /// `frac` in the result scales partial writes.
    fn decide(&self, index: u64, kind: OpKind) -> Option<(VfsFault, f64)> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut g = SplitMix64::new(mix(&[self.seed, index, kind as u64 + 1]));
        if g.next_f64() >= self.rate {
            return None;
        }
        let frac = g.next_f64();
        let fault = match kind {
            OpKind::Write | OpKind::Append => match g.next_below(3) {
                0 => VfsFault::Enospc,
                1 => VfsFault::ShortWrite,
                _ => VfsFault::Enospc,
            },
            OpKind::Read => VfsFault::Eio,
            OpKind::SyncFile => VfsFault::LyingFsync,
            OpKind::Rename => VfsFault::RenameDrop,
        };
        Some((fault, frac))
    }
}

#[derive(Debug, Clone, Copy)]
enum OpKind {
    Read = 0,
    Write = 1,
    Append = 2,
    Rename = 3,
    SyncFile = 4,
}

/// A decorator injecting [`VfsFault`]s into an inner [`Vfs`] according
/// to a [`VfsFaultPlan`], plus a one-shot trigger
/// ([`arm_enospc_after`](FaultVfs::arm_enospc_after)) for property
/// tests that need a failure at an *exact* injection point.
#[derive(Debug)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    plan: VfsFaultPlan,
    ops: AtomicU64,
    /// Fail the nth *subsequent* write/append with ENOSPC when set
    /// (decrements on each write; fires at zero).
    armed_enospc: AtomicU64,
    injected: AtomicU64,
}

const DISARMED: u64 = u64::MAX;

impl FaultVfs {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: VfsFaultPlan) -> Arc<FaultVfs> {
        Arc::new(FaultVfs {
            inner,
            plan,
            ops: AtomicU64::new(0),
            armed_enospc: AtomicU64::new(DISARMED),
            injected: AtomicU64::new(0),
        })
    }

    /// Arms a single ENOSPC: the `n`-th write/append from now (0 = the
    /// very next one) fails having persisted nothing.
    pub fn arm_enospc_after(&self, n: u64) {
        self.armed_enospc.store(n, Ordering::SeqCst);
    }

    /// Disarms a pending [`arm_enospc_after`](Self::arm_enospc_after).
    pub fn disarm(&self) {
        self.armed_enospc.store(DISARMED, Ordering::SeqCst);
    }

    /// How many faults this decorator has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Total write/append operations observed — the injection-point
    /// count a sweep iterates over.
    pub fn write_ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    fn next_index(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::SeqCst)
    }

    /// Checks the one-shot trigger for a write-class op.
    fn armed_fires(&self) -> bool {
        loop {
            let v = self.armed_enospc.load(Ordering::SeqCst);
            if v == DISARMED {
                return false;
            }
            if v == 0 {
                self.armed_enospc.store(DISARMED, Ordering::SeqCst);
                return true;
            }
            if self
                .armed_enospc
                .compare_exchange(v, v - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return false;
            }
        }
    }

    fn enospc(&self, path: &Path) -> io::Error {
        self.injected.fetch_add(1, Ordering::SeqCst);
        io::Error::new(
            io::ErrorKind::StorageFull,
            format!("{}: injected ENOSPC", path.display()),
        )
    }

    fn eio(&self, path: &Path) -> io::Error {
        self.injected.fetch_add(1, Ordering::SeqCst);
        io::Error::other(format!("{}: injected EIO", path.display()))
    }

    /// Applies a write-class fault: persists `frac` of the payload via
    /// `put`, then errors (ENOSPC) or lies (short write).
    fn faulty_write(
        &self,
        path: &Path,
        contents: &[u8],
        fault: VfsFault,
        frac: f64,
        put: impl Fn(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        let keep = ((contents.len() as f64) * frac) as usize;
        put(&contents[..keep.min(contents.len())])?;
        match fault {
            VfsFault::Enospc => Err(self.enospc(path)),
            VfsFault::ShortWrite => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            _ => unreachable!("write faults are Enospc/ShortWrite"),
        }
    }
}

impl Vfs for FaultVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        if let Some((VfsFault::Eio, _)) = self.plan.decide(self.next_index(), OpKind::Read) {
            return Err(self.eio(path));
        }
        self.inner.read_to_string(path)
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        if self.armed_fires() {
            return Err(self.enospc(path));
        }
        match self.plan.decide(self.next_index(), OpKind::Write) {
            Some((fault, frac)) => self.faulty_write(path, contents, fault, frac, |bytes| {
                self.inner.write(path, bytes)
            }),
            None => self.inner.write(path, contents),
        }
    }

    fn append(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        if self.armed_fires() {
            return Err(self.enospc(path));
        }
        match self.plan.decide(self.next_index(), OpKind::Append) {
            Some((fault, frac)) => self.faulty_write(path, contents, fault, frac, |bytes| {
                self.inner.append(path, bytes)
            }),
            None => self.inner.append(path, contents),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some((VfsFault::RenameDrop, _)) = self.plan.decide(self.next_index(), OpKind::Rename)
        {
            // Report success; the directory update never happens.
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        if let Some((VfsFault::LyingFsync, _)) =
            self.plan.decide(self.next_index(), OpKind::SyncFile)
        {
            // Report success; nothing became durable.
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        self.inner.sync_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn file_size(&self, path: &Path) -> u64 {
        self.inner.file_size(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn mem_roundtrip_and_listing() {
        let fs = MemVfs::new();
        fs.create_dir_all(&p("/db")).unwrap();
        fs.write(&p("/db/a"), b"one").unwrap();
        fs.write(&p("/db/b"), b"two").unwrap();
        assert_eq!(fs.read_to_string(&p("/db/a")).unwrap(), "one");
        assert_eq!(fs.file_size(&p("/db/b")), 3);
        assert_eq!(
            fs.list_dir(&p("/db")).unwrap(),
            vec![p("/db/a"), p("/db/b")]
        );
        fs.append(&p("/db/a"), b"+").unwrap();
        assert_eq!(fs.read_to_string(&p("/db/a")).unwrap(), "one+");
        fs.remove_file(&p("/db/b")).unwrap();
        assert!(!fs.exists(&p("/db/b")));
        assert!(fs.exists(&p("/db")));
    }

    #[test]
    fn crash_drops_unsynced_bytes_and_names() {
        let fs = MemVfs::new();
        fs.create_dir_all(&p("/db")).unwrap();
        // File + dir fully synced: survives whole.
        fs.write(&p("/db/keep"), b"durable").unwrap();
        fs.sync_file(&p("/db/keep")).unwrap();
        fs.sync_dir(&p("/db")).unwrap();
        // Appended after the fsync: the suffix is torn off.
        fs.append(&p("/db/keep"), b" torn").unwrap();
        // Never dir-synced: the name is lost entirely.
        fs.write(&p("/db/lost"), b"x").unwrap();
        fs.sync_file(&p("/db/lost")).unwrap();
        fs.crash();
        assert_eq!(fs.read_to_string(&p("/db/keep")).unwrap(), "durable");
        assert!(!fs.exists(&p("/db/lost")));
    }

    #[test]
    fn rename_needs_dir_sync_to_survive() {
        let fs = MemVfs::new();
        fs.create_dir_all(&p("/db")).unwrap();
        fs.write(&p("/db/f.tmp"), b"v1").unwrap();
        fs.sync_file(&p("/db/f.tmp")).unwrap();
        fs.sync_dir(&p("/db")).unwrap();
        fs.rename(&p("/db/f.tmp"), &p("/db/f")).unwrap();
        // Crash before the dir sync: the rename is lost, the temp name
        // is still there — the classic hole.
        fs.crash();
        assert!(fs.exists(&p("/db/f.tmp")));
        assert!(!fs.exists(&p("/db/f")));
        // Redo, this time with the dir sync: the rename sticks.
        fs.rename(&p("/db/f.tmp"), &p("/db/f")).unwrap();
        fs.sync_dir(&p("/db")).unwrap();
        fs.crash();
        assert!(fs.exists(&p("/db/f")));
        assert_eq!(fs.read_to_string(&p("/db/f")).unwrap(), "v1");
    }

    #[test]
    fn sync_file_on_durable_name_updates_contents() {
        let fs = MemVfs::new();
        fs.create_dir_all(&p("/db")).unwrap();
        fs.write(&p("/db/f"), b"v1").unwrap();
        fs.sync_file(&p("/db/f")).unwrap();
        fs.sync_dir(&p("/db")).unwrap();
        // Overwrite and fsync — no new dir entry, so no dir sync needed.
        fs.write(&p("/db/f"), b"v2!").unwrap();
        fs.sync_file(&p("/db/f")).unwrap();
        fs.crash();
        assert_eq!(fs.read_to_string(&p("/db/f")).unwrap(), "v2!");
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let mem = MemVfs::new();
        let fs = FaultVfs::new(mem.clone(), VfsFaultPlan::none());
        fs.create_dir_all(&p("/db")).unwrap();
        fs.write(&p("/db/a"), b"abc").unwrap();
        fs.append(&p("/db/a"), b"def").unwrap();
        fs.sync_file(&p("/db/a")).unwrap();
        fs.sync_dir(&p("/db")).unwrap();
        fs.rename(&p("/db/a"), &p("/db/b")).unwrap();
        assert_eq!(fs.read_to_string(&p("/db/b")).unwrap(), "abcdef");
        assert_eq!(fs.injected(), 0);
    }

    #[test]
    fn armed_enospc_fires_once_at_exact_op() {
        let mem = MemVfs::new();
        let fs = FaultVfs::new(mem.clone(), VfsFaultPlan::none());
        fs.create_dir_all(&p("/db")).unwrap();
        fs.arm_enospc_after(1);
        fs.write(&p("/db/a"), b"ok").unwrap(); // op 0: passes
        let err = fs.write(&p("/db/b"), b"no").unwrap_err(); // op 1: fires
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        fs.write(&p("/db/c"), b"ok").unwrap(); // disarmed again
        assert!(!mem.exists(&p("/db/b")));
        assert_eq!(fs.injected(), 1);
    }

    #[test]
    fn seeded_plan_is_deterministic_and_injects() {
        let run = |seed: u64| -> (u64, Vec<bool>) {
            let mem = MemVfs::new();
            let fs = FaultVfs::new(mem, VfsFaultPlan::seeded(seed, 0.3));
            fs.create_dir_all(&p("/db")).unwrap();
            let mut oks = Vec::new();
            for i in 0..50 {
                oks.push(fs.write(&p(&format!("/db/f{i}")), b"payload bytes").is_ok());
            }
            (fs.injected(), oks)
        };
        let (inj_a, oks_a) = run(7);
        let (inj_b, oks_b) = run(7);
        assert_eq!(oks_a, oks_b, "same seed, same fate");
        assert_eq!(inj_a, inj_b);
        assert!(inj_a > 0, "a 30% plan over 50 writes must inject");
        let (_, oks_c) = run(8);
        assert_ne!(oks_a, oks_c, "different seeds diverge");
    }

    #[test]
    fn short_write_persists_prefix_silently() {
        // Sweep seeds until a ShortWrite decision lands on op 1, then
        // check the observable contract: Ok result, truncated bytes.
        for seed in 0..200u64 {
            let plan = VfsFaultPlan::seeded(seed, 1.0);
            if let Some((VfsFault::ShortWrite, frac)) = plan.decide(0, OpKind::Write) {
                let mem = MemVfs::new();
                let fs = FaultVfs::new(mem.clone(), plan);
                let payload = b"0123456789abcdef";
                fs.write(&p("/f"), payload).unwrap();
                let got = mem.file_size(&p("/f"));
                assert_eq!(got, ((payload.len() as f64) * frac) as u64);
                assert!(got < payload.len() as u64);
                return;
            }
        }
        panic!("no seed produced a short write on op 0");
    }

    #[test]
    fn real_vfs_smoke() {
        let dir = std::env::temp_dir().join(format!(
            "schedflow-vfs-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealVfs;
        fs.create_dir_all(&dir).unwrap();
        let f = dir.join("a.txt");
        fs.write(&f, b"hello").unwrap();
        fs.sync_file(&f).unwrap();
        fs.sync_dir(&dir).unwrap();
        fs.append(&f, b" world").unwrap();
        assert_eq!(fs.read_to_string(&f).unwrap(), "hello world");
        assert_eq!(fs.file_size(&f), 11);
        assert_eq!(fs.list_dir(&dir).unwrap(), vec![f.clone()]);
        let g = dir.join("b.txt");
        fs.rename(&f, &g).unwrap();
        assert!(fs.exists(&g) && !fs.exists(&f));
        fs.remove_file(&g).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
