//! Smoke test for the B1–B8 kernels: runs every kernel under the
//! quick sampling plan and checks the JSON report covers the kernels
//! ISSUE acceptance requires, with sane statistics.
//!
//! This is what `scripts/check.sh` exercises, so a kernel that panics
//! or regresses into nonsense fails tier-1 rather than only the
//! (manual) full benchmark run.

use bench::kernels;

#[test]
fn quick_run_covers_all_kernels() {
    let records = kernels::run_all(true, None);
    assert!(!records.is_empty(), "no records produced");

    // Every kernel listed in DESIGN.md must contribute at least one
    // record — in particular the six named in the acceptance criteria.
    for required in [
        "cpm",
        "planning",
        "execution",
        "replan",
        "gantt",
        "queries",
        "baseline_compare",
        "prediction",
    ] {
        assert!(
            records.iter().any(|r| r.kernel == required),
            "kernel '{required}' produced no records"
        );
    }
    let kernel_count = {
        let mut names: Vec<_> = records.iter().map(|r| r.kernel.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    };
    assert!(kernel_count >= 6, "only {kernel_count} kernels ran");

    // Statistics must be ordered and positive for every bench.
    for r in &records {
        assert!(
            r.stats.min_ns > 0.0,
            "{}/{}: non-positive min",
            r.kernel,
            r.bench
        );
        assert!(
            r.stats.min_ns <= r.stats.median_ns && r.stats.median_ns <= r.stats.p95_ns,
            "{}/{}: stats out of order",
            r.kernel,
            r.bench
        );
        assert!(r.samples > 0 && r.iters_per_sample > 0);
    }
}

#[test]
fn filtered_run_and_json_schema() {
    // Substring filter: "cpm" matches both the B1 kernel and B14's
    // "cpm_scale", and nothing else.
    let records = kernels::run_all(true, Some("cpm"));
    assert!(records
        .iter()
        .all(|r| r.kernel == "cpm" || r.kernel == "cpm_scale"));
    assert!(records.iter().any(|r| r.kernel == "cpm"));
    assert!(records.iter().any(|r| r.kernel == "cpm_scale"));

    let json = harness::bench::to_json(&records);
    for needle in [
        "\"schema\": \"schedflow-bench/v1\"",
        "\"kernel\": \"cpm\"",
        "\"median_ns\":",
        "\"p95_ns\":",
        "\"min_ns\":",
    ] {
        assert!(json.contains(needle), "missing {needle}");
    }
}
