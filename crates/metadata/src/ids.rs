//! Typed identifiers for the five object kinds in the metadata
//! database. Separate newtypes keep the execution space and the
//! schedule space statically distinct: a schedule instance id can never
//! be used where an entity instance id is required.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Dense index (allocation order) backing this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies an [`EntityInstance`](crate::EntityInstance) — Level-3
    /// execution metadata for one version of one entity.
    EntityInstanceId,
    "ei"
);
define_id!(
    /// Identifies a [`ScheduleInstance`](crate::ScheduleInstance) —
    /// Level-3 schedule data for one planned activity version.
    ScheduleInstanceId,
    "sc"
);
define_id!(
    /// Identifies a [`Run`](crate::Run) — one execution of an activity.
    RunId,
    "run"
);
define_id!(
    /// Identifies a [`PlanningSession`](crate::PlanningSession) — the
    /// schedule-space analog of a run ("a Run in the actual flow space
    /// corresponds to a Schedule in the schedule flow space").
    PlanningSessionId,
    "plan"
);
define_id!(
    /// Identifies a [`DataObject`](crate::DataObject) — Level-4 actual
    /// design data.
    DataObjectId,
    "do"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_distinguish_kinds() {
        assert_eq!(EntityInstanceId(3).to_string(), "ei3");
        assert_eq!(ScheduleInstanceId(3).to_string(), "sc3");
        assert_eq!(RunId(0).to_string(), "run0");
        assert_eq!(PlanningSessionId(1).to_string(), "plan1");
        assert_eq!(DataObjectId(9).to_string(), "do9");
    }

    #[test]
    fn ids_order_by_allocation() {
        assert!(EntityInstanceId(1) < EntityInstanceId(2));
        assert_eq!(EntityInstanceId(4).index(), 4);
    }
}
