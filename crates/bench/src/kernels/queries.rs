//! B4 — metadata query latency: last-duration, plan-evolution chains,
//! and status rollups on a populated database.
//!
//! Expected shape: microseconds — queries into schedule data are cheap
//! enough to run on every UI refresh, which is what makes the Gantt
//! view and browser interactive.

use harness::bench::{black_box, Record};
use hercules::Hercules;

use crate::pipeline_manager;

fn populated(stages: usize) -> Hercules {
    let mut h = pipeline_manager(stages, 4, 1);
    let target = format!("d{stages}");
    // Several plan/execute cycles to grow history and versions.
    h.plan(&target).expect("plannable");
    h.execute(&target).expect("executable");
    h.plan(&target).expect("plannable");
    h.plan(&target).expect("plannable");
    h
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    // Queries are sub-microsecond, so batch many iterations per timed
    // sample to stay above timer resolution.
    let mut suite = super::suite("queries", quick);
    suite.iters_per_sample(64);
    let h = populated(50);
    let current = h.db().current_plan("Stage25").expect("planned").id();

    suite.bench("query_last_duration", None, || {
        h.db().last_duration(black_box("Stage25"))
    });
    suite.bench("query_plan_evolution", None, || {
        h.db().plan_evolution(black_box(current))
    });
    suite.bench("query_status_report", None, || h.status());
    suite.bench("query_completed_rollup", None, || {
        h.db().completed_activities()
    });
    suite.into_records()
}
