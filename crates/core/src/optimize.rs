use schedule::WorkDays;

use crate::error::HerculesError;
use crate::manager::Hercules;

/// One row of a team-size sweep: the proposed finish with `team_size`
/// designers.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamPoint {
    /// Number of designers.
    pub team_size: usize,
    /// Proposed project finish under that team.
    pub finish: WorkDays,
}

/// The result of a resource optimization sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamSweep {
    /// Finish per team size, ascending team size.
    pub points: Vec<TeamPoint>,
    /// The smallest team meeting the deadline, if any.
    pub minimal_team: Option<usize>,
    /// Team size past which adding designers stops helping (finish
    /// within 1% of the infinite-team CPM bound).
    pub saturation_team: Option<usize>,
}

/// A crash-analysis recommendation: the activity whose shortening most
/// improves the project finish.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashAdvice {
    /// The activity to shorten.
    pub activity: String,
    /// Project finish if that activity's duration dropped by the
    /// probed fraction.
    pub new_finish: WorkDays,
    /// Improvement over the current proposed finish, in days.
    pub gain_days: f64,
}

impl Hercules {
    /// Sweeps team sizes `1..=max_team`, planning `target` under each,
    /// and reports the finish curve, the minimal team meeting
    /// `deadline`, and the saturation point — "previous schedule data
    /// can be used ... to optimize the resources associated with future
    /// projects" (§I).
    ///
    /// The sweep plans on *clones*, so the manager's own database is
    /// untouched.
    ///
    /// # Errors
    ///
    /// * [`HerculesError::UnknownTarget`] — `target` names nothing.
    ///
    /// # Panics
    ///
    /// Panics if `max_team == 0`.
    pub fn sweep_team_sizes(
        &self,
        target: &str,
        deadline: WorkDays,
        max_team: usize,
    ) -> Result<TeamSweep, HerculesError> {
        assert!(max_team > 0, "sweep needs at least one team size");
        let mut points = Vec::with_capacity(max_team);
        for team_size in 1..=max_team {
            let mut trial = self.clone();
            trial.team = simtools::workload::Team::of_size(team_size);
            let plan = trial.plan(target)?;
            points.push(TeamPoint {
                team_size,
                finish: plan.project_finish(),
            });
        }
        let minimal_team = points
            .iter()
            .find(|p| p.finish.days() <= deadline.days() + 1e-9)
            .map(|p| p.team_size);
        let best = points
            .iter()
            .map(|p| p.finish.days())
            .fold(f64::INFINITY, f64::min);
        let saturation_team = points
            .iter()
            .find(|p| p.finish.days() <= best * 1.01 + 1e-9)
            .map(|p| p.team_size);
        Ok(TeamSweep {
            points,
            minimal_team,
            saturation_team,
        })
    }

    /// Crash analysis: tries shortening each open activity's estimate
    /// by `fraction` (e.g. `0.5` halves it) and reports the activity
    /// whose crash most improves the proposed finish of `target`.
    ///
    /// Returns `None` when nothing is open or no crash helps (the
    /// probed activities are all off the critical path).
    ///
    /// # Errors
    ///
    /// * [`HerculesError::UnknownTarget`] — `target` names nothing.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction < 1.0`.
    pub fn crash_advice(
        &self,
        target: &str,
        fraction: f64,
    ) -> Result<Option<CrashAdvice>, HerculesError> {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "crash fraction must be in (0, 1)"
        );
        let tree = self.extract_task_tree(target)?;
        let mut baseline_trial = self.clone();
        let baseline = baseline_trial.plan(target)?.project_finish();
        let mut best: Option<CrashAdvice> = None;
        for activity in tree.activities() {
            if self
                .db()
                .current_plan(activity)
                .is_some_and(|p| p.is_complete())
            {
                continue;
            }
            let mut trial = self.clone();
            let estimate = trial.duration_estimate(activity)?;
            let crashed = WorkDays::new(estimate.days() * (1.0 - fraction));
            trial
                .set_estimate(activity, crashed)
                .expect("tree activities exist in the schema");
            let finish = trial.plan(target)?.project_finish();
            let gain = baseline.days() - finish.days();
            if gain > 1e-9 && best.as_ref().is_none_or(|b| gain > b.gain_days) {
                best = Some(CrashAdvice {
                    activity: activity.clone(),
                    new_finish: finish,
                    gain_days: gain,
                });
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::examples;
    use simtools::{workload::Team, ToolLibrary};

    fn asic(seed: u64) -> Hercules {
        Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(1),
            seed,
        )
    }

    #[test]
    fn sweep_is_monotone_and_saturates() {
        let h = asic(5);
        let sweep = h
            .sweep_team_sizes("signoff_report", WorkDays::new(1e9), 5)
            .unwrap();
        assert_eq!(sweep.points.len(), 5);
        for w in sweep.points.windows(2) {
            assert!(
                w[1].finish.days() <= w[0].finish.days() + 1e-9,
                "more designers must never be slower"
            );
        }
        // An absurd deadline is met by one designer; saturation exists.
        assert_eq!(sweep.minimal_team, Some(1));
        assert!(sweep.saturation_team.is_some());
        // The ASIC flow is nearly a chain: saturation comes early.
        assert!(sweep.saturation_team.unwrap() <= 3);
    }

    #[test]
    fn sweep_finds_minimal_team_for_tight_deadline() {
        let h = asic(5);
        let solo = h
            .sweep_team_sizes("signoff_report", WorkDays::new(1e9), 1)
            .unwrap()
            .points[0]
            .finish;
        // Deadline just below the solo finish forces a bigger team (or
        // proves impossible).
        let sweep = h
            .sweep_team_sizes("signoff_report", WorkDays::new(solo.days() * 0.9), 6)
            .unwrap();
        match sweep.minimal_team {
            Some(team) => assert!(team > 1),
            None => {
                // A pure chain cannot be accelerated by staffing; then
                // every point equals the solo finish.
                for p in &sweep.points {
                    assert!((p.finish.days() - solo.days()).abs() < solo.days() * 0.2);
                }
            }
        }
    }

    #[test]
    fn sweep_leaves_manager_untouched() {
        let h = asic(5);
        let before = h.db().schedule_count();
        h.sweep_team_sizes("signoff_report", WorkDays::new(10.0), 3)
            .unwrap();
        assert_eq!(h.db().schedule_count(), before);
    }

    #[test]
    fn crash_advice_targets_critical_work() {
        let h = asic(5);
        let advice = h
            .crash_advice("signoff_report", 0.5)
            .unwrap()
            .expect("some activity helps");
        assert!(advice.gain_days > 0.0);
        // Crashing the advised activity must actually be on a critical
        // chain — verify by replanning with the crash applied.
        let mut trial = h.clone();
        let est = trial.duration_estimate(&advice.activity).unwrap();
        trial
            .set_estimate(&advice.activity, WorkDays::new(est.days() * 0.5))
            .unwrap();
        let finish = trial.plan("signoff_report").unwrap().project_finish();
        assert!((finish.days() - advice.new_finish.days()).abs() < 1e-6);
    }

    #[test]
    fn crash_advice_none_when_everything_complete() {
        let mut h = asic(5);
        h.plan("signoff_report").unwrap();
        h.execute("signoff_report").unwrap();
        let advice = h.crash_advice("signoff_report", 0.3).unwrap();
        assert!(advice.is_none());
    }

    #[test]
    #[should_panic(expected = "crash fraction")]
    fn crash_fraction_validated() {
        let h = asic(5);
        let _ = h.crash_advice("signoff_report", 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one team size")]
    fn sweep_zero_team_panics() {
        let h = asic(5);
        let _ = h.sweep_team_sizes("signoff_report", WorkDays::ZERO, 0);
    }
}
