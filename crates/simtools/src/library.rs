use std::collections::BTreeMap;

use crate::fault::{corrupt_bytes, FaultInjector, FaultedOutcome, InjectedFault};
use crate::model::{ToolInvocation, ToolModel, ToolOutcome};
use crate::rng::{hash_str, mix, SplitMix64};

/// A library of tool behaviour models addressed by tool-class name.
///
/// [`ToolLibrary::standard`] calibrates the tool names used by the
/// built-in schemas (`schema::examples`); any unknown name gets a
/// stable hash-derived model so arbitrary schemas still execute.
///
/// # Example
///
/// ```
/// use simtools::ToolLibrary;
///
/// let lib = ToolLibrary::standard();
/// assert!(lib.model("simulator").is_some());
/// // Unknown tools still resolve deterministically.
/// let a = lib.resolve("mystery_tool").base_days();
/// let b = lib.resolve("mystery_tool").base_days();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ToolLibrary {
    models: BTreeMap<String, ToolModel>,
}

impl ToolLibrary {
    /// Creates an empty library (every lookup falls back to the
    /// hash-derived default).
    pub fn new() -> Self {
        Self::default()
    }

    /// A library calibrated for the workspace's built-in schemas.
    ///
    /// Durations loosely follow mid-1990s design practice: interactive
    /// editing takes days, batch tools hours-to-days scaled by input
    /// size, signoff is slow and iterates.
    pub fn standard() -> Self {
        let mut lib = ToolLibrary::new();
        for model in [
            // circuit_design schema
            ToolModel::new("netlist_editor", 2.0)
                .with_first_pass_rate(0.5)
                .with_output_bytes(8 * 1024),
            ToolModel::new("simulator", 1.0)
                .with_bytes_factor(0.02)
                .with_first_pass_rate(0.7)
                .with_output_bytes(16 * 1024),
            // asic_flow schema
            ToolModel::new("spec_editor", 3.0).with_first_pass_rate(0.8),
            ToolModel::new("rtl_editor", 8.0)
                .with_first_pass_rate(0.4)
                .with_output_bytes(64 * 1024),
            ToolModel::new("rtl_simulator", 1.5)
                .with_bytes_factor(0.01)
                .with_first_pass_rate(0.5)
                .with_output_bytes(32 * 1024),
            ToolModel::new("synthesizer", 1.0)
                .with_bytes_factor(0.02)
                .with_first_pass_rate(0.7)
                .with_output_bytes(128 * 1024),
            ToolModel::new("floorplanner", 2.0).with_first_pass_rate(0.6),
            ToolModel::new("placer", 1.0)
                .with_bytes_factor(0.005)
                .with_first_pass_rate(0.8),
            ToolModel::new("cts_tool", 0.5).with_first_pass_rate(0.8),
            ToolModel::new("router", 2.0)
                .with_bytes_factor(0.01)
                .with_first_pass_rate(0.6)
                .with_output_bytes(256 * 1024),
            ToolModel::new("signoff_checker", 1.0)
                .with_first_pass_rate(0.5)
                .with_max_iterations(4),
            // board_flow schema
            ToolModel::new("req_editor", 2.0).with_first_pass_rate(0.8),
            ToolModel::new("schematic_editor", 5.0).with_first_pass_rate(0.5),
            ToolModel::new("bom_extractor", 0.25).with_first_pass_rate(0.9),
            ToolModel::new("board_router", 3.0).with_first_pass_rate(0.6),
            ToolModel::new("gerber_writer", 0.25).with_first_pass_rate(0.95),
            ToolModel::new("lab_bench", 4.0).with_first_pass_rate(0.4),
        ] {
            lib.add(model);
        }
        lib
    }

    /// Adds (or replaces) a model.
    pub fn add(&mut self, model: ToolModel) {
        self.models.insert(model.name().to_owned(), model);
    }

    /// The model registered for `tool`, if any.
    pub fn model(&self, tool: &str) -> Option<&ToolModel> {
        self.models.get(tool)
    }

    /// The model for `tool`, synthesising a stable default when none is
    /// registered: base duration 0.5–4.5 days and first-pass rate
    /// 40–90%, both derived from the tool name's hash.
    pub fn resolve(&self, tool: &str) -> ToolModel {
        if let Some(m) = self.models.get(tool) {
            return m.clone();
        }
        let mut rng = SplitMix64::new(hash_str(tool));
        let base = 0.5 + 4.0 * rng.next_f64();
        let fp = 0.4 + 0.5 * rng.next_f64();
        ToolModel::new(tool, base)
            .with_first_pass_rate(fp)
            .with_bytes_factor(0.01 * rng.next_f64())
    }

    /// Invokes `tool` (resolving defaults as needed).
    pub fn invoke(&self, tool: &str, req: &ToolInvocation) -> ToolOutcome {
        self.resolve(tool).invoke(req)
    }

    /// Invokes `tool` under fault injection: the model runs as in
    /// [`invoke`](ToolLibrary::invoke), then the fault source decides
    /// whether this `attempt` (1-based retry counter) is sabotaged.
    ///
    /// * `Transient`/`Hang` faults leave the model outcome intact —
    ///   the caller decides how much simulated time the failed attempt
    ///   burned (see `FaultPlan::crash_fraction` and the retry policy's
    ///   timeout budget).
    /// * `CorruptOutput` scrambles the output bytes deterministically
    ///   and clears `converged` — the designer notices garbage and must
    ///   rerun.
    ///
    /// Deterministic in `(library, fault source, tool, req, attempt)`.
    pub fn invoke_with_faults(
        &self,
        tool: &str,
        req: &ToolInvocation,
        faults: impl Into<FaultInjector>,
        attempt: u32,
    ) -> FaultedOutcome {
        let injector: FaultInjector = faults.into();
        let mut outcome = self.resolve(tool).invoke(req);
        let fault = injector.decide(tool, req, attempt);
        if let Some(f) = fault {
            obs::event!(
                "fault.injected",
                tool = tool,
                attempt = attempt,
                kind = match f {
                    InjectedFault::Transient => "transient",
                    InjectedFault::Hang => "hang",
                    InjectedFault::CorruptOutput => "corrupt-output",
                },
            );
        }
        if fault == Some(InjectedFault::CorruptOutput) {
            let seed = mix(&[
                hash_str(tool),
                req.seed,
                u64::from(req.iteration),
                u64::from(attempt),
            ]);
            corrupt_bytes(&mut outcome.output, seed);
            outcome.converged = false;
        }
        FaultedOutcome { outcome, fault }
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` if no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Iterates over registered models in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ToolModel> + '_ {
        self.models.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_builtin_schemas() {
        let lib = ToolLibrary::standard();
        for schema in [
            schema::examples::circuit_design(),
            schema::examples::asic_flow(),
            schema::examples::board_flow(),
        ] {
            for rule in schema.rules() {
                assert!(
                    lib.model(rule.tool()).is_some(),
                    "missing model for {}",
                    rule.tool()
                );
            }
        }
    }

    #[test]
    fn resolve_falls_back_deterministically() {
        let lib = ToolLibrary::new();
        let a = lib.resolve("quantum_annealer");
        let b = lib.resolve("quantum_annealer");
        assert_eq!(a, b);
        assert!(a.base_days() >= 0.5 && a.base_days() <= 4.5);
        let c = lib.resolve("other_tool");
        assert_ne!(a.base_days(), c.base_days());
    }

    #[test]
    fn add_replaces() {
        let mut lib = ToolLibrary::new();
        lib.add(ToolModel::new("x", 1.0));
        lib.add(ToolModel::new("x", 2.0));
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.model("x").unwrap().base_days(), 2.0);
        assert!(!lib.is_empty());
        assert_eq!(lib.iter().count(), 1);
    }

    #[test]
    fn invoke_uses_registered_model() {
        let mut lib = ToolLibrary::new();
        lib.add(
            ToolModel::new("t", 1.0)
                .with_jitter(0.0)
                .with_first_pass_rate(1.0),
        );
        let out = lib.invoke(
            "t",
            &ToolInvocation {
                input_bytes: 0,
                iteration: 1,
                seed: 0,
            },
        );
        assert!((out.duration_days - 1.0).abs() < 1e-9);
        assert!(out.converged);
    }
}
