//! B3 — execution engine throughput: runs/second through the
//! plan-execute-link cycle, including iteration loops and metadata
//! writes.
//!
//! Expected shape: linear in total runs; the metadata layer adds
//! negligible overhead on top of the tool models, supporting the
//! paper's claim that tracking can live inside the flow manager.

use std::time::Duration;

use bench::pipeline_manager;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute_pipeline");
    for &stages in &[10usize, 50] {
        group.throughput(criterion::Throughput::Elements(stages as u64));
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, &stages| {
            b.iter_batched(
                || {
                    let mut h = pipeline_manager(stages, 4, 1);
                    h.plan(&format!("d{stages}")).expect("plannable");
                    h
                },
                |mut h| h.execute(&format!("d{stages}")).expect("executable"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_execution
}
criterion_main!(benches);
