//! The TCP front end: a blocking accept loop feeding a bounded
//! connection queue drained by a fixed worker-thread pool.
//!
//! Backpressure is two-layered:
//!
//! 1. the **accept queue** is bounded (`queue_cap`): when every worker
//!    is busy and the queue is full, the accept thread answers 429
//!    immediately instead of letting connections pile up unanswered;
//! 2. **per-tenant in-flight caps** (see [`crate::auth::Admission`])
//!    protect tenants from each other once a connection reaches a
//!    worker.
//!
//! Queue depth is observed into the `serve.queue.depth` histogram on
//! every enqueue and overflow rejections count into
//! `serve.queue.rejected`, so load shedding is visible in `/metrics`.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use hercules::Workspace;
use obs::Metrics;

use crate::api::{Api, ApiConfig};
use crate::auth::TokenRegistry;
use crate::http::{read_request, ReadOutcome, Response, DEFAULT_IO_TIMEOUT};

/// Server construction knobs.
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` (port 0 ⇒ ephemeral).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded accept-queue capacity; overflow ⇒ 429.
    pub queue_cap: usize,
    /// Max in-flight requests per tenant before 429.
    pub per_tenant_cap: usize,
    /// Simulated per-request session latency (benches).
    pub session_latency: Duration,
    /// Bearer tokens; empty ⇒ open mode.
    pub tokens: TokenRegistry,
    /// Socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_cap: 128,
            per_tenant_cap: 64,
            session_latency: Duration::ZERO,
            tokens: TokenRegistry::default(),
            io_timeout: DEFAULT_IO_TIMEOUT,
        }
    }
}

struct QueueMetrics {
    depth: obs::Histogram,
    rejected: obs::Counter,
    connections: obs::Counter,
}

fn queue_metrics() -> &'static QueueMetrics {
    static METRICS: OnceLock<QueueMetrics> = OnceLock::new();
    METRICS.get_or_init(|| QueueMetrics {
        depth: Metrics::histogram(
            "serve.queue.depth",
            &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
        ),
        rejected: Metrics::counter("serve.queue.rejected"),
        connections: Metrics::counter("serve.connections"),
    })
}

/// Bounded MPMC queue of accepted connections. `push` fails (→ 429)
/// when full; `pop` blocks until an item or shutdown arrives.
struct ConnQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    cap: usize,
}

struct QueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Returns the stream back on overflow.
    fn push(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.items.len() >= self.cap {
            return Err(stream);
        }
        state.items.push_back(stream);
        let depth = state.items.len();
        drop(state);
        self.cv.notify_one();
        Ok(depth)
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = state.items.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.cv.notify_all();
    }
}

/// A running workspace server. Dropping without [`Server::shutdown`]
/// detaches the threads (they exit with the process); tests should
/// call `shutdown` for a clean join.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept thread and worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(ws: Arc<Workspace>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let api = Arc::new(Api::new(
            ws,
            ApiConfig {
                tokens: config.tokens,
                per_tenant_cap: config.per_tenant_cap,
                session_latency: config.session_latency,
            },
        ));
        let queue = Arc::new(ConnQueue::new(config.queue_cap));
        let stop = Arc::new(AtomicBool::new(false));
        let io_timeout = config.io_timeout;

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let api = Arc::clone(&api);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            serve_connection(stream, &api, io_timeout);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let accept_thread = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        queue_metrics().connections.inc();
                        match queue.push(stream) {
                            Ok(depth) => queue_metrics().depth.observe(depth as f64),
                            Err(mut stream) => {
                                // Shed load in the accept thread: a
                                // well-formed 429 is cheaper than a
                                // worker slot.
                                queue_metrics().rejected.inc();
                                let _ = stream.set_write_timeout(Some(io_timeout));
                                let _ = stream.write_all(
                                    &Response::error(429, "server queue full, retry later")
                                        .to_bytes(true),
                                );
                            }
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            stop,
            queue,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (use for clients when the port was ephemeral).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Handles one connection: a keep-alive loop of
/// read → route → respond. Malformed requests get their mapped 4xx/5xx
/// and close the connection; clean disconnects just end the loop.
fn serve_connection(mut stream: TcpStream, api: &Api, io_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        match read_request(&mut stream) {
            ReadOutcome::Request(req) => {
                let response = api.handle(&req);
                let close = !req.keep_alive();
                if stream.write_all(&response.to_bytes(close)).is_err() || close {
                    return;
                }
            }
            ReadOutcome::Reject(reject) => {
                let _ = stream
                    .write_all(&Response::error(reject.status, &reject.reason).to_bytes(true));
                return;
            }
            ReadOutcome::Disconnected => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use schema::examples;

    fn schema_source() -> String {
        format!(
            "schema circuit;\n{}",
            examples::circuit_design().to_source()
        )
    }

    fn start_open(workers: usize) -> (Server, Client) {
        let server = Server::start(
            Arc::new(Workspace::in_memory()),
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let client = Client::new(server.addr());
        (server, client)
    }

    #[test]
    fn serves_healthz_and_shuts_down_cleanly() {
        let (server, client) = start_open(2);
        let resp = client.get("/healthz").expect("healthz");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok\n");
        server.shutdown();
    }

    #[test]
    fn full_project_lifecycle_over_tcp() {
        let (server, client) = start_open(2);
        let resp = client
            .post("/projects/alu?team=2&seed=7", schema_source().as_bytes())
            .expect("create");
        assert_eq!(resp.status, 201, "{}", resp.body);
        let resp = client
            .post("/projects/alu/run?target=performance", b"")
            .expect("run");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let resp = client.get("/projects/alu/status").expect("status");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("variance: "));
        let resp = client.get("/metrics").expect("metrics");
        assert_eq!(resp.status, 200);
        server.shutdown();
    }

    #[test]
    fn tokens_gate_requests_end_to_end() {
        let server = Server::start(
            Arc::new(Workspace::in_memory()),
            ServerConfig {
                tokens: TokenRegistry::parse("alice:sesame").unwrap(),
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let anon = Client::new(server.addr());
        assert_eq!(anon.get("/projects").expect("req").status, 401);
        let alice = Client::new(server.addr()).with_token("sesame");
        assert_eq!(alice.get("/projects").expect("req").status, 200);
        server.shutdown();
    }

    #[test]
    fn keep_alive_carries_multiple_requests() {
        let (server, client) = start_open(1);
        let responses = client
            .pipelined(&[
                ("GET", "/healthz"),
                ("GET", "/projects"),
                ("GET", "/healthz"),
            ])
            .expect("keep-alive");
        assert_eq!(responses.len(), 3);
        assert!(responses.iter().all(|r| r.status == 200));
        server.shutdown();
    }
}
