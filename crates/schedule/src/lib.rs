//! The network schedule model of the DAC'95 reproduction.
//!
//! "Constraint or network models predominate in project planning"
//! (Johnson & Brockman, §III): designers break the process into
//! activities, estimate durations and resources, and the *network* of
//! precedence constraints determines the schedule. This crate is the
//! planning math that MacProject / Microsoft Project implement, built
//! as a library so a flow manager can call it directly:
//!
//! * [`ScheduleNetwork`] — activities + precedence constraints on the
//!   [`flowgraph`] substrate.
//! * [`CpmAnalysis`] — critical-path method: forward/backward pass,
//!   earliest/latest dates, total and free slack, the critical path.
//! * [`pert`] — three-point (PERT) estimates and completion-probability
//!   analysis.
//! * [`Calendar`] / [`CalDate`] — work-week calendars mapping working
//!   days to civil dates.
//! * [`Resource`] / [`level_resources`] — capacity-constrained serial
//!   scheduling.
//! * [`gantt`] — the Gantt chart rendering of Fig. 8, planned bars over
//!   accomplished bars.
//! * [`variance`] — plan-versus-actual comparison and slip reports.
//!
//! # Example
//!
//! ```
//! use schedule::{ScheduleNetwork, WorkDays};
//!
//! # fn main() -> Result<(), schedule::ScheduleError> {
//! let mut net = ScheduleNetwork::new();
//! let create = net.add_activity("Create", WorkDays::new(2.0))?;
//! let simulate = net.add_activity("Simulate", WorkDays::new(3.0))?;
//! net.add_precedence(create, simulate)?;
//! let cpm = net.analyze()?;
//! assert_eq!(cpm.project_duration(), WorkDays::new(5.0));
//! assert!(cpm.is_critical(create) && cpm.is_critical(simulate));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod cpm;
mod cpm_incremental;
mod csr;
mod error;
mod leveling;
mod network;
mod resource;

pub mod gantt;
pub mod montecarlo;
pub mod pert;
pub mod variance;

pub use calendar::{CalDate, Calendar, Weekday};
pub use cpm::{ActivityTimes, CpmAnalysis};
pub use cpm_incremental::{IncrementalCpm, UpdateStats};
pub use error::ScheduleError;
pub use leveling::{level_resources, LeveledSchedule};
pub use network::{ActivityId, ScheduleNetwork, WorkDays};
pub use resource::{Resource, ResourceId, ResourcePool};
