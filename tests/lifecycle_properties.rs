//! Property-based integration tests: random pipeline/layered schemas
//! and seeds, with invariants over the whole plan→execute→track cycle.
//!
//! Ported from proptest to the in-repo `harness` framework: same
//! strategies, same invariants, but fully offline and reproducible —
//! a failure prints a `HARNESS_SEED=...` line that replays the exact
//! counterexample after shrinking.

use harness::prelude::*;
use hercules::Hercules;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn pipeline_manager(stages: usize, team: usize, seed: u64) -> (Hercules, String) {
    let h = Hercules::new(
        examples::pipeline(stages),
        ToolLibrary::standard(),
        Team::of_size(team),
        seed,
    );
    (h, format!("d{stages}"))
}

harness::props! {
    config(cases = 24);

    fn plan_dates_respect_precedence(
        stages in 2usize..12,
        team in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (mut h, target) = pipeline_manager(stages, team, seed);
        let plan = h.plan(&target).expect("plannable");
        prop_assert_eq!(plan.len(), stages);
        // Pipelines are chains: each stage starts after the previous
        // finishes, regardless of team size.
        for i in 2..=stages {
            let prev = plan.activity(&format!("Stage{}", i - 1)).expect("planned");
            let this = plan.activity(&format!("Stage{i}")).expect("planned");
            prop_assert!(
                this.start.days() >= prev.start.days() + prev.duration.days() - 1e-9
            );
        }
    }

    fn execution_invariants(
        stages in 2usize..10,
        team in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (mut h, target) = pipeline_manager(stages, team, seed);
        h.plan(&target).expect("plannable");
        let report = h.execute(&target).expect("executable");
        prop_assert!(report.all_converged());
        prop_assert_eq!(report.activities().len(), stages);
        // Every run finished after it started; iteration numbers are
        // dense from 1.
        for run in h.db().runs() {
            let f = run.finished_at().expect("all finished");
            prop_assert!(f.days() >= run.started_at().days());
        }
        // Entity versions are dense per container.
        for class in h.db().entity_classes().map(str::to_owned).collect::<Vec<_>>() {
            let container = h.db().entity_container(&class).expect("exists");
            for (i, &id) in container.iter().enumerate() {
                prop_assert_eq!(h.db().entity_instance(id).version() as usize, i + 1);
            }
        }
        // All plans complete and linked to instances of the right class.
        for activity in h.db().activities().map(str::to_owned).collect::<Vec<_>>() {
            let sc = h.db().current_plan(&activity).expect("planned");
            prop_assert!(sc.is_complete());
        }
    }

    fn determinism_per_seed(
        stages in 2usize..8,
        seed in 0u64..500,
    ) {
        let run = |seed| {
            let (mut h, target) = pipeline_manager(stages, 2, seed);
            h.plan(&target).expect("plannable");
            let r = h.execute(&target).expect("executable");
            (
                r.finished_at().days().to_bits(),
                r.total_runs(),
                h.db().entity_count(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    fn layered_flows_plan_and_execute(
        layers in 1usize..4,
        width in 1usize..4,
        seed in 0u64..200,
    ) {
        let fanin = width.min(2);
        let schema = examples::layered(layers, width, fanin);
        let mut h = Hercules::new(
            schema,
            ToolLibrary::standard(),
            Team::of_size(2),
            seed,
        );
        let plan = h.plan("merged").expect("plannable");
        prop_assert_eq!(plan.len(), layers * width + 1);
        let report = h.execute("merged").expect("executable");
        prop_assert!(report.all_converged());
        // The merge activity finishes last.
        let merge_finish = report.activity("Merge").expect("ran").finished;
        for exec in report.activities() {
            prop_assert!(exec.finished.days() <= merge_finish.days() + 1e-9);
        }
    }

    fn slip_propagation_never_moves_plans_earlier(
        seed in 0u64..300,
    ) {
        let mut h = Hercules::new(
            examples::asic_flow(),
            ToolLibrary::standard(),
            Team::of_size(3),
            seed,
        );
        h.plan("signoff_report").expect("plannable");
        h.execute("rtl").expect("executable");
        let before: Vec<(String, f64)> = h
            .db()
            .activities()
            .map(|a| {
                (
                    a.to_owned(),
                    h.db().current_plan(a).expect("planned").planned_start().days(),
                )
            })
            .collect();
        let _ = h.propagate_slip("WriteRtl").expect("planned");
        for (activity, old_start) in before {
            let new_start = h
                .db()
                .current_plan(&activity)
                .expect("still planned")
                .planned_start()
                .days();
            prop_assert!(new_start >= old_start - 1e-9, "{} moved earlier", activity);
        }
    }
}
