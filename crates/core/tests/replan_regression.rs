//! Regression tests for the versioned-update contract under the
//! incremental replan engine: **completed activities keep their actual
//! dates and linked plans no matter how many times the open scope is
//! replanned.**
//!
//! The engine caches the precedence network per (target, scope) and
//! recomputes only dirty cones; these tests pin down that the caching
//! never leaks completed work back into the replanned scope, never
//! reversions a finished activity, and never perturbs recorded actuals.

use hercules::Hercules;
use schedule::WorkDays;
use schema::examples;
use simtools::{workload::Team, ToolLibrary};

fn asic() -> Hercules {
    Hercules::new(
        examples::asic_flow(),
        ToolLibrary::standard(),
        Team::of_size(3),
        5,
    )
}

/// Whether the last `hercules.plan` span recorded by this thread (lane
/// 0 — the session opener) was a cache hit. The probe replacing the
/// removed `last_plan_stats` accessor: planning instrumentation now
/// lives in the obs registry and the recorded span fields.
fn last_plan_was_cache_hit(trace: &obs::Trace) -> bool {
    let span = trace
        .spans()
        .into_iter()
        .rfind(|s| s.name == "hercules.plan" && s.lane == 0)
        .expect("a planning pass was traced");
    span.arg("cache_hit") == Some(&obs::ArgValue::Bool(true))
}

#[test]
fn completed_activities_keep_actual_finishes_across_incremental_replans() {
    let mut h = asic();
    h.plan("signoff_report").unwrap();
    // Execute the front of the flow so part of the scope completes.
    h.execute("netlist").unwrap();

    // Snapshot the completed activities' recorded state.
    let completed: Vec<String> = h
        .db()
        .activities()
        .filter(|a| h.db().current_plan(a).is_some_and(|p| p.is_complete()))
        .map(str::to_owned)
        .collect();
    assert!(!completed.is_empty(), "expected completed front activities");
    let snapshot: Vec<(String, WorkDays, u32)> = completed
        .iter()
        .map(|a| {
            (
                a.clone(),
                h.db().actual_finish(a).expect("completed has actuals"),
                h.db().current_plan(a).unwrap().version(),
            )
        })
        .collect();

    // Replan repeatedly — first pass rebuilds the cache for the
    // narrowed scope, later passes are incremental cache hits.
    for round in 0..4 {
        let session = obs::Collector::session();
        let outcome = h.replan("signoff_report").unwrap();
        let trace = session.finish();
        if round > 0 {
            assert!(
                last_plan_was_cache_hit(&trace),
                "round {round} should reuse the cache"
            );
        }
        // No completed activity ever appears in the replanned set.
        for (name, _) in &outcome.replanned {
            assert!(
                !completed.contains(name),
                "completed '{name}' was reversioned in round {round}"
            );
        }
        // Actual finishes, plan versions, and completion links are
        // untouched.
        for (name, finish, version) in &snapshot {
            let plan = h.db().current_plan(name).expect("plan still current");
            assert!(plan.is_complete(), "'{name}' lost its completion link");
            assert_eq!(
                h.db().actual_finish(name),
                Some(*finish),
                "'{name}' actual finish drifted in round {round}"
            );
            assert_eq!(
                plan.version(),
                *version,
                "'{name}' was reversioned in round {round}"
            );
        }
    }
}

#[test]
fn replans_after_new_estimates_stay_consistent_with_fresh_planning() {
    // A manager whose cache absorbed several estimate changes must
    // propose the same dates as an identical manager planning from
    // scratch — the incremental path is an optimisation, not a fork.
    let mut cached = asic();
    cached.plan("signoff_report").unwrap();
    for (activity, days) in [("Synthesize", 9.5), ("Floorplan", 4.0), ("Synthesize", 6.5)] {
        cached.set_estimate(activity, WorkDays::new(days)).unwrap();
        let session = obs::Collector::session();
        cached.replan("signoff_report").unwrap();
        assert!(last_plan_was_cache_hit(&session.finish()));
    }

    let mut fresh = asic();
    fresh
        .set_estimate("Synthesize", WorkDays::new(6.5))
        .unwrap();
    fresh.set_estimate("Floorplan", WorkDays::new(4.0)).unwrap();
    let fresh_outcome = fresh.replan("signoff_report").unwrap();
    let cached_outcome = cached.replan("signoff_report").unwrap();
    assert_eq!(cached_outcome.project_finish, fresh_outcome.project_finish);
    assert_eq!(cached_outcome.len(), fresh_outcome.len());
    for ((name_c, sc_c), (name_f, sc_f)) in cached_outcome
        .replanned
        .iter()
        .zip(&fresh_outcome.replanned)
    {
        assert_eq!(name_c, name_f);
        let c = cached.db().schedule_instance(*sc_c);
        let f = fresh.db().schedule_instance(*sc_f);
        assert_eq!(c.planned_start(), f.planned_start(), "start of {name_c}");
        assert_eq!(
            c.planned_duration(),
            f.planned_duration(),
            "duration of {name_c}"
        );
    }
}

#[test]
fn slip_propagation_then_replan_preserves_history() {
    // propagate_slip (shift-only) followed by a full incremental
    // replan must leave executed history untouched and produce a plan
    // starting no earlier than the latest completed actual.
    let mut h = asic();
    h.plan("signoff_report").unwrap();
    h.execute("rtl").unwrap();
    let _ = h.propagate_slip("WriteRtl").unwrap();
    let latest_done = h
        .db()
        .activities()
        .filter_map(|a| h.db().actual_finish(a))
        .fold(WorkDays::ZERO, WorkDays::max);
    let outcome = h.replan("signoff_report").unwrap();
    for (name, sc) in &outcome.replanned {
        let start = h.db().schedule_instance(*sc).planned_start();
        assert!(
            start.days() >= latest_done.days() - 1e-9,
            "'{name}' replanned to start {start:?} before completed work ended"
        );
    }
}
