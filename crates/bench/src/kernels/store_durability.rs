//! B15 — checksummed record framing overhead on the persistent store.
//!
//! PR 8's durability work frames every journal record and snapshot
//! with a CRC32 so recovery can tell a torn tail from interior
//! corruption. The checksum is pure CPU on the write and read paths;
//! this kernel isolates it by running the identical scripted session
//! against both framings over [`MemVfs`] (no disk, no fsync — only
//! the encode/verify cost differs):
//!
//! * `append_v1/{n}` / `append_v2/{n}` — a session of `n` tool-run
//!   cycles against a [`PersistentStore`] writing un-checksummed (v1)
//!   vs checksummed (v2) tail records.
//! * `open_v1/{n}` / `open_v2/{n}` — reopening the finished store:
//!   snapshot decode (v2 verifies a whole-body CRC) plus tail replay
//!   (v2 verifies one CRC per record).
//!
//! The gate (`tests/store_durability.rs`, EXPERIMENTS.md §B15): v2
//! must stay within **1.2×** of v1 on both paths. The CRC is a
//! table-driven byte loop over ~60-byte records, well below the op
//! validation and `Vec` work around it.

use std::path::Path;
use std::sync::Arc;

use harness::bench::{black_box, Record};
use metadata::{Framing, MetadataDb, PersistentStore, Store};
use schedule::WorkDays;
use schema::examples;
use simtools::vfs::{MemVfs, Vfs};

/// Drives `runs` begin/store/finish cycles against a fresh store on
/// its own in-memory filesystem; returns the VFS for the reopen half.
fn session(runs: usize, framing: Framing) -> Arc<MemVfs> {
    let mem = MemVfs::new();
    let db = MetadataDb::for_schema(&examples::circuit_design());
    let mut store = PersistentStore::create_with_framing(
        mem.clone() as Arc<dyn Vfs>,
        Path::new("/proj"),
        db,
        framing,
    )
    .expect("create on MemVfs");
    let planning = store.begin_planning(WorkDays::ZERO);
    let plan = store
        .plan_activity(planning, "Create", WorkDays::ZERO, WorkDays::new(1.0))
        .expect("known activity");
    store.assign(plan, "alice").expect("live plan");
    let mut t = 0.0;
    for i in 0..runs {
        let run = store
            .begin_run("Create", "alice", WorkDays::new(t))
            .expect("known activity");
        let data = store.store_data("n.net", vec![(i & 0xFF) as u8; 16]);
        t += 0.25;
        store
            .finish_run(run, "netlist", data, WorkDays::new(t), &[])
            .expect("valid finish");
        t += 0.01;
    }
    mem
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("store_durability", quick);
    let sizes: &[usize] = if quick { &[64] } else { &[64, 256, 1_024] };
    for &n in sizes {
        for (label, framing) in [("v1", Framing::V1), ("v2", Framing::V2)] {
            suite.bench(&format!("append_{label}/{n}"), Some(n as u64), || {
                Arc::strong_count(&session(black_box(n), framing))
            });
            let mem = session(n, framing);
            suite.bench(&format!("open_{label}/{n}"), Some(n as u64), || {
                let store =
                    PersistentStore::open_on(mem.clone() as Arc<dyn Vfs>, Path::new("/proj"))
                        .expect("own store reopens");
                black_box(store.db().schedule_count())
            });
        }
    }
    suite.into_records()
}
