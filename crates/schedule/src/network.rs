use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::{Arc, Mutex, PoisonError};

use flowgraph::{Dag, NodeId};

use crate::csr::CsrTopology;
use crate::error::ScheduleError;

/// A duration (or offset) measured in working days.
///
/// Working days are the paper-era planning unit: calendars
/// ([`Calendar`](crate::Calendar)) map them to civil dates. Fractional
/// days are allowed (half-day tasks are common in tool runs).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WorkDays(f64);

impl WorkDays {
    /// Zero duration.
    pub const ZERO: WorkDays = WorkDays(0.0);

    /// Creates a duration.
    ///
    /// # Panics
    ///
    /// Panics if `days` is negative, NaN, or infinite. Use
    /// [`WorkDays::try_new`] for fallible construction.
    pub fn new(days: f64) -> Self {
        WorkDays::try_new(days).expect("duration must be finite and non-negative")
    }

    /// Creates a duration, rejecting negative or non-finite values.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidDuration`] for negative, NaN, or
    /// infinite input.
    pub fn try_new(days: f64) -> Result<Self, ScheduleError> {
        if days.is_finite() && days >= 0.0 {
            Ok(WorkDays(days))
        } else {
            Err(ScheduleError::InvalidDuration(days))
        }
    }

    /// The value in days.
    pub fn days(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: never goes below zero.
    pub fn saturating_sub(self, other: WorkDays) -> WorkDays {
        WorkDays((self.0 - other.0).max(0.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: WorkDays) -> WorkDays {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for WorkDays {
    type Output = WorkDays;
    fn add(self, rhs: WorkDays) -> WorkDays {
        WorkDays(self.0 + rhs.0)
    }
}

impl AddAssign for WorkDays {
    fn add_assign(&mut self, rhs: WorkDays) {
        self.0 += rhs.0;
    }
}

impl Sub for WorkDays {
    type Output = WorkDays;
    fn sub(self, rhs: WorkDays) -> WorkDays {
        WorkDays(self.0 - rhs.0)
    }
}

impl fmt::Display for WorkDays {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if (self.0 - self.0.round()).abs() < 1e-9 {
            write!(f, "{}d", self.0.round() as i64)
        } else {
            write!(f, "{:.2}d", self.0)
        }
    }
}

/// Stable identifier of an activity in a [`ScheduleNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) NodeId);

impl ActivityId {
    /// Dense index of the activity (insertion order).
    pub fn index(self) -> usize {
        self.0.index()
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0.index())
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ActivityData {
    pub(crate) name: String,
    /// Resource demands: resource name → units required while running.
    pub(crate) demands: Vec<(String, u32)>,
}

/// A precedence network of activities — the PERT-style model the paper
/// says "predominates in project planning".
///
/// Activities carry a name, an estimated duration, and optional
/// resource demands; edges are finish-to-start precedence constraints.
/// The network is acyclic by construction.
///
/// # Example
///
/// ```
/// use schedule::{ScheduleNetwork, WorkDays};
///
/// # fn main() -> Result<(), schedule::ScheduleError> {
/// let mut net = ScheduleNetwork::new();
/// let a = net.add_activity("WriteRtl", WorkDays::new(10.0))?;
/// let b = net.add_activity("Synthesize", WorkDays::new(2.0))?;
/// net.add_precedence(a, b)?;
/// assert_eq!(net.duration(b), WorkDays::new(2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ScheduleNetwork {
    pub(crate) dag: Dag<ActivityData, ()>,
    /// Durations in days, indexed by [`ActivityId::index`] — kept flat
    /// (outside the per-node `ActivityData`) so the CPM passes read one
    /// contiguous array instead of chasing node objects.
    pub(crate) durations: Vec<f64>,
    names: HashMap<String, ActivityId>,
    /// Bumped on every *structural* change (activities/constraints, not
    /// durations). Lets caches such as
    /// [`IncrementalCpm`](crate::IncrementalCpm) detect when their
    /// cached topology is stale and a full rebuild is required.
    structure_rev: u64,
    /// Lazily built flat CSR view of the precedence topology, shared by
    /// [`analyze`](ScheduleNetwork::analyze) and
    /// [`IncrementalCpm`](crate::IncrementalCpm). Invalidated by
    /// comparing its recorded revision against `structure_rev` —
    /// duration edits keep it warm.
    csr_cache: Mutex<Option<Arc<CsrTopology>>>,
}

impl Clone for ScheduleNetwork {
    fn clone(&self) -> Self {
        // The CSR cache is cheap to share: `Arc` clones of an immutable
        // topology stay valid as long as the revision matches.
        let cached = self
            .csr_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        ScheduleNetwork {
            dag: self.dag.clone(),
            durations: self.durations.clone(),
            names: self.names.clone(),
            structure_rev: self.structure_rev,
            csr_cache: Mutex::new(cached),
        }
    }
}

impl ScheduleNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of activities.
    pub fn activity_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Number of precedence constraints.
    pub fn precedence_count(&self) -> usize {
        self.dag.edge_count()
    }

    /// Returns `true` if the network has no activities.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// Adds an activity with an estimated `duration`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::DuplicateActivity`] if the name is taken.
    pub fn add_activity(
        &mut self,
        name: impl Into<String>,
        duration: WorkDays,
    ) -> Result<ActivityId, ScheduleError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(ScheduleError::DuplicateActivity(name));
        }
        let id = ActivityId(self.dag.add_node(ActivityData {
            name: name.clone(),
            demands: Vec::new(),
        }));
        debug_assert_eq!(id.index(), self.durations.len());
        self.durations.push(duration.days());
        self.names.insert(name, id);
        self.structure_rev += 1;
        Ok(id)
    }

    /// The network's structural revision: incremented whenever an
    /// activity or precedence constraint is added. Duration changes
    /// (re-estimation, slips) do *not* bump it — they are exactly what
    /// [`IncrementalCpm`](crate::IncrementalCpm) handles without a
    /// rebuild.
    pub fn structure_revision(&self) -> u64 {
        self.structure_rev
    }

    /// Adds the finish-to-start constraint `from` must finish before
    /// `to` starts.
    ///
    /// Duplicate constraints are ignored.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownActivity`] for foreign ids;
    /// [`ScheduleError::PrecedenceCycle`] if the constraint would close
    /// a cycle.
    pub fn add_precedence(
        &mut self,
        from: ActivityId,
        to: ActivityId,
    ) -> Result<(), ScheduleError> {
        if !self.dag.contains_node(from.0) {
            return Err(ScheduleError::UnknownActivity(from));
        }
        if !self.dag.contains_node(to.0) {
            return Err(ScheduleError::UnknownActivity(to));
        }
        if self.dag.has_edge(from.0, to.0) {
            return Ok(());
        }
        self.dag
            .add_edge(from.0, to.0, ())
            .map_err(|_| ScheduleError::PrecedenceCycle { from, to })?;
        self.structure_rev += 1;
        Ok(())
    }

    /// Declares that `activity` needs `units` of the named resource for
    /// its whole duration (used by [`level_resources`](crate::level_resources)).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownActivity`] for a foreign id.
    pub fn add_demand(
        &mut self,
        activity: ActivityId,
        resource: impl Into<String>,
        units: u32,
    ) -> Result<(), ScheduleError> {
        let data = self
            .dag
            .node_weight_mut(activity.0)
            .ok_or(ScheduleError::UnknownActivity(activity))?;
        data.demands.push((resource.into(), units));
        Ok(())
    }

    /// Looks up an activity by name.
    pub fn activity(&self, name: &str) -> Option<ActivityId> {
        self.names.get(name).copied()
    }

    /// The activity's name.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an activity of this network.
    pub fn name(&self, id: ActivityId) -> &str {
        &self.dag.node_weight(id.0).expect("activity exists").name
    }

    /// The activity's estimated duration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an activity of this network.
    pub fn duration(&self, id: ActivityId) -> WorkDays {
        WorkDays(*self.durations.get(id.index()).expect("activity exists"))
    }

    /// Replaces the activity's estimated duration (re-planning).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownActivity`] for a foreign id.
    pub fn set_duration(
        &mut self,
        id: ActivityId,
        duration: WorkDays,
    ) -> Result<(), ScheduleError> {
        let slot = self
            .durations
            .get_mut(id.index())
            .ok_or(ScheduleError::UnknownActivity(id))?;
        *slot = duration.days();
        Ok(())
    }

    /// Resource demands declared on `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an activity of this network.
    pub fn demands(&self, id: ActivityId) -> &[(String, u32)] {
        &self.dag.node_weight(id.0).expect("activity exists").demands
    }

    /// All activity ids in insertion order.
    pub fn activities(&self) -> impl Iterator<Item = ActivityId> + '_ {
        self.dag.node_ids().map(ActivityId)
    }

    /// Direct predecessors of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an activity of this network.
    pub fn predecessors(&self, id: ActivityId) -> impl Iterator<Item = ActivityId> + '_ {
        self.dag.predecessors(id.0).map(ActivityId)
    }

    /// Direct successors of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an activity of this network.
    pub fn successors(&self, id: ActivityId) -> impl Iterator<Item = ActivityId> + '_ {
        self.dag.successors(id.0).map(ActivityId)
    }

    /// Activities with no predecessors.
    pub fn start_activities(&self) -> Vec<ActivityId> {
        self.dag.sources().into_iter().map(ActivityId).collect()
    }

    /// Activities with no successors.
    pub fn finish_activities(&self) -> Vec<ActivityId> {
        self.dag.sinks().into_iter().map(ActivityId).collect()
    }

    /// All activities downstream of `id` (including `id`) — the set a
    /// slip in `id` can affect.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an activity of this network.
    pub fn downstream(&self, id: ActivityId) -> Vec<ActivityId> {
        let mut ids: Vec<ActivityId> = self
            .dag
            .output_cone(&[id.0])
            .into_iter()
            .map(ActivityId)
            .collect();
        ids.sort();
        ids
    }

    /// All activities upstream of `id` (including `id`) — the backward
    /// cone whose late dates and slack a change in `id` can affect.
    ///
    /// Mirror of [`downstream`](ScheduleNetwork::downstream), streamed
    /// through [`flowgraph`]'s reverse-reachability iterator.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an activity of this network.
    pub fn upstream(&self, id: ActivityId) -> Vec<ActivityId> {
        let mut ids: Vec<ActivityId> = self
            .dag
            .reverse_bfs(&[id.0])
            .collect_in(&self.dag)
            .into_iter()
            .map(ActivityId)
            .collect();
        ids.sort();
        ids
    }

    /// Activities in precedence order (every predecessor before its
    /// successors), deterministic.
    pub fn precedence_order(&self) -> Vec<ActivityId> {
        self.dag
            .topological_order()
            .expect("networks are DAGs by construction")
            .into_iter()
            .map(ActivityId)
            .collect()
    }

    /// The flat CSR view of the precedence topology, rebuilt lazily when
    /// the [`structure_revision`](ScheduleNetwork::structure_revision)
    /// has moved and shared via `Arc` otherwise. Duration edits never
    /// invalidate it.
    pub(crate) fn csr(&self) -> Arc<CsrTopology> {
        let mut cache = self
            .csr_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(csr) = cache.as_ref() {
            if csr.structure_rev == self.structure_rev {
                return Arc::clone(csr);
            }
        }
        let csr = Arc::new(CsrTopology::build(self));
        *cache = Some(Arc::clone(&csr));
        csr
    }

    /// Raw day-valued durations, indexed by [`ActivityId::index`].
    pub(crate) fn durations_raw(&self) -> &[f64] {
        &self.durations
    }
}

impl ScheduleNetwork {
    /// Renders the network in Graphviz DOT, highlighting the critical
    /// path in bold red (running [`analyze`](ScheduleNetwork::analyze)
    /// internally).
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from the analysis (infallible for
    /// networks built through the public API).
    ///
    /// # Example
    ///
    /// ```
    /// use schedule::{ScheduleNetwork, WorkDays};
    ///
    /// # fn main() -> Result<(), schedule::ScheduleError> {
    /// let mut net = ScheduleNetwork::new();
    /// let a = net.add_activity("route", WorkDays::new(2.0))?;
    /// let b = net.add_activity("signoff", WorkDays::new(1.0))?;
    /// net.add_precedence(a, b)?;
    /// let dot = net.to_dot()?;
    /// assert!(dot.contains("color=red"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> Result<String, ScheduleError> {
        let cpm = self.analyze()?;
        let mut out = String::from("digraph schedule {\n  rankdir=LR;\n");
        for id in self.activities() {
            let times = cpm.times(id);
            let style = if cpm.is_critical(id) {
                ", color=red, style=bold"
            } else {
                ""
            };
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\n{} [{} .. {}]\"{}];\n",
                self.name(id),
                self.name(id),
                self.duration(id),
                times.early_start,
                times.early_finish,
                style
            ));
        }
        for id in self.activities() {
            for succ in self.successors(id) {
                let style = if cpm.is_critical(id) && cpm.is_critical(succ) {
                    " [color=red, style=bold]"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\"{};\n",
                    self.name(id),
                    self.name(succ),
                    style
                ));
            }
        }
        out.push_str("}\n");
        Ok(out)
    }
}

impl fmt::Display for ScheduleNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule network ({} activities, {} constraints)",
            self.activity_count(),
            self.precedence_count()
        )?;
        for id in self.activities() {
            let preds: Vec<&str> = self.predecessors(id).map(|p| self.name(p)).collect();
            writeln!(
                f,
                "  {} [{}] after {{{}}}",
                self.name(id),
                self.duration(id),
                preds.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workdays_arithmetic() {
        let a = WorkDays::new(2.5);
        let b = WorkDays::new(1.0);
        assert_eq!((a + b).days(), 3.5);
        assert_eq!((a - b).days(), 1.5);
        assert_eq!(b.saturating_sub(a), WorkDays::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c.days(), 3.5);
    }

    #[test]
    fn workdays_rejects_bad_values() {
        assert!(WorkDays::try_new(-0.5).is_err());
        assert!(WorkDays::try_new(f64::NAN).is_err());
        assert!(WorkDays::try_new(f64::INFINITY).is_err());
        assert!(WorkDays::try_new(0.0).is_ok());
    }

    #[test]
    fn workdays_display() {
        assert_eq!(WorkDays::new(3.0).to_string(), "3d");
        assert_eq!(WorkDays::new(2.5).to_string(), "2.50d");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn workdays_new_panics_on_negative() {
        WorkDays::new(-1.0);
    }

    #[test]
    fn build_small_network() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("A", WorkDays::new(1.0)).unwrap();
        let b = net.add_activity("B", WorkDays::new(2.0)).unwrap();
        net.add_precedence(a, b).unwrap();
        assert_eq!(net.activity_count(), 2);
        assert_eq!(net.precedence_count(), 1);
        assert_eq!(net.activity("B"), Some(b));
        assert_eq!(net.name(a), "A");
        assert_eq!(net.start_activities(), vec![a]);
        assert_eq!(net.finish_activities(), vec![b]);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut net = ScheduleNetwork::new();
        net.add_activity("A", WorkDays::ZERO).unwrap();
        assert!(matches!(
            net.add_activity("A", WorkDays::ZERO),
            Err(ScheduleError::DuplicateActivity(_))
        ));
    }

    #[test]
    fn duplicate_precedence_ignored() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("A", WorkDays::ZERO).unwrap();
        let b = net.add_activity("B", WorkDays::ZERO).unwrap();
        net.add_precedence(a, b).unwrap();
        net.add_precedence(a, b).unwrap();
        assert_eq!(net.precedence_count(), 1);
    }

    #[test]
    fn cycle_rejected() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("A", WorkDays::ZERO).unwrap();
        let b = net.add_activity("B", WorkDays::ZERO).unwrap();
        net.add_precedence(a, b).unwrap();
        assert!(matches!(
            net.add_precedence(b, a),
            Err(ScheduleError::PrecedenceCycle { .. })
        ));
    }

    #[test]
    fn downstream_cone() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("A", WorkDays::ZERO).unwrap();
        let b = net.add_activity("B", WorkDays::ZERO).unwrap();
        let c = net.add_activity("C", WorkDays::ZERO).unwrap();
        let d = net.add_activity("D", WorkDays::ZERO).unwrap();
        net.add_precedence(a, b).unwrap();
        net.add_precedence(b, c).unwrap();
        net.add_precedence(a, d).unwrap();
        assert_eq!(net.downstream(b), vec![b, c]);
        assert_eq!(net.downstream(a).len(), 4);
    }

    #[test]
    fn upstream_cone_mirrors_downstream() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("A", WorkDays::ZERO).unwrap();
        let b = net.add_activity("B", WorkDays::ZERO).unwrap();
        let c = net.add_activity("C", WorkDays::ZERO).unwrap();
        let d = net.add_activity("D", WorkDays::ZERO).unwrap();
        net.add_precedence(a, b).unwrap();
        net.add_precedence(b, c).unwrap();
        net.add_precedence(a, d).unwrap();
        assert_eq!(net.upstream(c), vec![a, b, c]);
        assert_eq!(net.upstream(a), vec![a]);
        assert_eq!(net.upstream(d), vec![a, d]);
    }

    #[test]
    fn structure_revision_tracks_topology_not_durations() {
        let mut net = ScheduleNetwork::new();
        let r0 = net.structure_revision();
        let a = net.add_activity("A", WorkDays::new(1.0)).unwrap();
        let b = net.add_activity("B", WorkDays::new(1.0)).unwrap();
        assert!(net.structure_revision() > r0);
        let r1 = net.structure_revision();
        net.add_precedence(a, b).unwrap();
        assert!(net.structure_revision() > r1);
        let r2 = net.structure_revision();
        // Duplicate constraint: ignored, no bump.
        net.add_precedence(a, b).unwrap();
        assert_eq!(net.structure_revision(), r2);
        // Duration changes never bump the structural revision.
        net.set_duration(a, WorkDays::new(9.0)).unwrap();
        assert_eq!(net.structure_revision(), r2);
    }

    #[test]
    fn demands_and_set_duration() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("A", WorkDays::new(1.0)).unwrap();
        net.add_demand(a, "designer", 2).unwrap();
        assert_eq!(net.demands(a), [("designer".to_owned(), 2)]);
        net.set_duration(a, WorkDays::new(4.0)).unwrap();
        assert_eq!(net.duration(a), WorkDays::new(4.0));
    }

    #[test]
    fn dot_export_marks_critical_path() {
        let mut net = ScheduleNetwork::new();
        let long = net.add_activity("long", WorkDays::new(5.0)).unwrap();
        let short = net.add_activity("short", WorkDays::new(1.0)).unwrap();
        let end = net.add_activity("end", WorkDays::new(1.0)).unwrap();
        net.add_precedence(long, end).unwrap();
        net.add_precedence(short, end).unwrap();
        let dot = net.to_dot().unwrap();
        assert!(dot.contains("\"long\" [label="));
        // long and end are critical; short is not.
        assert!(dot.contains("\"long\" -> \"end\" [color=red, style=bold];"));
        assert!(dot.contains("\"short\" -> \"end\";"));
        assert_eq!(dot.matches("color=red").count(), 3); // 2 nodes + 1 edge
    }

    #[test]
    fn display_lists_activities() {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("Create", WorkDays::new(2.0)).unwrap();
        let b = net.add_activity("Simulate", WorkDays::new(3.0)).unwrap();
        net.add_precedence(a, b).unwrap();
        let s = net.to_string();
        assert!(s.contains("Simulate [3d] after {Create}"));
    }
}
