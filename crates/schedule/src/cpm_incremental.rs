//! Dirty-region (incremental) critical-path analysis.
//!
//! The paper's tracking loop records a slip and *replans* downstream
//! activities. A full CPM pass re-walks every activity even when one
//! leaf slips; on the 10⁴–10⁶-activity schedules the ROADMAP targets
//! that makes tracking cost proportional to the schedule, not the
//! change. [`IncrementalCpm`] caches both CPM passes and, given the set
//! of activities whose *durations* changed, recomputes only:
//!
//! * the **forward cone** — earliest dates of the dirty activities and
//!   whatever they transitively push (with early cutoff: propagation
//!   stops at the first activity whose earliest dates are unchanged,
//!   e.g. where another predecessor still dominates the merge);
//! * the **backward cone** — the cached *tail* (longest duration-path
//!   from an activity's start to the project end) of the dirty
//!   activities and their affected predecessors, again with early
//!   cutoff.
//!
//! Late dates are stored project-relative (`late_start = project −
//! tail`), so a project-finish change — the common case when a critical
//! leaf slips — costs nothing extra: every untouched activity's cached
//! state stays valid.
//!
//! The engine runs entirely on the network's flat
//! `CsrTopology` view (`crate::csr`): all cached arrays are
//! indexed by topological *position*, and the worklists are
//! `DirtyBits` bitsets drained in position
//! order (ascending for the forward sweep, descending for the
//! backward), which replaces the old binary-heap + generation-stamp
//! scheme with two cache-resident words per 64 activities.
//!
//! Structural edits (new activities or precedence constraints) change
//! the topology itself; [`IncrementalCpm::update`] detects them through
//! [`ScheduleNetwork::structure_revision`] and falls back to a full
//! rebuild. In debug builds every update cross-checks itself against
//! [`ScheduleNetwork::analyze`]; release builds skip the check.
//!
//! ```
//! use schedule::{ScheduleNetwork, WorkDays};
//!
//! # fn main() -> Result<(), schedule::ScheduleError> {
//! let mut net = ScheduleNetwork::new();
//! let a = net.add_activity("rtl", WorkDays::new(4.0))?;
//! let b = net.add_activity("synth", WorkDays::new(2.0))?;
//! net.add_precedence(a, b)?;
//! let mut inc = net.analyze_incremental()?;
//! assert_eq!(inc.project_duration(), WorkDays::new(6.0));
//! // The designer reports rtl slipping by three days:
//! net.set_duration(a, WorkDays::new(7.0))?;
//! let stats = inc.update(&net, &[a])?;
//! assert!(!stats.full_rebuild);
//! assert_eq!(inc.project_duration(), WorkDays::new(9.0));
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::cpm::{ActivityTimes, CpmAnalysis};
use crate::csr::{default_threads, CsrTopology, DirtyBits, EPS};
use crate::error::ScheduleError;
use crate::network::{ActivityId, ScheduleNetwork, WorkDays};

/// What one [`IncrementalCpm::update`] actually recomputed — the
/// observable evidence that work is proportional to the dirty cone, not
/// the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Activities whose earliest dates were re-derived (forward cone,
    /// after early cutoff).
    pub forward_recomputed: usize,
    /// Activities whose tail (late dates) were re-derived (backward
    /// cone, after early cutoff).
    pub backward_recomputed: usize,
    /// Forward re-derivations that found **unchanged** dates — each is
    /// a point where the early cutoff stopped propagation. The cone's
    /// true frontier: `forward_recomputed - forward_cutoff` activities
    /// actually moved.
    pub forward_cutoff: usize,
    /// Backward re-derivations that found an unchanged tail (cutoff
    /// points of the backward sweep).
    pub backward_cutoff: usize,
    /// Dirty activities the caller declared.
    pub dirty: usize,
    /// `true` when a structural change forced a full rebuild.
    pub full_rebuild: bool,
}

impl UpdateStats {
    /// Total recomputation work across both passes.
    pub fn total_recomputed(&self) -> usize {
        self.forward_recomputed + self.backward_recomputed
    }
}

/// Cached CPM state supporting dirty-region recomputation.
///
/// Create with [`ScheduleNetwork::analyze_incremental`] (one full
/// pass), then call [`update`](IncrementalCpm::update) after each batch
/// of duration changes. All cached arrays live in topological position
/// space over a shared `CsrTopology`; accessors translate ids through
/// its `pos` map. Accessors that hand back network-shaped results take
/// the network again; the engine verifies it is the same network via
/// the structural revision.
#[derive(Debug, Clone)]
pub struct IncrementalCpm {
    /// Shared flat topology (one structural revision of the network).
    csr: Arc<CsrTopology>,
    /// Snapshot of activity durations the cached state was derived
    /// from, in position order.
    durations: Vec<f64>,
    early_start: Vec<f64>,
    early_finish: Vec<f64>,
    /// Longest duration-path from the activity's start through to the
    /// project end (includes the activity's own duration). Late dates
    /// derive from it: `late_start = project − tail`.
    tail: Vec<f64>,
    project: f64,
    structure_rev: u64,
    /// Reusable bitset worklists (self-clearing on drain).
    dirty_fwd: DirtyBits,
    dirty_bwd: DirtyBits,
}

impl ScheduleNetwork {
    /// Runs one full CPM pass and returns the cached engine for
    /// subsequent dirty-region updates.
    ///
    /// # Errors
    ///
    /// Infallible for networks built through the public API; the
    /// `Result` guards the internal topological sort.
    pub fn analyze_incremental(&self) -> Result<IncrementalCpm, ScheduleError> {
        IncrementalCpm::new(self)
    }
}

impl IncrementalCpm {
    /// Full CPM pass over `network`, caching every intermediate the
    /// incremental updates reuse.
    ///
    /// # Errors
    ///
    /// Infallible for networks built through the public API.
    pub fn new(network: &ScheduleNetwork) -> Result<Self, ScheduleError> {
        let csr = network.csr();
        let n = csr.len();
        let mut engine = IncrementalCpm {
            csr,
            durations: Vec::new(),
            early_start: Vec::new(),
            early_finish: Vec::new(),
            tail: Vec::new(),
            project: 0.0,
            structure_rev: network.structure_revision(),
            dirty_fwd: DirtyBits::new(n),
            dirty_bwd: DirtyBits::new(n),
        };
        engine.rebuild(network);
        Ok(engine)
    }

    /// Number of activities covered by the cached analysis.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// Returns `true` if the analyzed network was empty.
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Total project duration (max earliest finish).
    pub fn project_duration(&self) -> WorkDays {
        WorkDays::new(self.project.max(0.0))
    }

    /// Whether the activity is on a critical path (zero total slack).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analyzed network.
    pub fn is_critical(&self, id: ActivityId) -> bool {
        self.raw_slack(self.position(id)).max(0.0) < EPS
    }

    /// Earliest start of `id` from the cached forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analyzed network.
    pub fn early_start(&self, id: ActivityId) -> WorkDays {
        WorkDays::new(self.early_start[self.position(id)].max(0.0))
    }

    /// Latest start of `id`, derived from the cached backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analyzed network.
    pub fn late_start(&self, id: ActivityId) -> WorkDays {
        WorkDays::new((self.project - self.tail[self.position(id)]).max(0.0))
    }

    /// Topological position of `id` (panics on foreign ids).
    fn position(&self, id: ActivityId) -> usize {
        self.csr.pos[id.index()] as usize
    }

    fn raw_slack(&self, p: usize) -> f64 {
        (self.project - self.tail[p]) - self.early_start[p]
    }

    /// The four dates plus slack for one activity, identical to what
    /// [`ScheduleNetwork::analyze`] reports.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the analyzed network, or if
    /// `network` is not the network this engine was built from (checked
    /// via the structural revision).
    pub fn times(&self, network: &ScheduleNetwork, id: ActivityId) -> ActivityTimes {
        self.check_same_network(network);
        let p = self.position(id);
        let late_start = self.project - self.tail[p];
        let late_finish = late_start + self.durations[p];
        let succs = self.csr.succs_of(p);
        let free = if succs.is_empty() {
            (self.project - self.early_finish[p]).max(0.0)
        } else {
            let min_es = succs
                .iter()
                .map(|&q| self.early_start[q as usize])
                .fold(f64::INFINITY, f64::min);
            (min_es - self.early_finish[p]).max(0.0)
        };
        ActivityTimes {
            early_start: WorkDays::new(self.early_start[p].max(0.0)),
            early_finish: WorkDays::new(self.early_finish[p].max(0.0)),
            late_start: WorkDays::new(late_start.max(0.0)),
            late_finish: WorkDays::new(late_finish.max(0.0)),
            total_slack: WorkDays::new((late_start - self.early_start[p]).max(0.0)),
            free_slack: WorkDays::new(free),
        }
    }

    /// Materialises a full [`CpmAnalysis`] from the cached state —
    /// byte-for-byte what [`ScheduleNetwork::analyze`] would return,
    /// including the (deterministic) critical-path walk.
    ///
    /// # Panics
    ///
    /// Panics if `network` is not the network this engine was built
    /// from (checked via the structural revision).
    pub fn analysis(&self, network: &ScheduleNetwork) -> CpmAnalysis {
        self.check_same_network(network);
        let times = self.csr.assemble_times(
            &self.durations,
            &self.early_start,
            &self.early_finish,
            &self.tail,
            self.project,
        );
        let critical = self.csr.walk_critical(
            &self.early_start,
            &self.early_finish,
            &self.tail,
            self.project,
        );
        CpmAnalysis::from_parts(times, self.project_duration(), critical)
    }

    /// Recomputes the analysis after the durations of `dirty` changed
    /// on `network` (via [`ScheduleNetwork::set_duration`]).
    ///
    /// Contract: every activity whose duration changed since the last
    /// `update`/`new` must be listed in `dirty`; listing clean
    /// activities is allowed (it only costs their re-derivation). An
    /// empty `dirty` set is a no-op. Structural changes (activities or
    /// constraints added) are detected automatically and trigger a full
    /// rebuild.
    ///
    /// In debug builds the result is cross-checked against a fresh
    /// [`ScheduleNetwork::analyze`]; see
    /// [`cross_check`](IncrementalCpm::cross_check).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownActivity`] if a dirty id does not belong
    /// to the network.
    pub fn update(
        &mut self,
        network: &ScheduleNetwork,
        dirty: &[ActivityId],
    ) -> Result<UpdateStats, ScheduleError> {
        let n = network.activity_count();
        if network.structure_revision() != self.structure_rev || n != self.durations.len() {
            self.structure_rev = network.structure_revision();
            self.rebuild(network);
            let stats = UpdateStats {
                forward_recomputed: n,
                backward_recomputed: n,
                forward_cutoff: 0,
                backward_cutoff: 0,
                dirty: dirty.len(),
                full_rebuild: true,
            };
            self.debug_cross_check(network);
            return Ok(stats);
        }
        for &id in dirty {
            if id.index() >= n {
                return Err(ScheduleError::UnknownActivity(id));
            }
        }
        #[cfg(debug_assertions)]
        self.assert_clean_durations(network, dirty);
        if dirty.is_empty() {
            return Ok(UpdateStats::default());
        }
        // Refresh the duration snapshot for the dirty region.
        for &id in dirty {
            let p = self.position(id);
            self.durations[p] = network.duration(id).days();
        }
        let (forward_recomputed, forward_cutoff, project_dirty) = self.forward_sweep(dirty);
        let (backward_recomputed, backward_cutoff) = self.backward_sweep(dirty);
        // Project finish: max earliest finish over sinks (equal to the
        // max over all activities — earliest finishes are monotone
        // along precedence edges). The fold is O(sinks), which on wide
        // graphs would dwarf a slack-absorbed slip's O(1) cone — so it
        // only runs when the forward sweep moved a sink that could
        // actually shift the max.
        if project_dirty {
            self.project = self.csr.project(&self.early_finish);
        }
        let stats = UpdateStats {
            forward_recomputed,
            backward_recomputed,
            forward_cutoff,
            backward_cutoff,
            dirty: dirty.len(),
            full_rebuild: false,
        };
        self.debug_cross_check(network);
        Ok(stats)
    }

    /// Verifies the cached state against a fresh full pass; returns a
    /// description of the first divergence, if any. Called
    /// automatically after every [`update`](IncrementalCpm::update) in
    /// debug builds (`debug_assert`-style); tests may call it directly.
    ///
    /// # Errors
    ///
    /// A human-readable mismatch report.
    pub fn cross_check(&self, network: &ScheduleNetwork) -> Result<(), String> {
        let full = network
            .analyze()
            .map_err(|e| format!("full CPM failed: {e}"))?;
        let tol = 1e-6;
        for id in network.activities() {
            let a = self.times(network, id);
            let b = full.times(id);
            for (what, x, y) in [
                ("early_start", a.early_start, b.early_start),
                ("early_finish", a.early_finish, b.early_finish),
                ("late_start", a.late_start, b.late_start),
                ("late_finish", a.late_finish, b.late_finish),
                ("total_slack", a.total_slack, b.total_slack),
                ("free_slack", a.free_slack, b.free_slack),
            ] {
                if (x.days() - y.days()).abs() > tol {
                    return Err(format!(
                        "{id}: {what} diverged: incremental {x} vs full {y}"
                    ));
                }
            }
            if self.is_critical(id) != full.is_critical(id) {
                return Err(format!(
                    "{id}: criticality diverged: incremental {} vs full {}",
                    self.is_critical(id),
                    full.is_critical(id)
                ));
            }
        }
        let d = (self.project_duration().days() - full.project_duration().days()).abs();
        if d > tol {
            return Err(format!(
                "project duration diverged: incremental {} vs full {}",
                self.project_duration(),
                full.project_duration()
            ));
        }
        Ok(())
    }

    fn debug_cross_check(&self, network: &ScheduleNetwork) {
        if cfg!(debug_assertions) {
            if let Err(msg) = self.cross_check(network) {
                panic!("incremental CPM diverged from full CPM: {msg}");
            }
        }
    }

    #[cfg(debug_assertions)]
    fn assert_clean_durations(&self, network: &ScheduleNetwork, dirty: &[ActivityId]) {
        for id in network.activities() {
            if dirty.contains(&id) {
                continue;
            }
            debug_assert!(
                (network.duration(id).days() - self.durations[self.position(id)]).abs() < 1e-12,
                "activity {id} changed duration but was not declared dirty"
            );
        }
    }

    fn check_same_network(&self, network: &ScheduleNetwork) {
        assert_eq!(
            network.structure_revision(),
            self.structure_rev,
            "IncrementalCpm used with a structurally different network; call update() first"
        );
    }

    /// Full recompute of every cached quantity on a fresh CSR view.
    fn rebuild(&mut self, network: &ScheduleNetwork) {
        self.csr = network.csr();
        let n = self.csr.len();
        let threads = default_threads(n);
        self.durations = self.csr.gather(network.durations_raw());
        let (es, ef) = self.csr.forward(&self.durations, threads);
        self.early_start = es;
        self.early_finish = ef;
        self.tail = self.csr.backward(&self.durations, threads);
        self.project = self.csr.project(&self.early_finish);
        self.dirty_fwd.reset(n);
        self.dirty_bwd.reset(n);
    }

    /// Re-derives earliest dates over the forward cone of `dirty`,
    /// stopping propagation wherever the recomputed dates are
    /// unchanged. Returns `(re-derived, cutoff, project_dirty)` —
    /// activities visited, how many of those were found unchanged
    /// (where the cutoff fired), and whether the project finish must be
    /// refolded: that takes a *sink* whose earliest finish either held
    /// the current max (it may drop) or now exceeds it. A sink moving
    /// strictly below the max cannot shift it.
    fn forward_sweep(&mut self, dirty: &[ActivityId]) -> (usize, usize, bool) {
        // Ascending-position drain: every predecessor that can still
        // change is processed before its successors (enqueued positions
        // are always ahead of the cursor), so each activity is
        // re-derived at most once, from final inputs.
        for &id in dirty {
            self.dirty_fwd.insert(self.position(id));
        }
        let mut recomputed = 0usize;
        let mut cutoff = 0usize;
        let mut project_dirty = false;
        while let Some(p) = self.dirty_fwd.pop_lowest() {
            let mut es = 0.0f64;
            for &q in self.csr.preds_of(p) {
                es = es.max(self.early_finish[q as usize]);
            }
            let ef = es + self.durations[p];
            recomputed += 1;
            // Early cutoff: bit-identical earliest dates mean nothing
            // downstream can observe a change.
            if es == self.early_start[p] && ef == self.early_finish[p] {
                cutoff += 1;
                continue;
            }
            let succs = self.csr.succs_of(p);
            if succs.is_empty() && (self.early_finish[p] == self.project || ef > self.project) {
                // The cached project is the exact max of the cached
                // sink finishes, so bitwise equality identifies the
                // sink(s) currently holding it.
                project_dirty = true;
            }
            self.early_start[p] = es;
            self.early_finish[p] = ef;
            for &q in succs {
                self.dirty_fwd.insert(q as usize);
            }
        }
        (recomputed, cutoff, project_dirty)
    }

    /// Re-derives tails (late dates) over the backward cone of `dirty`,
    /// with the same early cutoff. Returns `(re-derived, cutoff)`.
    fn backward_sweep(&mut self, dirty: &[ActivityId]) -> (usize, usize) {
        // Descending-position drain: successors first.
        for &id in dirty {
            self.dirty_bwd.insert(self.position(id));
        }
        let mut recomputed = 0usize;
        let mut cutoff = 0usize;
        while let Some(p) = self.dirty_bwd.pop_highest() {
            let mut t = 0.0f64;
            for &q in self.csr.succs_of(p) {
                t = t.max(self.tail[q as usize]);
            }
            let tail = self.durations[p] + t;
            recomputed += 1;
            if tail == self.tail[p] {
                cutoff += 1;
                continue;
            }
            self.tail[p] = tail;
            for &q in self.csr.preds_of(p) {
                self.dirty_bwd.insert(q as usize);
            }
        }
        (recomputed, cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic diamond from `cpm.rs`: A(2) → {B(4), C(1)} → D(3).
    fn diamond() -> (ScheduleNetwork, [ActivityId; 4]) {
        let mut net = ScheduleNetwork::new();
        let a = net.add_activity("A", WorkDays::new(2.0)).unwrap();
        let b = net.add_activity("B", WorkDays::new(4.0)).unwrap();
        let c = net.add_activity("C", WorkDays::new(1.0)).unwrap();
        let d = net.add_activity("D", WorkDays::new(3.0)).unwrap();
        net.add_precedence(a, b).unwrap();
        net.add_precedence(a, c).unwrap();
        net.add_precedence(b, d).unwrap();
        net.add_precedence(c, d).unwrap();
        (net, [a, b, c, d])
    }

    fn assert_matches_full(net: &ScheduleNetwork, inc: &IncrementalCpm) {
        assert_eq!(inc.analysis(net), net.analyze().unwrap());
    }

    #[test]
    fn initial_analysis_matches_full() {
        let (net, _) = diamond();
        let inc = net.analyze_incremental().unwrap();
        assert_matches_full(&net, &inc);
        assert_eq!(inc.project_duration(), WorkDays::new(9.0));
        assert_eq!(inc.len(), 4);
        assert!(!inc.is_empty());
    }

    #[test]
    fn empty_network_analysis() {
        let net = ScheduleNetwork::new();
        let inc = net.analyze_incremental().unwrap();
        assert!(inc.is_empty());
        assert_eq!(inc.project_duration(), WorkDays::ZERO);
        assert_matches_full(&net, &inc);
    }

    #[test]
    fn slip_on_critical_chain_updates_project() {
        let (mut net, [_a, b, _c, _d]) = diamond();
        let mut inc = net.analyze_incremental().unwrap();
        net.set_duration(b, WorkDays::new(6.0)).unwrap();
        let stats = inc.update(&net, &[b]).unwrap();
        assert!(!stats.full_rebuild);
        assert_eq!(inc.project_duration(), WorkDays::new(11.0));
        assert_matches_full(&net, &inc);
        assert_eq!(stats.dirty, 1);
    }

    #[test]
    fn slip_inside_slack_stops_early() {
        let (mut net, [_a, _b, c, _d]) = diamond();
        let mut inc = net.analyze_incremental().unwrap();
        // C has 3 days of slack; a 1-day slip changes C's EF but not
        // D's ES (B still dominates the merge) and not the project.
        net.set_duration(c, WorkDays::new(2.0)).unwrap();
        let stats = inc.update(&net, &[c]).unwrap();
        assert_eq!(inc.project_duration(), WorkDays::new(9.0));
        assert_matches_full(&net, &inc);
        // Forward: C re-derived, D re-derived but found unchanged, so
        // the cutoff fired before anything downstream of D.
        assert!(stats.forward_recomputed <= 2, "{stats:?}");
        // Backward: C's tail grows 4→5, still below B's 7, so A's tail
        // is re-derived but unchanged.
        assert!(stats.backward_recomputed <= 2, "{stats:?}");
        // Both sweeps hit their cutoff exactly once (D forward, A
        // backward) — the counters expose where propagation stopped.
        assert_eq!(stats.forward_cutoff, 1, "{stats:?}");
        assert_eq!(stats.backward_cutoff, 1, "{stats:?}");
        assert!(stats.forward_cutoff <= stats.forward_recomputed);
        assert!(stats.backward_cutoff <= stats.backward_recomputed);
    }

    #[test]
    fn empty_dirty_set_is_noop() {
        let (net, _) = diamond();
        let mut inc = net.analyze_incremental().unwrap();
        let stats = inc.update(&net, &[]).unwrap();
        assert_eq!(stats, UpdateStats::default());
        assert_matches_full(&net, &inc);
    }

    #[test]
    fn whole_graph_dirty_matches_full() {
        let (mut net, ids) = diamond();
        let mut inc = net.analyze_incremental().unwrap();
        for (k, &id) in ids.iter().enumerate() {
            net.set_duration(id, WorkDays::new((k + 1) as f64)).unwrap();
        }
        let stats = inc.update(&net, &ids).unwrap();
        assert!(!stats.full_rebuild);
        assert_matches_full(&net, &inc);
    }

    #[test]
    fn structural_change_forces_rebuild() {
        let (mut net, [_a, _b, _c, d]) = diamond();
        let mut inc = net.analyze_incremental().unwrap();
        let e = net.add_activity("E", WorkDays::new(5.0)).unwrap();
        net.add_precedence(d, e).unwrap();
        let stats = inc.update(&net, &[]).unwrap();
        assert!(stats.full_rebuild);
        assert_eq!(inc.project_duration(), WorkDays::new(14.0));
        assert_matches_full(&net, &inc);
    }

    #[test]
    fn repeated_updates_stay_consistent() {
        let (mut net, [a, b, c, d]) = diamond();
        let mut inc = net.analyze_incremental().unwrap();
        for (step, &id) in [a, c, b, d, c, a].iter().enumerate() {
            net.set_duration(id, WorkDays::new(0.5 * (step + 1) as f64))
                .unwrap();
            inc.update(&net, &[id]).unwrap();
            assert_matches_full(&net, &inc);
        }
    }

    #[test]
    fn shrinking_a_duration_propagates_too() {
        let (mut net, [_a, b, _c, _d]) = diamond();
        let mut inc = net.analyze_incremental().unwrap();
        net.set_duration(b, WorkDays::new(0.5)).unwrap();
        inc.update(&net, &[b]).unwrap();
        // Now the A→C→D chain (2+1+3=6) dominates A→B→D (2+0.5+3).
        assert_eq!(inc.project_duration(), WorkDays::new(6.0));
        assert_matches_full(&net, &inc);
    }

    #[test]
    fn unknown_dirty_id_rejected() {
        let (net, _) = diamond();
        let mut other = ScheduleNetwork::new();
        for i in 0..9 {
            other
                .add_activity(format!("x{i}"), WorkDays::new(1.0))
                .unwrap();
        }
        let foreign = other.activity("x8").unwrap();
        let mut inc = net.analyze_incremental().unwrap();
        // Force matching structure revisions so the id check (not the
        // rebuild path) is exercised.
        assert!(matches!(
            inc.update(&net, &[foreign]),
            Err(ScheduleError::UnknownActivity(_))
        ));
    }

    #[test]
    fn accessors_match_full_pass() {
        let (net, [_a, b, c, _d]) = diamond();
        let inc = net.analyze_incremental().unwrap();
        let full = net.analyze().unwrap();
        assert_eq!(inc.times(&net, c), full.times(c));
        assert_eq!(inc.early_start(b), full.times(b).early_start);
        assert_eq!(inc.late_start(c), full.times(c).late_start);
        assert_eq!(inc.is_critical(b), full.is_critical(b));
        assert!(inc.cross_check(&net).is_ok());
    }

    #[test]
    #[should_panic(expected = "structurally different network")]
    fn foreign_network_rejected_by_accessors() {
        let (net, _) = diamond();
        let inc = net.analyze_incremental().unwrap();
        let mut other = ScheduleNetwork::new();
        other.add_activity("solo", WorkDays::new(1.0)).unwrap();
        let _ = inc.analysis(&other);
    }
}
