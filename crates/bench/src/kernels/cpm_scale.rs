//! B14 — million-activity CPM on the flat CSR core.
//!
//! B2 (`cpm`) and B9 (`replan_incremental`) top out at 10⁴–10⁵
//! activities; this kernel is the scale gate for the data-oriented
//! schedule core, measuring 10⁵–10⁶-activity graphs:
//!
//! * `full/{n}` — one complete `analyze()` (level-parallel passes with
//!   the default worker count) on a wide layered DAG. Target: ≤ ~100 ms
//!   at 10⁶ activities.
//! * `full_serial/{n}` — the same analysis forced onto one thread
//!   (`analyze_with_threads(1)`), isolating the flat-sweep speed from
//!   level parallelism.
//! * `inc_leaf/{n}` — a slack-absorbed leaf slip through
//!   `IncrementalCpm`: the replan path must stay µs-scale no matter how
//!   large the schedule grows.
//!
//! Graph shape: `width = n / 10` (so a 10⁶-activity network has
//! 100 000-wide levels — wide enough for the scoped-thread chunking to
//! engage), node `w` of each layer wired to nodes `w` and
//! `(w + 1) % width` of the previous layer. Durations are dyadic so the
//! incremental and full engines stay bit-identical.
//!
//! `tests/cpm_scale.rs` gates the scaling shape (subquadratic full
//! pass, ≥100× incremental advantage, thread-count-invariant results)
//! with host-independent ratios; the CI `scale` stage runs it plus a
//! quick pass of this kernel, uploading `target/cpm_scale.json`.

use harness::bench::Record;
use schedule::{ActivityId, ScheduleNetwork, WorkDays};

/// Builds the B14 layered network: `n` activities in layers of
/// `width = (n / 10).clamp(10, 100_000)`, every node wired to two
/// parents in the previous layer, dyadic durations. Returns the network
/// and the final layer's ids (the slip candidates).
pub fn scale_network(activities: usize) -> (ScheduleNetwork, Vec<ActivityId>) {
    let width = (activities / 10).clamp(10, 100_000);
    let layers = (activities / width).max(1);
    let mut net = ScheduleNetwork::new();
    let mut prev: Vec<ActivityId> = Vec::new();
    let mut cur: Vec<ActivityId> = Vec::with_capacity(width);
    for l in 0..layers {
        cur.clear();
        for w in 0..width {
            let id = net
                .add_activity(
                    format!("l{l}w{w}"),
                    WorkDays::new(1.0 + (w % 4) as f64 * 0.5),
                )
                .expect("unique names");
            if !prev.is_empty() {
                net.add_precedence(prev[w], id).expect("forward edge");
                net.add_precedence(prev[(w + 1) % width], id)
                    .expect("forward edge");
            }
            cur.push(id);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (net, prev)
}

/// Prepares the slack-absorbed leaf slip: heavy 5-day sibling sinks
/// around a 1-day leaf whose toggle to 2.5 days never escapes its own
/// slack. Returns the slipping leaf.
fn arm_leaf_slip(net: &mut ScheduleNetwork, last: &[ActivityId]) -> ActivityId {
    for &id in last {
        net.set_duration(id, WorkDays::new(5.0)).expect("known id");
    }
    let leaf = last[last.len() / 2];
    net.set_duration(leaf, WorkDays::new(1.0))
        .expect("known id");
    leaf
}

/// Runs the kernel; `quick` selects the smoke-test plan and sizes.
pub fn run(quick: bool) -> Vec<Record> {
    let mut suite = super::suite("cpm_scale", quick);
    let sizes: &[usize] = if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    for &n in sizes {
        let (mut net, last) = scale_network(n);

        suite.bench(&format!("full/{n}"), Some(n as u64), || {
            net.analyze().expect("acyclic").project_duration()
        });
        suite.bench(&format!("full_serial/{n}"), Some(n as u64), || {
            net.analyze_with_threads(1)
                .expect("acyclic")
                .project_duration()
        });

        let leaf = arm_leaf_slip(&mut net, &last);
        let mut inc = net.analyze_incremental().expect("acyclic");
        let mut flip = false;
        suite.bench(&format!("inc_leaf/{n}"), Some(n as u64), || {
            flip = !flip;
            let d = if flip { 2.5 } else { 1.0 };
            net.set_duration(leaf, WorkDays::new(d)).expect("known id");
            inc.update(&net, &[leaf]).expect("known dirty set");
            inc.project_duration()
        });
    }
    suite.into_records()
}
