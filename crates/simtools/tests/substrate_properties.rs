//! Property-based tests for the simulation substrate: tool models must
//! be total, deterministic, and convergent; the event queue must be a
//! stable priority queue.
//!
//! Ported to the in-repo `harness` framework (note the dev-dependency
//! cycle: `harness` depends on `simtools::rng`, and these tests
//! dev-depend on `harness` — cargo permits cycles through
//! dev-dependencies).

use harness::prelude::*;
use simtools::des::EventQueue;
use simtools::{ToolInvocation, ToolModel};

fn arb_model() -> impl Strategy<Value = ToolModel> {
    (
        0.0f64..20.0,
        0.0f64..0.5,
        0.0f64..1.0,
        0.0f64..1.0,
        1u32..8,
        1u64..10_000,
    )
        .prop_map(|(base, bytes_factor, jitter, fp, max_iter, out)| {
            ToolModel::new("fuzz", base)
                .with_bytes_factor(bytes_factor)
                .with_jitter(jitter)
                .with_first_pass_rate(fp)
                .with_max_iterations(max_iter)
                .with_output_bytes(out)
        })
}

fn arb_invocation() -> impl Strategy<Value = ToolInvocation> {
    (0u64..1_000_000, 1u32..20, any_u64()).prop_map(|(input_bytes, iteration, seed)| {
        ToolInvocation {
            input_bytes,
            iteration,
            seed,
        }
    })
}

harness::props! {
    fn invoke_is_total_and_deterministic(model in arb_model(), req in arb_invocation()) {
        let a = model.invoke(&req);
        let b = model.invoke(&req);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.duration_days.is_finite());
        prop_assert!(a.duration_days > 0.0);
        prop_assert!(!a.output.is_empty());
    }

    fn convergence_guaranteed_at_max_iterations(model in arb_model(), seed in any_u64()) {
        let req = ToolInvocation {
            input_bytes: 1024,
            iteration: model.max_iterations(),
            seed,
        };
        prop_assert!(model.invoke(&req).converged);
    }

    fn expected_duration_monotone_in_input(model in arb_model(), a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            model.nominal_duration(small) <= model.nominal_duration(large) + 1e-9
        );
        prop_assert!(model.expected_activity_duration(small)
            <= model.expected_activity_duration(large) + 1e-9);
        // Iterations only add time.
        prop_assert!(model.expected_activity_duration(small)
            >= model.nominal_duration(small) - 1e-9);
    }

    fn event_queue_pops_sorted_stable(times in vec(0u32..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(f64::from(t), i);
        }
        let mut last: Option<(f64, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    // Stable: same-time events pop in insertion order.
                    prop_assert!(seq > lseq);
                }
            }
            last = Some((t, seq));
        }
        prop_assert!(q.is_empty());
    }

    fn event_queue_clock_tracks_pops(delays in vec(0u32..100, 1..50)) {
        let mut q = EventQueue::new();
        for &d in &delays {
            q.schedule_in(f64::from(d), ());
        }
        // now() only advances on pop, to the popped event's time.
        let mut sorted: Vec<f64> = delays.iter().map(|&d| f64::from(d)).collect();
        sorted.sort_by(f64::total_cmp);
        for want in sorted {
            let (t, ()) = q.pop().expect("scheduled");
            prop_assert_eq!(t, want);
            prop_assert_eq!(q.now(), want);
        }
    }
}
