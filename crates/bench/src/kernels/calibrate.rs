//! B0 — host-speed calibration: a fixed, allocation-free integer spin
//! whose only purpose is to measure how fast *this host, right now*
//! executes a known workload.
//!
//! `bench_compare` divides every fresh measurement by
//! `fresh_calibration / baseline_calibration` (clamped to ≥1, so a
//! faster host never inflates results) before applying the regression
//! tolerance. Shared CI hosts swing 1.5–2× in effective CPU speed
//! between runs (frequency scaling, co-tenant steal); that slowdown is
//! uniform across benches, so normalizing by the spin cancels it while
//! a genuine code regression — which moves one bench, not the spin —
//! still trips the gate.
//!
//! The kernel also busy-warms the CPU briefly before measuring, which
//! doubles as warm-up for every kernel that runs after it (this module
//! is first in `KERNELS` order).

use harness::bench::{black_box, Record};

/// The fixed workload. Deliberately a *mix* — integer arithmetic,
/// `Vec` growth, `BTreeMap` churn, and string formatting — because the
/// real kernels are allocation- and pointer-heavy: co-tenant
/// interference often slows the memory subsystem while leaving pure
/// ALU throughput untouched, and a calibration that only spins the ALU
/// would miss exactly the slowdown it exists to cancel. Every step
/// depends on the previous value so nothing folds away.
fn spin(iters: u64) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15_u64;
    let mut buf: Vec<u64> = Vec::new();
    let mut map: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for i in 0..iters {
        acc = acc
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(i | 1);
        acc ^= acc >> 29;
        buf.push(acc);
        if buf.len() >= 64 {
            acc ^= buf.iter().copied().fold(0, u64::wrapping_add);
            buf = Vec::new(); // fresh allocation each round, like the kernels
        }
        map.insert(acc & 1023, acc);
        if map.len() >= 512 {
            map.clear();
        }
        if i % 64 == 0 {
            let s = format!("calib {acc:x}");
            acc = acc.wrapping_add(s.len() as u64 + u64::from(s.as_bytes()[0]));
        }
    }
    acc.wrapping_add(buf.len() as u64 + map.len() as u64)
}

/// Runs the kernel. The sampling plan follows `quick` like every other
/// kernel, but the measured workload is identical in both modes — the
/// calibration value must be comparable between a committed full-mode
/// baseline and a quick-mode fresh run.
pub fn run(quick: bool) -> Vec<Record> {
    // Settle frequency scaling and caches before the first sample.
    let start = std::time::Instant::now();
    while start.elapsed() < std::time::Duration::from_millis(300) {
        black_box(spin(4_000));
    }
    let mut suite = super::suite("calibrate", quick);
    suite.bench("host_spin", None, || black_box(spin(100_000)));
    suite.into_records()
}
