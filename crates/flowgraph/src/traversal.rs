use std::collections::VecDeque;

use crate::dag::{Dag, NodeId};
use crate::error::GraphError;

impl<N, E> Dag<N, E> {
    /// Returns a topological order of all nodes (Kahn's algorithm).
    ///
    /// Ties are broken by insertion order, so the result is
    /// deterministic: among ready nodes the earliest-inserted comes
    /// first. This matters for reproducing the paper's figures, where
    /// planning and execution enumerate activities in a stable order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleDetected`] if the graph contains a
    /// cycle (impossible for graphs built through
    /// [`add_edge`](Dag::add_edge), which checks incrementally).
    pub fn topological_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let mut in_deg: Vec<usize> = self.node_ids().map(|n| self.in_degree(n)).collect();
        // A BinaryHeap of Reverse would also work; a scan-free queue of
        // ready nodes kept sorted by id is enough because ids are dense
        // and we push in increasing discovery order.
        let mut ready: VecDeque<NodeId> =
            self.node_ids().filter(|n| in_deg[n.index()] == 0).collect();
        let mut order = Vec::with_capacity(self.node_count());
        while let Some(v) = ready.pop_front() {
            order.push(v);
            for succ in self.successors(v) {
                in_deg[succ.index()] -= 1;
                if in_deg[succ.index()] == 0 {
                    ready.push_back(succ);
                }
            }
        }
        if order.len() == self.node_count() {
            Ok(order)
        } else {
            let on = self
                .node_ids()
                .find(|n| in_deg[n.index()] > 0)
                .expect("some node must have remaining in-degree");
            Err(GraphError::CycleDetected { on })
        }
    }

    /// Post-order traversal from `roots`: every node appears after all
    /// of the nodes it depends on (its predecessors in the cone).
    ///
    /// This is exactly the walk Hercules performs both to *plan* a
    /// schedule ("running from primary inputs to outputs, creating new
    /// schedule instances for each activity") and to *execute* a task
    /// tree. Only nodes in the union of the roots' input cones are
    /// visited; each exactly once, in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if any root is not a node of this graph.
    pub fn post_order(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let mut visited = vec![false; self.node_count()];
        let mut order = Vec::new();
        // Iterative DFS on predecessor edges with an explicit phase so
        // deep flows cannot overflow the call stack.
        enum Phase {
            Enter,
            Exit,
        }
        for &root in roots {
            assert!(self.contains_node(root), "unknown root {root}");
            if visited[root.index()] {
                continue;
            }
            let mut stack = vec![(root, Phase::Enter)];
            while let Some((v, phase)) = stack.pop() {
                match phase {
                    Phase::Enter => {
                        if visited[v.index()] {
                            continue;
                        }
                        visited[v.index()] = true;
                        stack.push((v, Phase::Exit));
                        // Push predecessors in reverse so the first
                        // predecessor is processed first.
                        let preds: Vec<_> = self.predecessors(v).collect();
                        for &p in preds.iter().rev() {
                            if !visited[p.index()] {
                                stack.push((p, Phase::Enter));
                            }
                        }
                    }
                    Phase::Exit => order.push(v),
                }
            }
        }
        order
    }

    /// Depth-first pre-order over successors starting from `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a node of this graph.
    pub fn dfs(&self, start: NodeId) -> Dfs {
        assert!(self.contains_node(start), "unknown start {start}");
        let mut visited = vec![false; self.node_count()];
        visited[start.index()] = true;
        Dfs {
            stack: vec![start],
            visited,
        }
    }

    /// Breadth-first order over successors starting from `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a node of this graph.
    pub fn bfs(&self, start: NodeId) -> Bfs {
        assert!(self.contains_node(start), "unknown start {start}");
        let mut visited = vec![false; self.node_count()];
        visited[start.index()] = true;
        Bfs {
            queue: VecDeque::from([start]),
            visited,
        }
    }

    /// Reverse-reachability iterator: breadth-first order over
    /// *predecessors* starting from `roots` (multi-root).
    ///
    /// Yields every node that can reach some root — the *backward cone*
    /// a schedule change invalidates late dates/slack for. The forward
    /// mirror is [`bfs`](Dag::bfs) / [`output_cone`](Dag::output_cone);
    /// this iterator streams the cone instead of materialising a set,
    /// which is what the incremental CPM engine wants for dirty-region
    /// invalidation.
    ///
    /// Duplicate roots are visited once. Each root is yielded first (in
    /// the order given), then predecessors layer by layer.
    ///
    /// # Panics
    ///
    /// Panics if any root is not a node of this graph.
    pub fn reverse_bfs(&self, roots: &[NodeId]) -> ReverseBfs {
        let mut visited = vec![false; self.node_count()];
        let mut queue = VecDeque::with_capacity(roots.len());
        for &root in roots {
            assert!(self.contains_node(root), "unknown root {root}");
            if !visited[root.index()] {
                visited[root.index()] = true;
                queue.push_back(root);
            }
        }
        ReverseBfs { queue, visited }
    }
}

/// Iterator state for [`Dag::dfs`]. Advance it with
/// [`next_in`](Dfs::next_in), passing the graph each step.
#[derive(Debug, Clone)]
pub struct Dfs {
    stack: Vec<NodeId>,
    visited: Vec<bool>,
}

impl Dfs {
    /// Returns the next node in depth-first pre-order, or `None` when
    /// exhausted.
    pub fn next_in<N, E>(&mut self, graph: &Dag<N, E>) -> Option<NodeId> {
        let v = self.stack.pop()?;
        let succs: Vec<_> = graph.successors(v).collect();
        for &s in succs.iter().rev() {
            if !self.visited[s.index()] {
                self.visited[s.index()] = true;
                self.stack.push(s);
            }
        }
        Some(v)
    }

    /// Drains the traversal into a vector.
    pub fn collect_in<N, E>(mut self, graph: &Dag<N, E>) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(v) = self.next_in(graph) {
            out.push(v);
        }
        out
    }
}

/// Iterator state for [`Dag::bfs`]. Advance it with
/// [`next_in`](Bfs::next_in), passing the graph each step.
#[derive(Debug, Clone)]
pub struct Bfs {
    queue: VecDeque<NodeId>,
    visited: Vec<bool>,
}

impl Bfs {
    /// Returns the next node in breadth-first order, or `None` when
    /// exhausted.
    pub fn next_in<N, E>(&mut self, graph: &Dag<N, E>) -> Option<NodeId> {
        let v = self.queue.pop_front()?;
        for s in graph.successors(v) {
            if !self.visited[s.index()] {
                self.visited[s.index()] = true;
                self.queue.push_back(s);
            }
        }
        Some(v)
    }

    /// Drains the traversal into a vector.
    pub fn collect_in<N, E>(mut self, graph: &Dag<N, E>) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(v) = self.next_in(graph) {
            out.push(v);
        }
        out
    }
}

/// Iterator state for [`Dag::reverse_bfs`]. Advance it with
/// [`next_in`](ReverseBfs::next_in), passing the graph each step.
#[derive(Debug, Clone)]
pub struct ReverseBfs {
    queue: VecDeque<NodeId>,
    visited: Vec<bool>,
}

impl ReverseBfs {
    /// Returns the next node of the backward cone in breadth-first
    /// order, or `None` when exhausted.
    pub fn next_in<N, E>(&mut self, graph: &Dag<N, E>) -> Option<NodeId> {
        let v = self.queue.pop_front()?;
        for p in graph.predecessors(v) {
            if !self.visited[p.index()] {
                self.visited[p.index()] = true;
                self.queue.push_back(p);
            }
        }
        Some(v)
    }

    /// Drains the traversal into a vector.
    pub fn collect_in<N, E>(mut self, graph: &Dag<N, E>) -> Vec<NodeId> {
        let mut out = Vec::new();
        while let Some(v) = self.next_in(graph) {
            out.push(v);
        }
        out
    }
}

/// Convenience alias documenting the planning/execution walk.
///
/// Hercules' planning step is a post-order traversal of the task tree;
/// this type re-exports the result of [`Dag::post_order`] under the name
/// the paper uses.
pub type PostOrder = Vec<NodeId>;

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag<&'static str, ()>, [NodeId; 4]) {
        let mut g = Dag::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, ()).unwrap();
        g.add_edge(a, c, ()).unwrap();
        g.add_edge(b, d, ()).unwrap();
        g.add_edge(c, d, ()).unwrap();
        (g, [a, b, c, d])
    }

    fn is_topological<N, E>(g: &Dag<N, E>, order: &[NodeId]) -> bool {
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        g.edges().all(|e| pos[&e.from] < pos[&e.to])
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), 4);
        assert!(is_topological(&g, &order));
    }

    #[test]
    fn topological_order_is_deterministic() {
        let (g, _) = diamond();
        assert_eq!(
            g.topological_order().unwrap(),
            g.topological_order().unwrap()
        );
    }

    #[test]
    fn topological_order_empty() {
        let g: Dag<(), ()> = Dag::new();
        assert!(g.topological_order().unwrap().is_empty());
    }

    #[test]
    fn post_order_visits_dependencies_first() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.post_order(&[d]);
        assert_eq!(order.len(), 4);
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        assert!(pos[&a] < pos[&b]);
        assert!(pos[&a] < pos[&c]);
        assert!(pos[&b] < pos[&d]);
        assert!(pos[&c] < pos[&d]);
        assert_eq!(order.last(), Some(&d));
    }

    #[test]
    fn post_order_limits_to_cone() {
        let (mut g, [_a, b, _c, _d]) = diamond();
        let lonely = g.add_node("x");
        let order = g.post_order(&[b]);
        assert!(!order.contains(&lonely));
        assert_eq!(order.len(), 2); // a, b
    }

    #[test]
    fn post_order_multiple_roots_no_duplicates() {
        let (g, [_, b, c, _]) = diamond();
        let order = g.post_order(&[b, c]);
        assert_eq!(order.len(), 3); // a, b, c — a visited once
        let unique: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), order.len());
    }

    #[test]
    fn post_order_deep_chain_no_stack_overflow() {
        let mut g: Dag<(), ()> = Dag::new();
        let ids: Vec<_> = (0..100_000).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ()).unwrap();
        }
        let order = g.post_order(&[*ids.last().unwrap()]);
        assert_eq!(order.len(), ids.len());
        assert_eq!(order[0], ids[0]);
    }

    #[test]
    fn dfs_covers_reachable_set() {
        let (g, [a, ..]) = diamond();
        let seen = g.dfs(a).collect_in(&g);
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], a);
    }

    #[test]
    fn bfs_layers() {
        let (g, [a, b, c, d]) = diamond();
        let seen = g.bfs(a).collect_in(&g);
        assert_eq!(seen, vec![a, b, c, d]);
    }

    #[test]
    fn dfs_from_sink_sees_only_itself() {
        let (g, [.., d]) = diamond();
        assert_eq!(g.dfs(d).collect_in(&g), vec![d]);
    }

    #[test]
    fn reverse_bfs_walks_backward_cone() {
        let (g, [a, b, c, d]) = diamond();
        let seen = g.reverse_bfs(&[d]).collect_in(&g);
        assert_eq!(seen, vec![d, b, c, a]);
        // Matches the input cone as a set.
        let cone = g.input_cone(&[d]);
        assert_eq!(seen.len(), cone.len());
        assert!(seen.iter().all(|n| cone.contains(n)));
    }

    #[test]
    fn reverse_bfs_multi_root_dedups() {
        let (g, [a, b, c, _d]) = diamond();
        let seen = g.reverse_bfs(&[b, c, b]).collect_in(&g);
        assert_eq!(seen, vec![b, c, a]);
        let unique: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(unique.len(), seen.len());
    }

    #[test]
    fn reverse_bfs_from_source_sees_only_itself() {
        let (g, [a, ..]) = diamond();
        assert_eq!(g.reverse_bfs(&[a]).collect_in(&g), vec![a]);
        // Empty root set yields nothing.
        assert!(g.reverse_bfs(&[]).collect_in(&g).is_empty());
    }
}
